#include "expr/fusion.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "expr/kernels.h"
#include "expr/scalar_ops.h"
#include "obs/metrics.h"
#include "types/decimal.h"

namespace photon {
namespace {

// ---------------------------------------------------------------------------
// Plan-time rewriting
// ---------------------------------------------------------------------------

/// Rewrites `e` so every column reference resolves against the chain's
/// *input* schema: bindings[i] is the input-schema expression computing the
/// current schema's column i. Fails on expression kinds it cannot rebuild,
/// which makes the whole chain fall back to the per-node operators.
Result<ExprPtr> SubstituteColumns(const ExprPtr& e,
                                  const std::vector<ExprPtr>& bindings) {
  if (auto* c = dynamic_cast<const ColumnRefExpr*>(e.get())) {
    int idx = c->index();
    if (idx < 0 || idx >= static_cast<int>(bindings.size())) {
      return Status::Internal("fusion: column index out of range");
    }
    return bindings[idx];
  }
  if (dynamic_cast<const LiteralExpr*>(e.get()) != nullptr) return e;
  if (auto* cw = dynamic_cast<const CaseWhenExpr*>(e.get())) {
    std::vector<std::pair<ExprPtr, ExprPtr>> branches;
    branches.reserve(cw->branches().size());
    for (const auto& [cond, then] : cw->branches()) {
      PHOTON_ASSIGN_OR_RETURN(ExprPtr c2, SubstituteColumns(cond, bindings));
      PHOTON_ASSIGN_OR_RETURN(ExprPtr t2, SubstituteColumns(then, bindings));
      branches.emplace_back(std::move(c2), std::move(t2));
    }
    ExprPtr else2;
    if (cw->else_expr() != nullptr) {
      PHOTON_ASSIGN_OR_RETURN(else2,
                              SubstituteColumns(cw->else_expr(), bindings));
    }
    return std::static_pointer_cast<Expr>(std::make_shared<CaseWhenExpr>(
        std::move(branches), std::move(else2), e->type()));
  }
  if (auto* f = dynamic_cast<const CallExpr*>(e.get())) {
    std::vector<ExprPtr> args;
    args.reserve(f->args().size());
    for (const ExprPtr& a : f->args()) {
      PHOTON_ASSIGN_OR_RETURN(ExprPtr a2, SubstituteColumns(a, bindings));
      args.push_back(std::move(a2));
    }
    return std::static_pointer_cast<Expr>(
        std::make_shared<CallExpr>(f->name(), std::move(args), e->type()));
  }
  std::vector<ExprPtr> kids;
  for (const ExprPtr& child : e->children()) {
    PHOTON_ASSIGN_OR_RETURN(ExprPtr k, SubstituteColumns(child, bindings));
    kids.push_back(std::move(k));
  }
  ExprPtr rebuilt = RebuildWithChildren(*e, std::move(kids));
  if (rebuilt == nullptr) {
    return Status::NotImplemented("fusion: unsupported expression kind");
  }
  return rebuilt;
}

/// Splits nested ANDs into conjuncts. Filtering per conjunct (dropping rows
/// where it is false or NULL) equals filtering once on the conjunction
/// under Kleene logic: a AND b is true iff both conjuncts are true.
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (auto* b = dynamic_cast<const BooleanExpr*>(e.get())) {
    if (b->op() == BoolOp::kAnd) {
      std::vector<ExprPtr> kids = e->children();
      SplitConjuncts(kids[0], out);
      SplitConjuncts(kids[1], out);
      return;
    }
  }
  out->push_back(e);
}

// ---------------------------------------------------------------------------
// Compiled tier: position-list-direct filter terms
// ---------------------------------------------------------------------------

/// Rewrites the position list in place, keeping rows where `pred` holds on
/// a non-NULL value — exactly the rows ApplyBooleanFilter keeps for the
/// corresponding comparison result vector.
template <typename T, typename Pred>
int PredTermLoop(ColumnBatch* batch, int col, Pred pred) {
  ColumnVector* v = batch->column(col);
  const T* data = v->data<T>();
  const uint8_t* nulls = v->nulls();
  int32_t* pos = batch->mutable_pos_list();
  int n = batch->num_active();
  bool hn = v->ComputeHasNulls(pos, n, batch->all_active());
  int out = 0;
  DispatchBatchShape(hn, batch->all_active(),
                     [&](auto nulls_c, auto active_c) {
                       constexpr bool kN = decltype(nulls_c)::value;
                       constexpr bool kA = decltype(active_c)::value;
                       for (int i = 0; i < n; i++) {
                         int row = kA ? i : pos[i];
                         if constexpr (kN) {
                           if (nulls[row]) continue;
                         }
                         if (pred(data[row])) pos[out++] = row;
                       }
                     });
  batch->SetActiveRows(out);
  return out;
}

/// Direct operators, not a compare-then-test of a three-way result: the
/// vectorized CompareKernel uses direct operators too, and for floats they
/// disagree with a three-way compare on NaN (e.g. NaN == x and NaN < x are
/// both false).
template <typename T>
FusedUnit::CompiledTermFn MakeCmpTerm(int col, T lit, CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return [col, lit](ColumnBatch* b) {
        return PredTermLoop<T>(b, col, [lit](T v) { return v == lit; });
      };
    case CmpOp::kNe:
      return [col, lit](ColumnBatch* b) {
        return PredTermLoop<T>(b, col, [lit](T v) { return v != lit; });
      };
    case CmpOp::kLt:
      return [col, lit](ColumnBatch* b) {
        return PredTermLoop<T>(b, col, [lit](T v) { return v < lit; });
      };
    case CmpOp::kLe:
      return [col, lit](ColumnBatch* b) {
        return PredTermLoop<T>(b, col, [lit](T v) { return v <= lit; });
      };
    case CmpOp::kGt:
      return [col, lit](ColumnBatch* b) {
        return PredTermLoop<T>(b, col, [lit](T v) { return v > lit; });
      };
    case CmpOp::kGe:
      return [col, lit](ColumnBatch* b) {
        return PredTermLoop<T>(b, col, [lit](T v) { return v >= lit; });
      };
  }
  return nullptr;
}

template <typename T>
FusedUnit::CompiledTermFn MakeBetweenTerm(int col, T lo, T hi) {
  return [col, lo, hi](ColumnBatch* b) {
    return PredTermLoop<T>(b, col,
                           [lo, hi](T v) { return v >= lo && v <= hi; });
  };
}

/// lit CMP col == col mirror(CMP) lit. Eq/Ne are symmetric (including the
/// NaN cases: both sides are false); orderings flip (IEEE a < b iff b > a).
CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

/// Compiles a column-vs-literal comparison or BETWEEN conjunct into a term
/// that edits the position list directly, skipping the boolean result
/// vector entirely. Returns null for every other shape.
FusedUnit::CompiledTermFn TryCompileFilterTerm(const ExprPtr& conjunct) {
  if (auto* cmp = dynamic_cast<const ComparisonExpr*>(conjunct.get())) {
    std::vector<ExprPtr> kids = conjunct->children();
    ExprPtr l = TryFoldConst(kids[0]);
    ExprPtr r = TryFoldConst(kids[1]);
    const auto* col = dynamic_cast<const ColumnRefExpr*>(l.get());
    const auto* lit = dynamic_cast<const LiteralExpr*>(r.get());
    CmpOp op = cmp->op();
    if (col == nullptr) {
      col = dynamic_cast<const ColumnRefExpr*>(r.get());
      lit = dynamic_cast<const LiteralExpr*>(l.get());
      op = MirrorCmp(op);
    }
    if (col == nullptr || lit == nullptr || lit->value().is_null()) {
      return nullptr;
    }
    switch (col->type().id()) {
      case TypeId::kInt32:
      case TypeId::kDate32:
        return MakeCmpTerm<int32_t>(col->index(), lit->value().i32(), op);
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        return MakeCmpTerm<int64_t>(col->index(), lit->value().i64(), op);
      case TypeId::kFloat64:
        return MakeCmpTerm<double>(col->index(), lit->value().f64(), op);
      case TypeId::kDecimal128: {
        // The interpreted kernel compares at the wider scale; with the
        // column already there, only the literal needs (one-time)
        // prescaling. Narrower columns stay on the interpreted path.
        int sc = col->type().scale();
        int sl = lit->type().scale();
        if (sc < sl) return nullptr;
        int128_t v =
            lit->value().decimal().value() * Decimal128::PowerOfTen(sc - sl);
        return MakeCmpTerm<int128_t>(col->index(), v, op);
      }
      default:
        return nullptr;
    }
  }
  if (dynamic_cast<const BetweenExpr*>(conjunct.get()) != nullptr) {
    std::vector<ExprPtr> kids = conjunct->children();
    const auto* col = dynamic_cast<const ColumnRefExpr*>(kids[0].get());
    ExprPtr lo = TryFoldConst(kids[1]);
    ExprPtr hi = TryFoldConst(kids[2]);
    const auto* lol = dynamic_cast<const LiteralExpr*>(lo.get());
    const auto* hil = dynamic_cast<const LiteralExpr*>(hi.get());
    if (col == nullptr || lol == nullptr || hil == nullptr ||
        lol->value().is_null() || hil->value().is_null()) {
      return nullptr;
    }
    switch (col->type().id()) {
      case TypeId::kInt32:
      case TypeId::kDate32:
        return MakeBetweenTerm<int32_t>(col->index(), lol->value().i32(),
                                        hil->value().i32());
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        return MakeBetweenTerm<int64_t>(col->index(), lol->value().i64(),
                                        hil->value().i64());
      case TypeId::kFloat64:
        return MakeBetweenTerm<double>(col->index(), lol->value().f64(),
                                       hil->value().f64());
      case TypeId::kDecimal128:
        // The BetweenExpr constructor checks the three decimal scales are
        // aligned, so the raw int128 values compare correctly.
        return MakeBetweenTerm<int128_t>(col->index(),
                                         lol->value().decimal().value(),
                                         hil->value().decimal().value());
      default:
        return nullptr;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Compiled tier: template-instantiated arithmetic steps
// ---------------------------------------------------------------------------

/// A step operand: a register (another instruction's result) or a non-null
/// literal broadcast as a scalar.
template <typename T>
struct COperand {
  int reg = -1;  // -1 -> scalar
  T scalar{};
};

/// The bound per-batch view of a COperand. `row & mask` folds the scalar
/// broadcast into the same indexed load as the vector case: mask is ~0 for
/// registers and 0 for scalars, whose single value (and never-null null
/// byte) sits at index 0.
template <typename T>
struct CRef {
  const T* data;
  const uint8_t* nulls;
  uint32_t mask;
};

const uint8_t kNeverNull = 0;

template <typename T>
CRef<T> BindOperand(const COperand<T>& op, ColumnVector* const* regs) {
  if (op.reg >= 0) {
    return {regs[op.reg]->template data<T>(), regs[op.reg]->nulls(), ~0u};
  }
  return {&op.scalar, &kNeverNull, 0u};
}

template <typename T>
bool OperandHasNulls(const COperand<T>& op, ColumnVector* const* regs,
                     const int32_t* pos, int n, bool all_active) {
  return op.reg >= 0 && regs[op.reg]->ComputeHasNulls(pos, n, all_active);
}

template <typename T, typename Op>
ExprProgram::CompiledStepFn MakeSingleStep(COperand<T> a, COperand<T> b,
                                           DataType result) {
  return [a, b, result](ColumnBatch* batch, EvalContext* ctx,
                        ColumnVector* const* regs) -> Result<ColumnVector*> {
    ColumnVector* out = ctx->NewVector(result, batch->capacity());
    int n = batch->num_active();
    const int32_t* pos = batch->pos_list();
    bool all = batch->all_active();
    bool has_nulls = OperandHasNulls(a, regs, pos, n, all) ||
                     OperandHasNulls(b, regs, pos, n, all);
    CRef<T> ra = BindOperand(a, regs);
    CRef<T> rb = BindOperand(b, regs);
    T* ov = out->data<T>();
    uint8_t* on = out->nulls();
    DispatchBatchShape(has_nulls, all, [&](auto nulls_c, auto active_c) {
      constexpr bool kN = decltype(nulls_c)::value;
      constexpr bool kA = decltype(active_c)::value;
      for (int i = 0; i < n; i++) {
        int row = kA ? i : pos[i];
        uint32_t ia = static_cast<uint32_t>(row) & ra.mask;
        uint32_t ib = static_cast<uint32_t>(row) & rb.mask;
        if constexpr (kN) {
          if (ra.nulls[ia] | rb.nulls[ib]) {
            on[row] = 1;
            continue;
          }
        }
        if (!Op::Apply(ra.data[ia], rb.data[ib], &ov[row])) on[row] = 1;
      }
    });
    out->set_has_nulls(has_nulls ? TriState::kYes : TriState::kUnknown);
    return out;
  };
}

/// Two fused arithmetic ops in one loop:
///   out = kInnerLeft ? Outer(Inner(x, y), z) : Outer(z, Inner(x, y)).
/// Only attached when both ops are in {+,-,*}, which never fail, so the
/// inner result is NULL exactly when an inner operand is — the same rows
/// the two-instruction interpretation nulls.
template <typename T, typename InnerOp, typename OuterOp, bool kInnerLeft>
ExprProgram::CompiledStepFn MakeFused2Step(COperand<T> x, COperand<T> y,
                                           COperand<T> z, DataType result) {
  return [x, y, z, result](ColumnBatch* batch, EvalContext* ctx,
                           ColumnVector* const* regs) -> Result<ColumnVector*> {
    ColumnVector* out = ctx->NewVector(result, batch->capacity());
    int n = batch->num_active();
    const int32_t* pos = batch->pos_list();
    bool all = batch->all_active();
    bool has_nulls = OperandHasNulls(x, regs, pos, n, all) ||
                     OperandHasNulls(y, regs, pos, n, all) ||
                     OperandHasNulls(z, regs, pos, n, all);
    CRef<T> rx = BindOperand(x, regs);
    CRef<T> ry = BindOperand(y, regs);
    CRef<T> rz = BindOperand(z, regs);
    T* ov = out->data<T>();
    uint8_t* on = out->nulls();
    DispatchBatchShape(has_nulls, all, [&](auto nulls_c, auto active_c) {
      constexpr bool kN = decltype(nulls_c)::value;
      constexpr bool kA = decltype(active_c)::value;
      for (int i = 0; i < n; i++) {
        int row = kA ? i : pos[i];
        uint32_t ix = static_cast<uint32_t>(row) & rx.mask;
        uint32_t iy = static_cast<uint32_t>(row) & ry.mask;
        uint32_t iz = static_cast<uint32_t>(row) & rz.mask;
        if constexpr (kN) {
          if (rx.nulls[ix] | ry.nulls[iy] | rz.nulls[iz]) {
            on[row] = 1;
            continue;
          }
        }
        T inner;
        if (!InnerOp::Apply(rx.data[ix], ry.data[iy], &inner)) {
          on[row] = 1;
          continue;
        }
        bool ok = kInnerLeft ? OuterOp::Apply(inner, rz.data[iz], &ov[row])
                             : OuterOp::Apply(rz.data[iz], inner, &ov[row]);
        if (!ok) on[row] = 1;
      }
    });
    out->set_has_nulls(has_nulls ? TriState::kYes : TriState::kUnknown);
    return out;
  };
}

bool IsAddSubMul(ArithOp op) {
  return op == ArithOp::kAdd || op == ArithOp::kSub || op == ArithOp::kMul;
}

template <typename T>
ExprProgram::CompiledStepFn MakeArithStep(ArithOp op, COperand<T> a,
                                          COperand<T> b, DataType result) {
  switch (op) {
    case ArithOp::kAdd:
      return MakeSingleStep<T, AddOp<T>>(a, b, result);
    case ArithOp::kSub:
      return MakeSingleStep<T, SubOp<T>>(a, b, result);
    case ArithOp::kMul:
      return MakeSingleStep<T, MulOp<T>>(a, b, result);
    case ArithOp::kDiv:
    case ArithOp::kMod:
      // Decimal division rescales and rounds; the plain scalar ops do not
      // implement that, so those instructions stay interpreted.
      if constexpr (std::is_same_v<T, int128_t>) {
        return nullptr;
      } else {
        return op == ArithOp::kDiv
                   ? MakeSingleStep<T, DivOp<T>>(a, b, result)
                   : MakeSingleStep<T, ModOp<T>>(a, b, result);
      }
  }
  return nullptr;
}

template <typename T, typename InnerOp>
ExprProgram::CompiledStepFn MakeFused2Outer(ArithOp outer, bool inner_left,
                                            COperand<T> x, COperand<T> y,
                                            COperand<T> z, DataType result) {
  switch (outer) {
    case ArithOp::kAdd:
      return inner_left
                 ? MakeFused2Step<T, InnerOp, AddOp<T>, true>(x, y, z, result)
                 : MakeFused2Step<T, InnerOp, AddOp<T>, false>(x, y, z,
                                                               result);
    case ArithOp::kSub:
      return inner_left
                 ? MakeFused2Step<T, InnerOp, SubOp<T>, true>(x, y, z, result)
                 : MakeFused2Step<T, InnerOp, SubOp<T>, false>(x, y, z,
                                                               result);
    case ArithOp::kMul:
      return inner_left
                 ? MakeFused2Step<T, InnerOp, MulOp<T>, true>(x, y, z, result)
                 : MakeFused2Step<T, InnerOp, MulOp<T>, false>(x, y, z,
                                                               result);
    default:
      return nullptr;
  }
}

template <typename T>
ExprProgram::CompiledStepFn MakeFused2(ArithOp inner, ArithOp outer,
                                       bool inner_left, COperand<T> x,
                                       COperand<T> y, COperand<T> z,
                                       DataType result) {
  switch (inner) {
    case ArithOp::kAdd:
      return MakeFused2Outer<T, AddOp<T>>(outer, inner_left, x, y, z, result);
    case ArithOp::kSub:
      return MakeFused2Outer<T, SubOp<T>>(outer, inner_left, x, y, z, result);
    case ArithOp::kMul:
      return MakeFused2Outer<T, MulOp<T>>(outer, inner_left, x, y, z, result);
    default:
      return nullptr;
  }
}

struct OperandDesc {
  int reg = -1;  // register; -1 when the arg is a non-NULL literal
  const LiteralExpr* lit = nullptr;
  DataType type;
};

/// True when instruction `i` is an arithmetic node the compiled tier has
/// kernels for: int64/float64 any op, decimal add/sub/mul on the regular
/// (non-precision-capped) fast path.
bool ArithEligible(const ExprProgram& p, size_t i, TypeId* tid, ArithOp* op) {
  const ExprInstr& ins = p.instrs()[i];
  if (ins.kind != ExprInstr::Kind::kNode) return false;
  auto* a = dynamic_cast<const ArithmeticExpr*>(ins.node.get());
  if (a == nullptr) return false;
  TypeId t = a->type().id();
  if (t != TypeId::kInt64 && t != TypeId::kFloat64 &&
      t != TypeId::kDecimal128) {
    return false;
  }
  if (t == TypeId::kDecimal128) {
    if (!IsAddSubMul(a->op())) return false;
    const DataType& lt = p.instrs()[ins.args[0]].node->type();
    const DataType& rt = p.instrs()[ins.args[1]].node->type();
    // Irregular (precision-capped) cases run the checked BigDecimal row
    // loop in the interpreter; never compile those.
    if (DecimalArithIsIrregular(a->op(), lt, rt, a->type())) return false;
  }
  *tid = t;
  *op = a->op();
  return true;
}

void GetOperandDescs(const ExprProgram& p, size_t i, OperandDesc d[2]) {
  const ExprInstr& ins = p.instrs()[i];
  for (int k = 0; k < 2; k++) {
    int arg = ins.args[k];
    const ExprInstr& ai = p.instrs()[arg];
    d[k].type = ai.node->type();
    d[k].reg = arg;
    d[k].lit = nullptr;
    if (ai.kind == ExprInstr::Kind::kLoadLit) {
      auto* l = static_cast<const LiteralExpr*>(ai.node.get());
      // NULL literals stay register operands: the cached literal vector's
      // null bytes give the right propagation for free.
      if (!l->value().is_null()) {
        d[k].reg = -1;
        d[k].lit = l;
      }
    }
  }
}

/// Converts a descriptor to a typed operand, applying the decimal operand
/// rules of DecimalAddSubKernel: for add/sub every operand arrives at the
/// result scale (register operands must already be there; literals are
/// prescaled once), for mul the raw values are used (sr == s1 + s2 on the
/// regular path).
template <typename T>
bool ConvertOperand(const OperandDesc& d, ArithOp op, const DataType& result,
                    COperand<T>* out) {
  if constexpr (std::is_same_v<T, int128_t>) {
    bool add_sub = op == ArithOp::kAdd || op == ArithOp::kSub;
    if (d.reg >= 0) {
      if (add_sub && d.type.scale() != result.scale()) return false;
      out->reg = d.reg;
      return true;
    }
    int128_t v = d.lit->value().decimal().value();
    if (add_sub) {
      int diff = result.scale() - d.type.scale();
      if (diff < 0) return false;  // cannot happen on the regular path
      v *= Decimal128::PowerOfTen(diff);
    }
    out->reg = -1;
    out->scalar = v;
    return true;
  } else {
    if (d.reg >= 0) {
      out->reg = d.reg;
      return true;
    }
    if constexpr (std::is_same_v<T, int64_t>) {
      out->scalar = d.lit->value().i64();
    } else {
      out->scalar = d.lit->value().f64();
    }
    out->reg = -1;
    return true;
  }
}

/// Attaches a compiled step to instruction `j`, fusing a single-use inner
/// arithmetic operand into it (two ops per loop iteration) when possible.
template <typename T>
void TryAttachArith(ExprProgram* p, size_t j, ArithOp opj,
                    const OperandDesc dj[2]) {
  const DataType& result = p->instrs()[j].node->type();
  if (IsAddSubMul(opj)) {
    for (int s = 0; s < 2; s++) {
      if (dj[s].reg < 0) continue;
      size_t i = static_cast<size_t>(dj[s].reg);
      if (p->num_uses(dj[s].reg) != 1 || p->is_root(dj[s].reg)) continue;
      TypeId ti;
      ArithOp opi;
      if (!ArithEligible(*p, i, &ti, &opi)) continue;
      if (ti != result.id() || !IsAddSubMul(opi)) continue;
      // If `i` already fused one of its own operands away (that operand's
      // instruction is marked skipped and only i's compiled step covers
      // it), absorbing `i` here would orphan the skipped register: i's
      // step would no longer run, and nothing else computes the operand
      // its x/y references point at.
      if (p->skip_when_compiled(p->instrs()[i].args[0]) ||
          p->skip_when_compiled(p->instrs()[i].args[1])) {
        continue;
      }
      // The inner result must be usable where its register would be (for
      // decimal add/sub: already at the outer result scale).
      COperand<T> inner_as_reg;
      if (!ConvertOperand<T>(dj[s], opj, result, &inner_as_reg)) continue;
      OperandDesc di[2];
      GetOperandDescs(*p, i, di);
      const DataType& inner_result = p->instrs()[i].node->type();
      COperand<T> x, y, z;
      if (!ConvertOperand<T>(di[0], opi, inner_result, &x)) continue;
      if (!ConvertOperand<T>(di[1], opi, inner_result, &y)) continue;
      if (!ConvertOperand<T>(dj[1 - s], opj, result, &z)) continue;
      ExprProgram::CompiledStepFn fn =
          MakeFused2<T>(opi, opj, /*inner_left=*/s == 0, x, y, z, result);
      if (!fn) continue;
      p->SetCompiledStep(j, std::move(fn));
      p->MarkSkipWhenCompiled(i);
      return;
    }
  }
  COperand<T> a, b;
  if (!ConvertOperand<T>(dj[0], opj, result, &a)) return;
  if (!ConvertOperand<T>(dj[1], opj, result, &b)) return;
  ExprProgram::CompiledStepFn fn = MakeArithStep<T>(opj, a, b, result);
  if (fn) p->SetCompiledStep(j, std::move(fn));
}

/// Overlays every eligible arithmetic instruction with a compiled step.
/// Instructions are in postfix order, so an instruction's operands have
/// smaller indices and fusion marks only already-visited instructions.
void AttachCompiledSteps(ExprProgram* p) {
  for (size_t j = 0; j < p->instrs().size(); j++) {
    TypeId tj;
    ArithOp opj;
    if (!ArithEligible(*p, j, &tj, &opj)) continue;
    OperandDesc dj[2];
    GetOperandDescs(*p, j, dj);
    switch (tj) {
      case TypeId::kInt64:
        TryAttachArith<int64_t>(p, j, opj, dj);
        break;
      case TypeId::kFloat64:
        TryAttachArith<double>(p, j, opj, dj);
        break;
      case TypeId::kDecimal128:
        TryAttachArith<int128_t>(p, j, opj, dj);
        break;
      default:
        break;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FusedUnit
// ---------------------------------------------------------------------------

Result<std::shared_ptr<const FusedUnit>> FusedUnit::Compile(
    const std::vector<FusedStage>& stages, const Schema& input_schema) {
  std::shared_ptr<FusedUnit> unit(new FusedUnit());

  // bindings[i] = the expression over the *input* schema computing column i
  // of the chain's current schema. Starts as the identity.
  std::vector<ExprPtr> bindings;
  bindings.reserve(input_schema.num_fields());
  for (int i = 0; i < input_schema.num_fields(); i++) {
    bindings.push_back(std::make_shared<ColumnRefExpr>(
        i, input_schema.field(i).type, input_schema.field(i).name));
  }

  std::vector<ExprPtr> raw_conjuncts;
  std::vector<std::string> names;
  bool have_projection = false;
  for (const FusedStage& st : stages) {
    // Flattening substitutes and canonicalizes recursively; refuse trees
    // deep enough to threaten the stack before touching them.
    if (st.is_filter) {
      PHOTON_RETURN_NOT_OK(CheckExpressionDepth(*st.predicate));
    } else {
      for (const ExprPtr& e : st.exprs) {
        PHOTON_RETURN_NOT_OK(CheckExpressionDepth(*e));
      }
    }
    if (st.is_filter) {
      PHOTON_ASSIGN_OR_RETURN(ExprPtr pred,
                              SubstituteColumns(st.predicate, bindings));
      SplitConjuncts(pred, &raw_conjuncts);
    } else {
      PHOTON_CHECK(st.exprs.size() == st.names.size());
      std::vector<ExprPtr> next;
      next.reserve(st.exprs.size());
      for (const ExprPtr& e : st.exprs) {
        PHOTON_ASSIGN_OR_RETURN(ExprPtr s, SubstituteColumns(e, bindings));
        next.push_back(std::move(s));
      }
      bindings = std::move(next);
      names = st.names;
      have_projection = true;
    }
  }

  for (const ExprPtr& raw : raw_conjuncts) {
    ExprPtr c = TryFoldConst(raw);
    if (auto* l = dynamic_cast<const LiteralExpr*>(c.get());
        l != nullptr && (l->value().is_null() ||
                         l->type().id() == TypeId::kBoolean)) {
      // TRUE conjuncts filter nothing; FALSE and NULL conjuncts reject
      // every row (Kleene: the whole AND can then never be true).
      if (!l->value().is_null() && l->value().boolean()) continue;
      unit->always_false_ = true;
      break;
    }
    Conjunct cj;
    cj.expr = c;
    cj.program = ExprProgram::Compile({c});
    AttachCompiledSteps(&cj.program);
    cj.term = TryCompileFilterTerm(c);
    unit->num_compiled_ +=
        cj.program.num_compiled_steps() + (cj.term ? 1 : 0);
    unit->conjuncts_.push_back(std::move(cj));
  }
  if (unit->always_false_) {
    unit->conjuncts_.clear();
    unit->num_compiled_ = 0;
  }

  if (have_projection) {
    unit->has_projection_ = true;
    std::vector<ExprPtr> proj_roots;
    Schema out_schema;
    for (size_t i = 0; i < bindings.size(); i++) {
      Output o;
      if (auto* cr = dynamic_cast<const ColumnRefExpr*>(bindings[i].get())) {
        o.input_col = cr->index();
      } else {
        o.root = static_cast<int>(proj_roots.size());
        proj_roots.push_back(bindings[i]);
      }
      unit->outputs_.push_back(o);
      out_schema.AddField(Field(names[i], bindings[i]->type()));
    }
    unit->projection_ = ExprProgram::Compile(proj_roots);
    AttachCompiledSteps(&unit->projection_);
    unit->num_compiled_ += unit->projection_.num_compiled_steps();
    unit->output_schema_ = std::move(out_schema);
  } else {
    unit->output_schema_ = input_schema;
  }
  return std::shared_ptr<const FusedUnit>(std::move(unit));
}

// ---------------------------------------------------------------------------
// FusedUnitState
// ---------------------------------------------------------------------------

FusedUnitState::FusedUnitState(std::shared_ptr<const FusedUnit> unit,
                               ExprPolicy policy)
    : unit_(std::move(unit)), policy_(policy) {
  conjunct_states_.reserve(unit_->conjuncts().size());
  for (const FusedUnit::Conjunct& cj : unit_->conjuncts()) {
    conjunct_states_.emplace_back(cj.program);
  }
  if (unit_->has_projection()) {
    projection_state_ = std::make_unique<ProgramState>(unit_->projection());
  }
  order_.resize(unit_->conjuncts().size());
  std::iota(order_.begin(), order_.end(), size_t{0});
  sel_.assign(order_.size(), -1.0);
}

bool FusedUnitState::PickCompiled() {
  switch (policy_) {
    case ExprPolicy::kTreeOnly:
    case ExprPolicy::kFusedOnly:
      return false;
    case ExprPolicy::kCompiledOnly:
      return true;
    case ExprPolicy::kAdaptive:
      break;
  }
  if (unit_->num_compiled() == 0) return false;
  if (fused_ns_row_ < 0) return false;    // first: measure the fused tier
  if (compiled_ns_row_ < 0) return true;  // then: measure the compiled tier
  // Periodic re-probe of the losing tier keeps the timing feedback fresh
  // when the data distribution shifts mid-query (§4.6 adaptivity).
  if ((batches_ & 63) == 1) return !prefer_compiled_;
  bool pick = compiled_ns_row_ <= fused_ns_row_;
  if (pick != prefer_compiled_) {
    tier_switches_++;
    prefer_compiled_ = pick;
  }
  return pick;
}

void FusedUnitState::ReorderConjuncts() {
  if (order_.size() < 2 || (batches_ & 63) != 0) return;
  // Most selective (lowest pass rate) first. Reordering is safe: every
  // conjunct must independently hold and no kernel has row side effects.
  std::stable_sort(order_.begin(), order_.end(), [this](size_t a, size_t b) {
    double sa = sel_[a] < 0 ? 1.0 : sel_[a];
    double sb = sel_[b] < 0 ? 1.0 : sel_[b];
    return sa < sb;
  });
}

Result<int> FusedUnitState::Eval(ColumnBatch* batch, EvalContext* ctx) {
  batches_++;
  if (unit_->always_false()) {
    batch->SetActiveRows(0);
    return 0;
  }
  if (policy_ == ExprPolicy::kAdaptive) ReorderConjuncts();
  bool use_compiled = PickCompiled();
  bool timed = policy_ == ExprPolicy::kAdaptive && unit_->num_compiled() > 0;
  int rows_in = batch->num_active();
  int64_t start = timed ? obs::WallNowNs() : 0;

  for (size_t k = 0; k < order_.size(); k++) {
    size_t ci = order_[k];
    int before = batch->num_active();
    if (before == 0) break;
    const FusedUnit::Conjunct& cj = unit_->conjuncts()[ci];
    int after;
    if (use_compiled && cj.term) {
      after = cj.term(batch);
    } else {
      ProgramState& st = conjunct_states_[ci];
      PHOTON_RETURN_NOT_OK(st.Run(batch, ctx, use_compiled));
      after = ApplyBooleanFilter(*st.reg(cj.program.root_regs()[0]), batch);
    }
    double s = static_cast<double>(after) / before;
    sel_[ci] = sel_[ci] < 0 ? s : 0.9 * sel_[ci] + 0.1 * s;
  }

  int active = batch->num_active();
  if (unit_->has_projection() &&
      (active > 0 || !unit_->has_predicates())) {
    PHOTON_RETURN_NOT_OK(projection_state_->Run(batch, ctx, use_compiled));
  }

  if (timed && rows_in > 0) {
    double ns_row = static_cast<double>(obs::WallNowNs() - start) / rows_in;
    double& ewma = use_compiled ? compiled_ns_row_ : fused_ns_row_;
    ewma = ewma < 0 ? ns_row : 0.8 * ewma + 0.2 * ns_row;
  }
  if (use_compiled) {
    compiled_batches_++;
  } else {
    fused_batches_++;
  }
  return batch->num_active();
}

ColumnVector* FusedUnitState::Output(size_t i, ColumnBatch* batch) const {
  const FusedUnit::Output& o = unit_->outputs()[i];
  if (o.input_col >= 0) return batch->column(o.input_col);
  return projection_state_->reg(unit_->projection().root_regs()[o.root]);
}

}  // namespace photon
