#ifndef PHOTON_EXPR_EXPR_H_
#define PHOTON_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/eval_context.h"
#include "types/value.h"
#include "vector/column_batch.h"

namespace photon {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Base class of the expression tree shared by both engines.
///
/// Photon evaluates expressions with `Evaluate`: a vectorized pass over the
/// *active* rows of a batch, producing a result vector *aligned with batch
/// row indices* (the value for batch row r sits at index r of the result).
/// Kernels only read and write active positions — data at inactive indices
/// may be garbage but must never be overwritten (§4.3).
///
/// The row-oriented baseline engine ("DBR") evaluates the same tree with
/// `EvaluateRow`, a Volcano-style tree-walking interpreter over boxed
/// values. Keeping one tree with two evaluators is also how the test suite
/// enforces semantic consistency between the engines (§5.6).
class Expr {
 public:
  explicit Expr(DataType type) : type_(type) {}
  virtual ~Expr() = default;

  const DataType& type() const { return type_; }

  /// Vectorized evaluation over the batch's active rows.
  virtual Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                         EvalContext* ctx) const = 0;

  /// Row-at-a-time evaluation (baseline engine and oracle tests).
  virtual Result<Value> EvaluateRow(const std::vector<Value>& row) const = 0;

  virtual std::string ToString() const = 0;

  /// Children, for plan analysis (column pruning, support checks).
  virtual std::vector<ExprPtr> children() const { return {}; }

 private:
  DataType type_;
};

/// References an input column by index.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(int index, DataType type, std::string name = "")
      : Expr(type), index_(index), name_(std::move(name)) {}

  int index() const { return index_; }
  const std::string& name() const { return name_; }

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;

 private:
  int index_;
  std::string name_;
};

/// A constant. Materialized lazily into a filled scratch vector.
class LiteralExpr : public Expr {
 public:
  LiteralExpr(Value value, DataType type)
      : Expr(type), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;

 private:
  Value value_;
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Binary arithmetic over same-TypeId operands (the builder inserts casts).
/// Decimal operands may differ in scale; the node carries the result
/// precision/scale computed with Spark-compatible rules.
class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right, DataType result);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {left_, right_}; }

  ArithOp op() const { return op_; }

 private:
  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Comparison producing a (nullable) boolean vector; SQL semantics: NULL if
/// either side is NULL.
class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(CmpOp op, ExprPtr left, ExprPtr right);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {left_, right_}; }

  CmpOp op() const { return op_; }

 private:
  CmpOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// Fused BETWEEN: col >= lo AND col <= hi evaluated in one kernel pass.
/// The paper calls this out as a specialization that recovers code-gen's
/// advantage on a very common pattern (§3.3).
class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr value, ExprPtr lo, ExprPtr hi);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override {
    return {value_, lo_, hi_};
  }

 private:
  ExprPtr value_;
  ExprPtr lo_;
  ExprPtr hi_;
};

enum class BoolOp : uint8_t { kAnd, kOr };

/// Three-valued AND/OR.
class BooleanExpr : public Expr {
 public:
  BooleanExpr(BoolOp op, ExprPtr left, ExprPtr right);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {left_, right_}; }

  BoolOp op() const { return op_; }

 private:
  BoolOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  ExprPtr child_;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

  bool negated() const { return negated_; }

 private:
  ExprPtr child_;
  bool negated_;
};

/// Type conversion. Follows Spark's non-ANSI semantics (e.g. failed
/// string-to-number casts yield NULL).
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr child, DataType to);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {child_}; }

 private:
  ExprPtr child_;
};

/// CASE WHEN ... THEN ... [ELSE ...] END. Implemented per §4.3: each branch
/// runs its kernel with the position list narrowed to the rows that took
/// the branch, all branches writing into the same output vector.
class CaseWhenExpr : public Expr {
 public:
  CaseWhenExpr(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
               ExprPtr else_expr, DataType result);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override;

  const std::vector<std::pair<ExprPtr, ExprPtr>>& branches() const {
    return branches_;
  }
  const ExprPtr& else_expr() const { return else_expr_; }

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> branches_;
  ExprPtr else_expr_;  // may be null (-> NULL)
};

/// value IN (literal, ...). NULL semantics match Spark.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr value, std::vector<Value> list);

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return {value_}; }

  const std::vector<Value>& list() const { return list_; }

 private:
  ExprPtr value_;
  std::vector<Value> list_;
};

/// A call to a named scalar function from the function registry (upper,
/// substr, sqrt, year, like, ...).
class CallExpr : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args, DataType result);

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  Result<ColumnVector*> Evaluate(ColumnBatch* batch,
                                 EvalContext* ctx) const override;
  Result<Value> EvaluateRow(const std::vector<Value>& row) const override;
  std::string ToString() const override;
  std::vector<ExprPtr> children() const override { return args_; }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// Applies a boolean predicate result to the batch: active rows whose
/// predicate value is false or NULL are deactivated by rewriting the
/// position list in place (§4.3). Returns the new active count.
int ApplyBooleanFilter(const ColumnVector& bools, ColumnBatch* batch);

/// Evaluates `predicate` and filters the batch. Convenience wrapper used by
/// the Filter operator and by hash join post-conditions.
Result<int> FilterBatch(const Expr& predicate, ColumnBatch* batch,
                        EvalContext* ctx);

}  // namespace photon

#endif  // PHOTON_EXPR_EXPR_H_
