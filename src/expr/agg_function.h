#ifndef PHOTON_EXPR_AGG_FUNCTION_H_
#define PHOTON_EXPR_AGG_FUNCTION_H_

#include <memory>
#include <string>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "vector/column_batch.h"
#include "vector/var_len_pool.h"

namespace photon {

enum class AggKind : uint8_t {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kCollectList,
};

/// A vectorized aggregate function. Aggregation state is a fixed-size POD
/// block embedded in a hash table entry's payload; variable-size state
/// (collect_list contents, min/max strings) lives in an arena shared by the
/// whole aggregation, so list growth coalesces allocations across groups
/// instead of managing each group's state independently — the optimization
/// Figure 5 attributes part of its 5.7x to.
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual DataType result_type() const = 0;
  virtual int state_bytes() const = 0;

  /// Zeroes/initializes a state block.
  virtual void Init(uint8_t* state) const = 0;

  /// Vectorized update: for the i-th active row of `batch`, `states[i]`
  /// points at the row's group state (already initialized). `arg` is the
  /// evaluated argument vector (nullptr for count(*)).
  virtual void Update(const ColumnVector* arg, const ColumnBatch& batch,
                      uint8_t* const* states) const = 0;

  /// Combines src into dst (spill-merge path).
  virtual void Merge(uint8_t* dst, const uint8_t* src) const = 0;

  /// Writes the final value into out[row].
  virtual void Finalize(const uint8_t* state, ColumnVector* out,
                        int row) const = 0;

  /// Spill serialization.
  virtual void Serialize(const uint8_t* state, BinaryWriter* out) const = 0;
  virtual Status Deserialize(BinaryReader* in, uint8_t* state) const = 0;

  /// Arena for variable-length state; set by the aggregation operator
  /// before any Update call. Default implementations ignore it.
  void set_arena(VarLenPool* arena) { arena_ = arena; }

 protected:
  VarLenPool* arena_ = nullptr;
};

/// Result type an aggregate produces for a given input type (used by plan
/// building before instantiating the function).
Result<DataType> AggResultType(AggKind kind, const DataType& arg_type);

/// Instantiates the vectorized implementation. `arg_type` is ignored for
/// count(*).
Result<std::unique_ptr<AggregateFunction>> MakeAggregateFunction(
    AggKind kind, const DataType& arg_type);

std::string AggKindName(AggKind kind);

}  // namespace photon

#endif  // PHOTON_EXPR_AGG_FUNCTION_H_
