#include "expr/program.h"

#include <cstdio>
#include <unordered_map>
#include <utility>

namespace photon {
namespace {

/// An internal leaf whose Evaluate returns an already-computed register.
/// The slot is a pointer into ProgramState::regs_, which is sized once and
/// never reallocated.
class RegRefExpr : public Expr {
 public:
  RegRefExpr(ColumnVector* const* slot, DataType type)
      : Expr(type), slot_(slot) {}

  Result<ColumnVector*> Evaluate(ColumnBatch*, EvalContext*) const override {
    return *slot_;
  }
  Result<Value> EvaluateRow(const std::vector<Value>&) const override {
    return Status::Internal("register reference has no row form");
  }
  std::string ToString() const override { return "$reg"; }

 private:
  ColumnVector* const* slot_;
};

/// Node kinds the program can re-instantiate over register operands. All
/// of these evaluate their children eagerly and unconditionally, so eager
/// register scheduling preserves semantics exactly. CaseWhen (lazy branch
/// evaluation) and Call (registry lookup) stay whole subtrees.
bool IsNodeKind(const Expr& e) {
  return dynamic_cast<const ArithmeticExpr*>(&e) != nullptr ||
         dynamic_cast<const ComparisonExpr*>(&e) != nullptr ||
         dynamic_cast<const BetweenExpr*>(&e) != nullptr ||
         dynamic_cast<const BooleanExpr*>(&e) != nullptr ||
         dynamic_cast<const NotExpr*>(&e) != nullptr ||
         dynamic_cast<const IsNullExpr*>(&e) != nullptr ||
         dynamic_cast<const CastExpr*>(&e) != nullptr ||
         dynamic_cast<const InListExpr*>(&e) != nullptr;
}

/// Literal-only subtree of known deterministic kinds (no column refs, no
/// registry calls): safe to evaluate once at plan-compile time.
bool IsConstSubtree(const Expr& e) {
  if (dynamic_cast<const LiteralExpr*>(&e) != nullptr) return true;
  bool known = IsNodeKind(e) ||
               dynamic_cast<const CaseWhenExpr*>(&e) != nullptr;
  if (!known) return false;
  for (const ExprPtr& child : e.children()) {
    if (!IsConstSubtree(*child)) return false;
  }
  return true;
}

}  // namespace

class ProgramBuilder {
 public:
  ExprProgram Build(const std::vector<ExprPtr>& roots) {
    for (const ExprPtr& root : roots) {
      program_.root_regs_.push_back(Emit(root));
    }
    size_t n = program_.instrs_.size();
    program_.num_uses_.assign(n, 0);
    program_.is_root_.assign(n, 0);
    for (const ExprInstr& instr : program_.instrs_) {
      for (int a : instr.args) program_.num_uses_[a]++;
    }
    for (int r : program_.root_regs_) {
      program_.num_uses_[r]++;
      program_.is_root_[r] = 1;
    }
    program_.compiled_steps_.resize(n);
    program_.skip_when_compiled_.assign(n, 0);
    return std::move(program_);
  }

 private:
  int Emit(const ExprPtr& raw) {
    ExprPtr e = TryFoldConst(raw);
    std::string key = ExprCanonKey(*e);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    ExprInstr instr;
    instr.node = e;
    if (dynamic_cast<const ColumnRefExpr*>(e.get()) != nullptr) {
      instr.kind = ExprInstr::Kind::kLoadCol;
    } else if (dynamic_cast<const LiteralExpr*>(e.get()) != nullptr) {
      instr.kind = ExprInstr::Kind::kLoadLit;
    } else if (IsNodeKind(*e)) {
      instr.kind = ExprInstr::Kind::kNode;
      for (const ExprPtr& child : e->children()) {
        instr.args.push_back(Emit(child));
      }
    } else {
      instr.kind = ExprInstr::Kind::kTree;
    }
    int reg = static_cast<int>(program_.instrs_.size());
    program_.instrs_.push_back(std::move(instr));
    memo_[key] = reg;
    return reg;
  }

  ExprProgram program_;
  std::unordered_map<std::string, int> memo_;
};

ExprPtr RebuildWithChildren(const Expr& node, std::vector<ExprPtr> kids) {
  if (auto* a = dynamic_cast<const ArithmeticExpr*>(&node)) {
    return std::make_shared<ArithmeticExpr>(a->op(), kids[0], kids[1],
                                            a->type());
  }
  if (auto* c = dynamic_cast<const ComparisonExpr*>(&node)) {
    return std::make_shared<ComparisonExpr>(c->op(), kids[0], kids[1]);
  }
  if (dynamic_cast<const BetweenExpr*>(&node) != nullptr) {
    return std::make_shared<BetweenExpr>(kids[0], kids[1], kids[2]);
  }
  if (auto* b = dynamic_cast<const BooleanExpr*>(&node)) {
    return std::make_shared<BooleanExpr>(b->op(), kids[0], kids[1]);
  }
  if (dynamic_cast<const NotExpr*>(&node) != nullptr) {
    return std::make_shared<NotExpr>(kids[0]);
  }
  if (auto* i = dynamic_cast<const IsNullExpr*>(&node)) {
    return std::make_shared<IsNullExpr>(kids[0], i->negated());
  }
  if (dynamic_cast<const CastExpr*>(&node) != nullptr) {
    return std::make_shared<CastExpr>(kids[0], node.type());
  }
  if (auto* in = dynamic_cast<const InListExpr*>(&node)) {
    return std::make_shared<InListExpr>(kids[0], in->list());
  }
  return nullptr;
}

std::string ExprCanonKey(const Expr& e) {
  if (auto* c = dynamic_cast<const ColumnRefExpr*>(&e)) {
    // By index, never by display name: join outputs can carry duplicate
    // column names.
    return "c" + std::to_string(c->index());
  }
  if (auto* l = dynamic_cast<const LiteralExpr*>(&e)) {
    return "l" + l->value().ToString() + ":" + l->type().ToString();
  }
  if (auto* a = dynamic_cast<const ArithmeticExpr*>(&e)) {
    // Result type participates: decimal nodes with equal operands but a
    // different result scale compute different values.
    return "a" + std::to_string(static_cast<int>(a->op())) + "(" +
           ExprCanonKey(*e.children()[0]) + "," +
           ExprCanonKey(*e.children()[1]) + "):" + e.type().ToString();
  }
  if (auto* c = dynamic_cast<const ComparisonExpr*>(&e)) {
    return "p" + std::to_string(static_cast<int>(c->op())) + "(" +
           ExprCanonKey(*e.children()[0]) + "," +
           ExprCanonKey(*e.children()[1]) + ")";
  }
  if (dynamic_cast<const BetweenExpr*>(&e) != nullptr) {
    std::vector<ExprPtr> kids = e.children();
    return "b(" + ExprCanonKey(*kids[0]) + "," + ExprCanonKey(*kids[1]) +
           "," + ExprCanonKey(*kids[2]) + ")";
  }
  if (auto* b = dynamic_cast<const BooleanExpr*>(&e)) {
    return "o" + std::to_string(static_cast<int>(b->op())) + "(" +
           ExprCanonKey(*e.children()[0]) + "," +
           ExprCanonKey(*e.children()[1]) + ")";
  }
  if (dynamic_cast<const NotExpr*>(&e) != nullptr) {
    return "n(" + ExprCanonKey(*e.children()[0]) + ")";
  }
  if (auto* i = dynamic_cast<const IsNullExpr*>(&e)) {
    return std::string("i") + (i->negated() ? "1" : "0") + "(" +
           ExprCanonKey(*e.children()[0]) + ")";
  }
  if (dynamic_cast<const CastExpr*>(&e) != nullptr) {
    return "t(" + ExprCanonKey(*e.children()[0]) + "):" +
           e.type().ToString();
  }
  if (auto* in = dynamic_cast<const InListExpr*>(&e)) {
    std::string key = "in(" + ExprCanonKey(*e.children()[0]);
    for (const Value& v : in->list()) key += ";" + v.ToString();
    return key + ")";
  }
  if (auto* cw = dynamic_cast<const CaseWhenExpr*>(&e)) {
    std::string key = "cw(";
    for (const auto& [cond, then] : cw->branches()) {
      key += ExprCanonKey(*cond) + "?" + ExprCanonKey(*then) + ";";
    }
    if (cw->else_expr() != nullptr) key += ExprCanonKey(*cw->else_expr());
    return key + "):" + e.type().ToString();
  }
  if (auto* f = dynamic_cast<const CallExpr*>(&e)) {
    std::string key = "f" + f->name() + "(";
    for (const ExprPtr& arg : f->args()) key += ExprCanonKey(*arg) + ",";
    return key + "):" + e.type().ToString();
  }
  // Unknown kind: pointer-unique, never dedupes.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@%p", static_cast<const void*>(&e));
  return buf;
}

Status CheckExpressionDepth(const Expr& e, int limit) {
  std::vector<std::pair<const Expr*, int>> stack;
  stack.emplace_back(&e, 1);
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (depth > limit) {
      return Status::InvalidArgument(
          "expression nested deeper than " + std::to_string(limit) +
          " levels");
    }
    for (const ExprPtr& child : node->children()) {
      stack.emplace_back(child.get(), depth + 1);
    }
  }
  return Status::OK();
}

ExprPtr TryFoldConst(const ExprPtr& e) {
  if (dynamic_cast<const LiteralExpr*>(e.get()) != nullptr) return e;
  if (!IsConstSubtree(*e)) return e;
  Result<Value> v = e->EvaluateRow({});
  // Folding is an optimization, never a behavior change: expressions whose
  // row evaluation errors stay as-is (the vectorized path decides).
  if (!v.ok()) return e;
  return std::make_shared<LiteralExpr>(*v, e->type());
}

ExprProgram ExprProgram::Compile(const std::vector<ExprPtr>& roots) {
  return ProgramBuilder().Build(roots);
}

ProgramState::ProgramState(const ExprProgram& program)
    : program_(program),
      regs_(program.instrs().size(), nullptr),
      shallow_(program.instrs().size()),
      literals_(program.instrs().size()) {
  const std::vector<ExprInstr>& instrs = program.instrs();
  for (size_t i = 0; i < instrs.size(); i++) {
    const ExprInstr& instr = instrs[i];
    if (instr.kind != ExprInstr::Kind::kNode) {
      shallow_[i] = instr.node;
      continue;
    }
    std::vector<ExprPtr> orig = instr.node->children();
    std::vector<ExprPtr> kids;
    kids.reserve(instr.args.size());
    for (size_t k = 0; k < instr.args.size(); k++) {
      // The register holds the (possibly folded) child's result; its type
      // equals the original child's type by construction.
      kids.push_back(std::make_shared<RegRefExpr>(&regs_[instr.args[k]],
                                                  orig[k]->type()));
    }
    shallow_[i] = RebuildWithChildren(*instr.node, std::move(kids));
    PHOTON_CHECK(shallow_[i] != nullptr);
  }
}

void ProgramState::EnsureLiterals(int capacity) {
  if (capacity <= literal_capacity_) return;
  const std::vector<ExprInstr>& instrs = program_.instrs();
  for (size_t i = 0; i < instrs.size(); i++) {
    if (instrs[i].kind != ExprInstr::Kind::kLoadLit) continue;
    const auto* lit = static_cast<const LiteralExpr*>(instrs[i].node.get());
    auto vec = std::make_unique<ColumnVector>(lit->type(), capacity);
    const Value& v = lit->value();
    // Filled once over the full capacity (not per active set): downstream
    // kernels only read active rows, so the dense fill is equivalent to
    // LiteralExpr::Evaluate's per-batch sparse fill, amortized to zero.
    if (v.is_null()) {
      for (int r = 0; r < capacity; r++) vec->SetNull(r);
      vec->set_has_nulls(TriState::kYes);
    } else if (lit->type().is_string()) {
      StringRef ref = vec->var_pool()->AddString(
          v.str().data(), static_cast<int32_t>(v.str().size()));
      StringRef* vals = vec->data<StringRef>();
      for (int r = 0; r < capacity; r++) vals[r] = ref;
      vec->set_has_nulls(TriState::kNo);
    } else {
      for (int r = 0; r < capacity; r++) vec->SetValue(r, v);
      vec->set_has_nulls(TriState::kNo);
    }
    literals_[i] = std::move(vec);
  }
  literal_capacity_ = capacity;
}

Status ProgramState::Run(ColumnBatch* batch, EvalContext* ctx,
                         bool use_compiled) {
  EnsureLiterals(batch->capacity());
  const std::vector<ExprInstr>& instrs = program_.instrs();
  for (size_t i = 0; i < instrs.size(); i++) {
    if (instrs[i].kind == ExprInstr::Kind::kLoadLit) {
      regs_[i] = literals_[i].get();
      continue;
    }
    if (use_compiled) {
      if (program_.skip_when_compiled(i)) continue;
      const ExprProgram::CompiledStepFn& fn = program_.compiled_step(i);
      if (fn) {
        PHOTON_ASSIGN_OR_RETURN(regs_[i], fn(batch, ctx, regs_.data()));
        continue;
      }
    }
    PHOTON_ASSIGN_OR_RETURN(regs_[i], shallow_[i]->Evaluate(batch, ctx));
  }
  return Status::OK();
}

}  // namespace photon
