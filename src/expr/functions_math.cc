#include <cmath>

#include "expr/function_registry.h"
#include "expr/kernels.h"

namespace photon {
namespace internal_registry {
namespace {

/// Registers a double -> double math function with a vectorized kernel
/// specialized on NULL presence and row activity (Listing 2 shape).
void RegisterFloat64Fn(FunctionRegistry* registry, const std::string& name,
                       double (*fn)(double)) {
  registry->Register(
      name,
      FunctionImpl{
          [name](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || args[0].id() != TypeId::kFloat64) {
              return Status::InvalidArgument(name + "(float64)");
            }
            return DataType::Float64();
          },
          [fn](const std::vector<const ColumnVector*>& args,
               ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            const int32_t* pos = batch->pos_list();
            bool all = batch->all_active();
            bool has_nulls = const_cast<ColumnVector*>(args[0])
                                 ->ComputeHasNulls(pos, n, all);
            DispatchBatchShape(
                has_nulls, all, [&](auto nulls_c, auto active_c) {
                  constexpr bool kHasNulls = decltype(nulls_c)::value;
                  constexpr bool kAllActive = decltype(active_c)::value;
                  const double* PHOTON_RESTRICT in = args[0]->data<double>();
                  const uint8_t* PHOTON_RESTRICT in_nulls = args[0]->nulls();
                  double* PHOTON_RESTRICT ov = out->data<double>();
                  uint8_t* PHOTON_RESTRICT on = out->nulls();
                  for (int i = 0; i < n; i++) {
                    int row = kAllActive ? i : pos[i];
                    if constexpr (kHasNulls) {
                      if (in_nulls[row]) {
                        on[row] = 1;
                        continue;
                      }
                    }
                    ov[row] = fn(in[row]);
                  }
                });
            out->set_has_nulls(has_nulls ? TriState::kYes : TriState::kNo);
            return Status::OK();
          },
          [fn](const std::vector<Value>& args, const std::vector<DataType>&,
               const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            return Value::Float64(fn(args[0].f64()));
          }});
}

double RoundHalfUp(double v) {
  return v < 0 ? -std::floor(-v + 0.5) : std::floor(v + 0.5);
}

}  // namespace

void RegisterMathFunctions(FunctionRegistry* registry) {
  RegisterFloat64Fn(registry, "sqrt", [](double v) { return std::sqrt(v); });
  RegisterFloat64Fn(registry, "exp", [](double v) { return std::exp(v); });
  RegisterFloat64Fn(registry, "ln", [](double v) { return std::log(v); });
  RegisterFloat64Fn(registry, "log10",
                    [](double v) { return std::log10(v); });
  RegisterFloat64Fn(registry, "sin", [](double v) { return std::sin(v); });
  RegisterFloat64Fn(registry, "cos", [](double v) { return std::cos(v); });
  RegisterFloat64Fn(registry, "tan", [](double v) { return std::tan(v); });
  RegisterFloat64Fn(registry, "floor",
                    [](double v) { return std::floor(v); });
  RegisterFloat64Fn(registry, "ceil", [](double v) { return std::ceil(v); });
  RegisterFloat64Fn(registry, "round", RoundHalfUp);

  // abs / negate over all numeric types.
  registry->Register(
      "abs",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1) return Status::InvalidArgument("abs(x)");
            switch (args[0].id()) {
              case TypeId::kInt32:
              case TypeId::kInt64:
              case TypeId::kFloat64:
              case TypeId::kDecimal128:
                return args[0];
              default:
                return Status::InvalidArgument("abs: numeric only");
            }
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            const uint8_t* in_nulls = args[0]->nulls();
            uint8_t* on = out->nulls();
            switch (args[0]->type().id()) {
              case TypeId::kInt32: {
                const int32_t* in = args[0]->data<int32_t>();
                int32_t* ov = out->data<int32_t>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = in[r] < 0 ? -in[r] : in[r];
                }
                break;
              }
              case TypeId::kInt64: {
                const int64_t* in = args[0]->data<int64_t>();
                int64_t* ov = out->data<int64_t>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = in[r] < 0 ? -in[r] : in[r];
                }
                break;
              }
              case TypeId::kFloat64: {
                const double* in = args[0]->data<double>();
                double* ov = out->data<double>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = std::fabs(in[r]);
                }
                break;
              }
              case TypeId::kDecimal128: {
                const int128_t* in = args[0]->data<int128_t>();
                int128_t* ov = out->data<int128_t>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = in[r] < 0 ? -in[r] : in[r];
                }
                break;
              }
              default:
                return Status::Internal("abs: bad type");
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args,
             const std::vector<DataType>& arg_types,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            switch (arg_types[0].id()) {
              case TypeId::kInt32:
                return Value::Int32(args[0].i32() < 0 ? -args[0].i32()
                                                      : args[0].i32());
              case TypeId::kInt64:
                return Value::Int64(args[0].i64() < 0 ? -args[0].i64()
                                                      : args[0].i64());
              case TypeId::kFloat64:
                return Value::Float64(std::fabs(args[0].f64()));
              case TypeId::kDecimal128: {
                int128_t v = args[0].decimal().value();
                return Value::Decimal(Decimal128(v < 0 ? -v : v));
              }
              default:
                return Status::Internal("abs: bad type");
            }
          }});

  registry->Register(
      "negate",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1) return Status::InvalidArgument("negate(x)");
            switch (args[0].id()) {
              case TypeId::kInt32:
              case TypeId::kInt64:
              case TypeId::kFloat64:
              case TypeId::kDecimal128:
                return args[0];
              default:
                return Status::InvalidArgument("negate: numeric only");
            }
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            const uint8_t* in_nulls = args[0]->nulls();
            uint8_t* on = out->nulls();
            switch (args[0]->type().id()) {
              case TypeId::kInt32: {
                const int32_t* in = args[0]->data<int32_t>();
                int32_t* ov = out->data<int32_t>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = -in[r];
                }
                break;
              }
              case TypeId::kInt64: {
                const int64_t* in = args[0]->data<int64_t>();
                int64_t* ov = out->data<int64_t>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = -in[r];
                }
                break;
              }
              case TypeId::kFloat64: {
                const double* in = args[0]->data<double>();
                double* ov = out->data<double>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = -in[r];
                }
                break;
              }
              case TypeId::kDecimal128: {
                const int128_t* in = args[0]->data<int128_t>();
                int128_t* ov = out->data<int128_t>();
                for (int i = 0; i < n; i++) {
                  int r = batch->ActiveRow(i);
                  on[r] = in_nulls[r];
                  if (!in_nulls[r]) ov[r] = -in[r];
                }
                break;
              }
              default:
                return Status::Internal("negate: bad type");
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args,
             const std::vector<DataType>& arg_types,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            switch (arg_types[0].id()) {
              case TypeId::kInt32:
                return Value::Int32(-args[0].i32());
              case TypeId::kInt64:
                return Value::Int64(-args[0].i64());
              case TypeId::kFloat64:
                return Value::Float64(-args[0].f64());
              case TypeId::kDecimal128:
                return Value::Decimal(Decimal128(-args[0].decimal().value()));
              default:
                return Status::Internal("negate: bad type");
            }
          }});

  registry->Register(
      "pow",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 2 || args[0].id() != TypeId::kFloat64 ||
                args[1].id() != TypeId::kFloat64) {
              return Status::InvalidArgument("pow(float64, float64)");
            }
            return DataType::Float64();
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            const double* a = args[0]->data<double>();
            const double* b = args[1]->data<double>();
            double* ov = out->data<double>();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              if (args[0]->IsNull(r) || args[1]->IsNull(r)) {
                on[r] = 1;
                continue;
              }
              ov[r] = std::pow(a[r], b[r]);
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null() || args[1].is_null()) return Value::Null();
            return Value::Float64(std::pow(args[0].f64(), args[1].f64()));
          }});

  registry->Register(
      "sign",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || args[0].id() != TypeId::kFloat64) {
              return Status::InvalidArgument("sign(float64)");
            }
            return DataType::Float64();
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            const double* in = args[0]->data<double>();
            double* ov = out->data<double>();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              on[r] = args[0]->nulls()[r];
              if (!on[r]) ov[r] = in[r] > 0 ? 1.0 : (in[r] < 0 ? -1.0 : 0.0);
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            double v = args[0].f64();
            return Value::Float64(v > 0 ? 1.0 : (v < 0 ? -1.0 : 0.0));
          }});
}

}  // namespace internal_registry
}  // namespace photon
