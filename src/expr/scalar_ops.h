#ifndef PHOTON_EXPR_SCALAR_OPS_H_
#define PHOTON_EXPR_SCALAR_OPS_H_

#include <cmath>
#include <limits>
#include <type_traits>

#include "common/macros.h"
#include "types/data_type.h"

// Scalar arithmetic semantics shared by the interpreted tree
// (arithmetic.cc), the row-at-a-time oracle, and the compiled expression
// tier (fusion.cc). Keeping one definition is what makes tier parity an
// invariant rather than a test outcome: a compiled kernel cannot drift
// from the interpreter when both instantiate the same Op::Apply.

namespace photon {

enum class ArithOp : uint8_t;

namespace detail {
// std::make_unsigned does not cover __int128 under strict modes; the
// decimal compiled kernels need the same wrapping add/sub/mul as ints.
template <typename T>
struct Unsigned {
  using type = std::make_unsigned_t<T>;
};
template <>
struct Unsigned<__int128> {
  using type = unsigned __int128;
};
}  // namespace detail

// Integer ops wrap on overflow (Spark non-ANSI semantics); performed on the
// unsigned representation to avoid UB.
template <typename T>
struct AddOp {
  static PHOTON_ALWAYS_INLINE bool Apply(T a, T b, T* out) {
    using U = typename detail::Unsigned<T>::type;
    *out = static_cast<T>(static_cast<U>(a) + static_cast<U>(b));
    return true;
  }
};
template <>
struct AddOp<double> {
  static PHOTON_ALWAYS_INLINE bool Apply(double a, double b, double* out) {
    *out = a + b;
    return true;
  }
};

template <typename T>
struct SubOp {
  static PHOTON_ALWAYS_INLINE bool Apply(T a, T b, T* out) {
    using U = typename detail::Unsigned<T>::type;
    *out = static_cast<T>(static_cast<U>(a) - static_cast<U>(b));
    return true;
  }
};
template <>
struct SubOp<double> {
  static PHOTON_ALWAYS_INLINE bool Apply(double a, double b, double* out) {
    *out = a - b;
    return true;
  }
};

template <typename T>
struct MulOp {
  static PHOTON_ALWAYS_INLINE bool Apply(T a, T b, T* out) {
    using U = typename detail::Unsigned<T>::type;
    *out = static_cast<T>(static_cast<U>(a) * static_cast<U>(b));
    return true;
  }
};
template <>
struct MulOp<double> {
  static PHOTON_ALWAYS_INLINE bool Apply(double a, double b, double* out) {
    *out = a * b;
    return true;
  }
};

template <typename T>
struct DivOp {
  static PHOTON_ALWAYS_INLINE bool Apply(T a, T b, T* out) {
    if (b == 0) return false;  // NULL, like Spark
    if (b == -1 && a == std::numeric_limits<T>::min()) {
      *out = a;  // avoid SIGFPE on INT_MIN / -1; wraps like Java
      return true;
    }
    *out = a / b;
    return true;
  }
};
template <>
struct DivOp<double> {
  static PHOTON_ALWAYS_INLINE bool Apply(double a, double b, double* out) {
    *out = a / b;  // IEEE: inf/nan
    return true;
  }
};

template <typename T>
struct ModOp {
  static PHOTON_ALWAYS_INLINE bool Apply(T a, T b, T* out) {
    if (b == 0) return false;
    if (b == -1) {
      *out = 0;
      return true;
    }
    *out = a % b;
    return true;
  }
};
template <>
struct ModOp<double> {
  static PHOTON_ALWAYS_INLINE bool Apply(double a, double b, double* out) {
    *out = std::fmod(a, b);
    return true;
  }
};

/// True when a decimal arithmetic node must take the checked BigDecimal
/// path (result scale below the natural one, or 38-digit precision capping
/// in play). Defined in arithmetic.cc next to the kernels that assume the
/// regular case; the compiled tier refuses to specialize irregular nodes.
bool DecimalArithIsIrregular(ArithOp op, const DataType& left,
                             const DataType& right, const DataType& result);

}  // namespace photon

#endif  // PHOTON_EXPR_SCALAR_OPS_H_
