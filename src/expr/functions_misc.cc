#include "expr/function_registry.h"
#include "expr/kernels.h"

namespace photon {
namespace internal_registry {

void RegisterMiscFunctions(FunctionRegistry* registry) {
  // coalesce(a, b, ...): first non-NULL argument.
  registry->Register(
      "coalesce",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.empty()) {
              return Status::InvalidArgument("coalesce needs args");
            }
            for (const DataType& t : args) {
              if (t != args[0]) {
                return Status::InvalidArgument(
                    "coalesce args must share a type");
              }
            }
            return args[0];
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              bool done = false;
              for (const ColumnVector* a : args) {
                if (!a->IsNull(r)) {
                  out->SetValue(r, a->GetValue(r));
                  done = true;
                  break;
                }
              }
              if (!done) on[r] = 1;
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            for (const Value& v : args) {
              if (!v.is_null()) return v;
            }
            return Value::Null();
          }});

  // nullif(a, b): NULL if a == b else a.
  registry->Register(
      "nullif",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 2 || args[0] != args[1]) {
              return Status::InvalidArgument("nullif(a, b) same types");
            }
            return args[0];
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              if (args[0]->IsNull(r)) {
                on[r] = 1;
                continue;
              }
              Value a = args[0]->GetValue(r);
              if (!args[1]->IsNull(r) && a.Equals(args[1]->GetValue(r))) {
                on[r] = 1;
              } else {
                out->SetValue(r, a);
              }
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            if (!args[1].is_null() && args[0].Equals(args[1])) {
              return Value::Null();
            }
            return args[0];
          }});
}

}  // namespace internal_registry
}  // namespace photon
