#include "expr/agg_function.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "types/big_decimal.h"
#include "types/decimal.h"

namespace photon {
namespace {

// ---------------------------------------------------------------------------
// count(*) / count(x)
// ---------------------------------------------------------------------------

struct CountState {
  int64_t count;
};

class CountAgg : public AggregateFunction {
 public:
  explicit CountAgg(bool count_star) : count_star_(count_star) {}

  DataType result_type() const override { return DataType::Int64(); }
  int state_bytes() const override { return sizeof(CountState); }
  void Init(uint8_t* state) const override {
    std::memset(state, 0, sizeof(CountState));
  }

  void Update(const ColumnVector* arg, const ColumnBatch& batch,
              uint8_t* const* states) const override {
    int n = batch.num_active();
    if (count_star_) {
      for (int i = 0; i < n; i++) {
        if (states[i] == nullptr) continue;
        reinterpret_cast<CountState*>(states[i])->count++;
      }
      return;
    }
    const uint8_t* nulls = arg->nulls();
    for (int i = 0; i < n; i++) {
      if (states[i] == nullptr) continue;
      int row = batch.ActiveRow(i);
      reinterpret_cast<CountState*>(states[i])->count += nulls[row] ? 0 : 1;
    }
  }

  void Merge(uint8_t* dst, const uint8_t* src) const override {
    reinterpret_cast<CountState*>(dst)->count +=
        reinterpret_cast<const CountState*>(src)->count;
  }

  void Finalize(const uint8_t* state, ColumnVector* out,
                int row) const override {
    out->SetNotNull(row);
    out->data<int64_t>()[row] =
        reinterpret_cast<const CountState*>(state)->count;
  }

  void Serialize(const uint8_t* state, BinaryWriter* out) const override {
    out->WriteI64(reinterpret_cast<const CountState*>(state)->count);
  }
  Status Deserialize(BinaryReader* in, uint8_t* state) const override {
    return in->ReadI64(&reinterpret_cast<CountState*>(state)->count);
  }

 private:
  bool count_star_;
};

// ---------------------------------------------------------------------------
// sum / avg over int64, float64, decimal. Sums track "saw any non-null" so
// the SQL result of sum over all-NULL input is NULL.
// ---------------------------------------------------------------------------

template <typename T, typename AccT>
struct SumState {
  AccT sum;
  int64_t count;  // non-null inputs
  /// Decimal only: net number of int128 wraparounds (+1 when adding a
  /// positive value wrapped, -1 when adding a negative one did). Because
  /// wrapping is arithmetic mod 2^128, the accumulator's true value is
  /// always exactly wraps * 2^128 + sum — a transient wrap that later
  /// cancels (mixed-sign inputs) leaves wraps == 0 and sum exact, matching
  /// the row engine's unbounded BigDecimal accumulation. Carried through
  /// Merge and Serialize so partial aggregates survive the shuffle.
  int64_t wraps;
};

template <typename T, typename AccT, TypeId kArgId>
class SumAgg : public AggregateFunction {
 public:
  SumAgg(DataType result, bool is_avg, int avg_shift = 0)
      : result_(result), is_avg_(is_avg), avg_shift_(avg_shift) {}

  DataType result_type() const override { return result_; }
  int state_bytes() const override { return sizeof(SumState<T, AccT>); }
  void Init(uint8_t* state) const override {
    std::memset(state, 0, sizeof(SumState<T, AccT>));
  }

  void Update(const ColumnVector* arg, const ColumnBatch& batch,
              uint8_t* const* states) const override {
    int n = batch.num_active();
    const T* vals = arg->data<T>();
    const uint8_t* nulls = arg->nulls();
    for (int i = 0; i < n; i++) {
      if (states[i] == nullptr) continue;
      int row = batch.ActiveRow(i);
      if (nulls[row]) continue;
      auto* s = reinterpret_cast<SumState<T, AccT>*>(states[i]);
      if constexpr (std::is_same_v<AccT, int128_t>) {
        if (__builtin_add_overflow(s->sum, vals[row], &s->sum)) {
          s->wraps += vals[row] > 0 ? 1 : -1;
        }
      } else {
        s->sum += static_cast<AccT>(vals[row]);
      }
      s->count++;
    }
  }

  void Merge(uint8_t* dst, const uint8_t* src) const override {
    auto* d = reinterpret_cast<SumState<T, AccT>*>(dst);
    const auto* s = reinterpret_cast<const SumState<T, AccT>*>(src);
    if constexpr (std::is_same_v<AccT, int128_t>) {
      if (__builtin_add_overflow(d->sum, s->sum, &d->sum)) {
        d->wraps += s->sum > 0 ? 1 : -1;
      }
      d->wraps += s->wraps;
    } else {
      d->sum += s->sum;
    }
    d->count += s->count;
  }

  void Finalize(const uint8_t* state, ColumnVector* out,
                int row) const override {
    const auto* s = reinterpret_cast<const SumState<T, AccT>*>(state);
    if (s->count == 0) {
      out->SetNull(row);
      return;
    }
    if constexpr (std::is_same_v<AccT, int128_t>) {
      // Decimal sum/avg finalize through BigDecimal exactly like the row
      // engine's SumDecimalState: a sum (or avg quotient) beyond the
      // 38-digit cap is NULL, not a wrapped int128. The exact sum is
      // wraps * 2^128 + sum; 2^128 exceeds int128 so it is composed as
      // (2^64)^2, putting arg_scale on one factor only.
      int arg_scale = result_.scale() - avg_shift_;
      BigDecimal sum = BigDecimal::FromDecimal128(Decimal128(s->sum),
                                                  arg_scale);
      if (s->wraps != 0) {
        BigDecimal two64_scaled = BigDecimal::FromDecimal128(
            Decimal128(static_cast<int128_t>(1) << 64), arg_scale);
        BigDecimal two64 = BigDecimal::FromDecimal128(
            Decimal128(static_cast<int128_t>(1) << 64), 0);
        sum = sum.Add(two64_scaled.Multiply(two64).Multiply(
            BigDecimal::FromInt64(s->wraps, 0)));
      }
      if (is_avg_) {
        sum = sum.Divide(BigDecimal::FromInt64(s->count, 0),
                         result_.scale());
      }
      Decimal128 v;
      if (!sum.ToDecimal128(result_.scale(), &v)) {
        out->SetNull(row);
        return;
      }
      out->SetNotNull(row);
      out->data<int128_t>()[row] = v.value();
      return;
    } else {
      out->SetNotNull(row);
      if (!is_avg_) {
        out->data<AccT>()[row] = s->sum;
        return;
      }
      out->data<double>()[row] =
          static_cast<double>(s->sum) / static_cast<double>(s->count);
    }
  }

  void Serialize(const uint8_t* state, BinaryWriter* out) const override {
    const auto* s = reinterpret_cast<const SumState<T, AccT>*>(state);
    if constexpr (std::is_same_v<AccT, int128_t>) {
      uint128_t v = static_cast<uint128_t>(s->sum);
      out->WriteU64(static_cast<uint64_t>(v));
      out->WriteU64(static_cast<uint64_t>(v >> 64));
      out->WriteI64(s->wraps);
    } else if constexpr (std::is_same_v<AccT, double>) {
      out->WriteF64(s->sum);
    } else {
      out->WriteI64(s->sum);
    }
    out->WriteI64(s->count);
  }

  Status Deserialize(BinaryReader* in, uint8_t* state) const override {
    auto* s = reinterpret_cast<SumState<T, AccT>*>(state);
    if constexpr (std::is_same_v<AccT, int128_t>) {
      uint64_t lo = 0, hi = 0;
      PHOTON_RETURN_NOT_OK(in->ReadU64(&lo));
      PHOTON_RETURN_NOT_OK(in->ReadU64(&hi));
      s->sum = static_cast<int128_t>((static_cast<uint128_t>(hi) << 64) | lo);
      PHOTON_RETURN_NOT_OK(in->ReadI64(&s->wraps));
    } else if constexpr (std::is_same_v<AccT, double>) {
      PHOTON_RETURN_NOT_OK(in->ReadF64(&s->sum));
    } else {
      PHOTON_RETURN_NOT_OK(in->ReadI64(&s->sum));
    }
    return in->ReadI64(&s->count);
  }

 private:
  DataType result_;
  bool is_avg_;
  int avg_shift_;  // 10^shift applied before dividing (decimal avg)
};

// ---------------------------------------------------------------------------
// min / max
// ---------------------------------------------------------------------------

template <typename T>
struct MinMaxState {
  T value;
  uint8_t has_value;
};

template <typename T, TypeId kArgId, bool kIsMin>
class MinMaxAgg : public AggregateFunction {
 public:
  explicit MinMaxAgg(DataType type) : type_(type) {}

  DataType result_type() const override { return type_; }
  int state_bytes() const override { return sizeof(MinMaxState<T>); }
  void Init(uint8_t* state) const override {
    std::memset(state, 0, sizeof(MinMaxState<T>));
  }

  static bool Better(const T& candidate, const T& incumbent) {
    if constexpr (std::is_same_v<T, StringRef>) {
      int min_len = std::min(candidate.len, incumbent.len);
      int c = min_len == 0 ? 0
                           : std::memcmp(candidate.data, incumbent.data,
                                         min_len);
      int cmp = c != 0 ? c : candidate.len - incumbent.len;
      return kIsMin ? cmp < 0 : cmp > 0;
    } else {
      return kIsMin ? candidate < incumbent : candidate > incumbent;
    }
  }

  void Update(const ColumnVector* arg, const ColumnBatch& batch,
              uint8_t* const* states) const override {
    int n = batch.num_active();
    const T* vals = arg->data<T>();
    const uint8_t* nulls = arg->nulls();
    for (int i = 0; i < n; i++) {
      if (states[i] == nullptr) continue;
      int row = batch.ActiveRow(i);
      if (nulls[row]) continue;
      auto* s = reinterpret_cast<MinMaxState<T>*>(states[i]);
      if (!s->has_value || Better(vals[row], s->value)) {
        if constexpr (std::is_same_v<T, StringRef>) {
          // Copy into the aggregation arena: the input batch is transient.
          s->value = arena_->AddString(vals[row]);
        } else {
          s->value = vals[row];
        }
        s->has_value = 1;
      }
    }
  }

  void Merge(uint8_t* dst, const uint8_t* src) const override {
    auto* d = reinterpret_cast<MinMaxState<T>*>(dst);
    const auto* s = reinterpret_cast<const MinMaxState<T>*>(src);
    if (!s->has_value) return;
    if (!d->has_value || Better(s->value, d->value)) {
      if constexpr (std::is_same_v<T, StringRef>) {
        d->value = arena_->AddString(s->value);
      } else {
        d->value = s->value;
      }
      d->has_value = 1;
    }
  }

  void Finalize(const uint8_t* state, ColumnVector* out,
                int row) const override {
    const auto* s = reinterpret_cast<const MinMaxState<T>*>(state);
    if (!s->has_value) {
      out->SetNull(row);
      return;
    }
    out->SetNotNull(row);
    if constexpr (std::is_same_v<T, StringRef>) {
      out->SetString(row, s->value.data, s->value.len);
    } else {
      out->data<T>()[row] = s->value;
    }
  }

  void Serialize(const uint8_t* state, BinaryWriter* out) const override {
    const auto* s = reinterpret_cast<const MinMaxState<T>*>(state);
    out->WriteU8(s->has_value);
    if (!s->has_value) return;
    if constexpr (std::is_same_v<T, StringRef>) {
      out->WriteString(std::string_view(s->value.data, s->value.len));
    } else {
      out->Append(&s->value, sizeof(T));
    }
  }

  Status Deserialize(BinaryReader* in, uint8_t* state) const override {
    auto* s = reinterpret_cast<MinMaxState<T>*>(state);
    PHOTON_RETURN_NOT_OK(in->ReadU8(&s->has_value));
    if (!s->has_value) return Status::OK();
    if constexpr (std::is_same_v<T, StringRef>) {
      std::string str;
      PHOTON_RETURN_NOT_OK(in->ReadString(&str));
      s->value = arena_->AddString(str.data(),
                                   static_cast<int32_t>(str.size()));
    } else {
      PHOTON_RETURN_NOT_OK(in->ReadRaw(&s->value, sizeof(T)));
    }
    return Status::OK();
  }

 private:
  DataType type_;
};

// ---------------------------------------------------------------------------
// collect_list(string): variable-size per-group state. State is a linked
// list of arena-allocated nodes, so list growth across groups shares the
// same allocator instead of per-group containers (cf. DBR's Scala
// collections in §6.1). The final value renders as "[a, b, c]".
// ---------------------------------------------------------------------------

struct CollectNode {
  StringRef value;
  CollectNode* next;
};

struct CollectState {
  CollectNode* head;
  CollectNode* tail;
  int64_t count;
};

class CollectListAgg : public AggregateFunction {
 public:
  DataType result_type() const override { return DataType::String(); }
  int state_bytes() const override { return sizeof(CollectState); }
  void Init(uint8_t* state) const override {
    std::memset(state, 0, sizeof(CollectState));
  }

  void Update(const ColumnVector* arg, const ColumnBatch& batch,
              uint8_t* const* states) const override {
    int n = batch.num_active();
    const StringRef* vals = arg->data<StringRef>();
    const uint8_t* nulls = arg->nulls();
    for (int i = 0; i < n; i++) {
      if (states[i] == nullptr) continue;
      int row = batch.ActiveRow(i);
      if (nulls[row]) continue;  // collect_list skips NULLs (Spark)
      Append(reinterpret_cast<CollectState*>(states[i]),
             arena_->AddString(vals[row]));
    }
  }

  void Merge(uint8_t* dst, const uint8_t* src) const override {
    auto* d = reinterpret_cast<CollectState*>(dst);
    const auto* s = reinterpret_cast<const CollectState*>(src);
    for (CollectNode* node = s->head; node != nullptr; node = node->next) {
      Append(d, arena_->AddString(node->value));
    }
  }

  void Finalize(const uint8_t* state, ColumnVector* out,
                int row) const override {
    const auto* s = reinterpret_cast<const CollectState*>(state);
    std::string rendered = "[";
    bool first = true;
    for (CollectNode* node = s->head; node != nullptr; node = node->next) {
      if (!first) rendered += ", ";
      rendered.append(node->value.data, node->value.len);
      first = false;
    }
    rendered += "]";
    out->SetNotNull(row);
    out->SetString(row, rendered);
  }

  void Serialize(const uint8_t* state, BinaryWriter* out) const override {
    const auto* s = reinterpret_cast<const CollectState*>(state);
    out->WriteVarU64(static_cast<uint64_t>(s->count));
    for (CollectNode* node = s->head; node != nullptr; node = node->next) {
      out->WriteString(std::string_view(node->value.data, node->value.len));
    }
  }

  Status Deserialize(BinaryReader* in, uint8_t* state) const override {
    auto* s = reinterpret_cast<CollectState*>(state);
    uint64_t count = 0;
    PHOTON_RETURN_NOT_OK(in->ReadVarU64(&count));
    for (uint64_t i = 0; i < count; i++) {
      std::string str;
      PHOTON_RETURN_NOT_OK(in->ReadString(&str));
      Append(s, arena_->AddString(str.data(),
                                  static_cast<int32_t>(str.size())));
    }
    return Status::OK();
  }

 private:
  void Append(CollectState* s, StringRef value) const {
    auto* node = reinterpret_cast<CollectNode*>(
        arena_->AllocateBytes(sizeof(CollectNode)));
    node->value = value;
    node->next = nullptr;
    if (s->tail == nullptr) {
      s->head = s->tail = node;
    } else {
      s->tail->next = node;
      s->tail = node;
    }
    s->count++;
  }
};

}  // namespace

Result<DataType> AggResultType(AggKind kind, const DataType& arg_type) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return DataType::Int64();
    case AggKind::kSum:
      switch (arg_type.id()) {
        case TypeId::kInt32:
        case TypeId::kInt64:
          return DataType::Int64();
        case TypeId::kFloat64:
          return DataType::Float64();
        case TypeId::kDecimal128:
          return DataType::Decimal(
              std::min(38, arg_type.precision() + 10), arg_type.scale());
        default:
          return Status::InvalidArgument("sum: numeric argument required");
      }
    case AggKind::kAvg:
      switch (arg_type.id()) {
        case TypeId::kInt32:
        case TypeId::kInt64:
        case TypeId::kFloat64:
          return DataType::Float64();
        case TypeId::kDecimal128:
          return DataType::Decimal(
              std::min(38, arg_type.precision() + 4),
              std::min(38, arg_type.scale() + 4));
        default:
          return Status::InvalidArgument("avg: numeric argument required");
      }
    case AggKind::kMin:
    case AggKind::kMax:
      return arg_type;
    case AggKind::kCollectList:
      if (!arg_type.is_string()) {
        return Status::InvalidArgument("collect_list: string argument");
      }
      return DataType::String();
  }
  return Status::Internal("bad agg kind");
}

Result<std::unique_ptr<AggregateFunction>> MakeAggregateFunction(
    AggKind kind, const DataType& arg_type) {
  PHOTON_ASSIGN_OR_RETURN(DataType result, AggResultType(kind, arg_type));
  switch (kind) {
    case AggKind::kCountStar:
      return std::unique_ptr<AggregateFunction>(new CountAgg(true));
    case AggKind::kCount:
      return std::unique_ptr<AggregateFunction>(new CountAgg(false));
    case AggKind::kSum:
    case AggKind::kAvg: {
      bool is_avg = kind == AggKind::kAvg;
      switch (arg_type.id()) {
        case TypeId::kInt32:
          if (is_avg) {
            return std::unique_ptr<AggregateFunction>(
                new SumAgg<int32_t, double, TypeId::kInt32>(result, true));
          }
          return std::unique_ptr<AggregateFunction>(
              new SumAgg<int32_t, int64_t, TypeId::kInt32>(result, false));
        case TypeId::kInt64:
          if (is_avg) {
            return std::unique_ptr<AggregateFunction>(
                new SumAgg<int64_t, double, TypeId::kInt64>(result, true));
          }
          return std::unique_ptr<AggregateFunction>(
              new SumAgg<int64_t, int64_t, TypeId::kInt64>(result, false));
        case TypeId::kFloat64:
          return std::unique_ptr<AggregateFunction>(
              new SumAgg<double, double, TypeId::kFloat64>(result, is_avg));
        case TypeId::kDecimal128: {
          // avg divides sum (at arg scale) by count, producing result
          // scale: shift = result.scale - arg.scale.
          int shift = is_avg ? result.scale() - arg_type.scale() : 0;
          return std::unique_ptr<AggregateFunction>(
              new SumAgg<int128_t, int128_t, TypeId::kDecimal128>(
                  result, is_avg, shift));
        }
        default:
          return Status::InvalidArgument("sum/avg: bad argument type");
      }
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      bool is_min = kind == AggKind::kMin;
      switch (arg_type.id()) {
        case TypeId::kInt32:
        case TypeId::kDate32:
          if (is_min) {
            return std::unique_ptr<AggregateFunction>(
                new MinMaxAgg<int32_t, TypeId::kInt32, true>(arg_type));
          }
          return std::unique_ptr<AggregateFunction>(
              new MinMaxAgg<int32_t, TypeId::kInt32, false>(arg_type));
        case TypeId::kInt64:
        case TypeId::kTimestamp:
          if (is_min) {
            return std::unique_ptr<AggregateFunction>(
                new MinMaxAgg<int64_t, TypeId::kInt64, true>(arg_type));
          }
          return std::unique_ptr<AggregateFunction>(
              new MinMaxAgg<int64_t, TypeId::kInt64, false>(arg_type));
        case TypeId::kFloat64:
          if (is_min) {
            return std::unique_ptr<AggregateFunction>(
                new MinMaxAgg<double, TypeId::kFloat64, true>(arg_type));
          }
          return std::unique_ptr<AggregateFunction>(
              new MinMaxAgg<double, TypeId::kFloat64, false>(arg_type));
        case TypeId::kDecimal128:
          if (is_min) {
            return std::unique_ptr<AggregateFunction>(
                new MinMaxAgg<int128_t, TypeId::kDecimal128, true>(arg_type));
          }
          return std::unique_ptr<AggregateFunction>(
              new MinMaxAgg<int128_t, TypeId::kDecimal128, false>(arg_type));
        case TypeId::kString:
          if (is_min) {
            return std::unique_ptr<AggregateFunction>(
                new MinMaxAgg<StringRef, TypeId::kString, true>(arg_type));
          }
          return std::unique_ptr<AggregateFunction>(
              new MinMaxAgg<StringRef, TypeId::kString, false>(arg_type));
        default:
          return Status::InvalidArgument("min/max: bad argument type");
      }
    }
    case AggKind::kCollectList:
      return std::unique_ptr<AggregateFunction>(new CollectListAgg());
  }
  return Status::Internal("bad agg kind");
}

std::string AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kCollectList:
      return "collect_list";
  }
  return "?";
}

}  // namespace photon
