#include "expr/expr.h"

#include <cstring>

#include "expr/kernels.h"

namespace photon {

// ---------------------------------------------------------------------------
// Shared kernel utilities
// ---------------------------------------------------------------------------

void CopyValuesAtPositions(const ColumnVector& src, const int32_t* rows,
                           int n, ColumnVector* dst) {
  const uint8_t* src_nulls = src.nulls();
  uint8_t* dst_nulls = dst->nulls();
  switch (src.type().id()) {
    case TypeId::kBoolean: {
      const uint8_t* a = src.data<uint8_t>();
      uint8_t* o = dst->data<uint8_t>();
      for (int i = 0; i < n; i++) {
        int r = rows[i];
        dst_nulls[r] = src_nulls[r];
        o[r] = a[r];
      }
      break;
    }
    case TypeId::kInt32:
    case TypeId::kDate32: {
      const int32_t* a = src.data<int32_t>();
      int32_t* o = dst->data<int32_t>();
      for (int i = 0; i < n; i++) {
        int r = rows[i];
        dst_nulls[r] = src_nulls[r];
        o[r] = a[r];
      }
      break;
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const int64_t* a = src.data<int64_t>();
      int64_t* o = dst->data<int64_t>();
      for (int i = 0; i < n; i++) {
        int r = rows[i];
        dst_nulls[r] = src_nulls[r];
        o[r] = a[r];
      }
      break;
    }
    case TypeId::kFloat64: {
      const double* a = src.data<double>();
      double* o = dst->data<double>();
      for (int i = 0; i < n; i++) {
        int r = rows[i];
        dst_nulls[r] = src_nulls[r];
        o[r] = a[r];
      }
      break;
    }
    case TypeId::kDecimal128: {
      const int128_t* a = src.data<int128_t>();
      int128_t* o = dst->data<int128_t>();
      for (int i = 0; i < n; i++) {
        int r = rows[i];
        dst_nulls[r] = src_nulls[r];
        o[r] = a[r];
      }
      break;
    }
    case TypeId::kString: {
      const StringRef* a = src.data<StringRef>();
      for (int i = 0; i < n; i++) {
        int r = rows[i];
        dst_nulls[r] = src_nulls[r];
        if (!src_nulls[r]) {
          dst->SetString(r, a[r].data, a[r].len);
        }
      }
      break;
    }
  }
}

int ApplyBooleanFilter(const ColumnVector& bools, ColumnBatch* batch) {
  PHOTON_DCHECK(bools.type().id() == TypeId::kBoolean);
  const uint8_t* vals = bools.data<uint8_t>();
  const uint8_t* nulls = bools.nulls();
  int32_t* pos = batch->mutable_pos_list();
  int out = 0;
  int n = batch->num_active();
  if (batch->all_active()) {
    for (int i = 0; i < n; i++) {
      // Keep rows where the predicate is true and not NULL.
      if (vals[i] && !nulls[i]) pos[out++] = i;
    }
  } else {
    for (int i = 0; i < n; i++) {
      int row = pos[i];
      if (vals[row] && !nulls[row]) pos[out++] = row;
    }
  }
  batch->SetActiveRows(out);
  return out;
}

Result<int> FilterBatch(const Expr& predicate, ColumnBatch* batch,
                        EvalContext* ctx) {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * bools,
                          predicate.Evaluate(batch, ctx));
  return ApplyBooleanFilter(*bools, batch);
}

// ---------------------------------------------------------------------------
// ColumnRefExpr
// ---------------------------------------------------------------------------

Result<ColumnVector*> ColumnRefExpr::Evaluate(ColumnBatch* batch,
                                              EvalContext* ctx) const {
  (void)ctx;
  if (index_ < 0 || index_ >= batch->num_columns()) {
    return Status::Internal("column index out of range: " +
                            std::to_string(index_));
  }
  return batch->column(index_);
}

Result<Value> ColumnRefExpr::EvaluateRow(const std::vector<Value>& row) const {
  if (index_ < 0 || index_ >= static_cast<int>(row.size())) {
    return Status::Internal("column index out of range");
  }
  return row[index_];
}

std::string ColumnRefExpr::ToString() const {
  return name_.empty() ? "#" + std::to_string(index_) : name_;
}

// ---------------------------------------------------------------------------
// LiteralExpr
// ---------------------------------------------------------------------------

Result<ColumnVector*> LiteralExpr::Evaluate(ColumnBatch* batch,
                                            EvalContext* ctx) const {
  ColumnVector* out = ctx->NewVector(type(), batch->capacity());
  int n = batch->num_active();
  if (value_.is_null()) {
    for (int i = 0; i < n; i++) out->SetNull(batch->ActiveRow(i));
    out->set_has_nulls(TriState::kYes);
    return out;
  }
  // Copy the constant into string storage once, share the ref.
  if (type().is_string()) {
    StringRef ref = out->var_pool()->AddString(
        value_.str().data(), static_cast<int32_t>(value_.str().size()));
    StringRef* vals = out->data<StringRef>();
    for (int i = 0; i < n; i++) vals[batch->ActiveRow(i)] = ref;
  } else {
    for (int i = 0; i < n; i++) out->SetValue(batch->ActiveRow(i), value_);
  }
  out->set_has_nulls(TriState::kNo);
  return out;
}

Result<Value> LiteralExpr::EvaluateRow(const std::vector<Value>&) const {
  return value_;
}

std::string LiteralExpr::ToString() const {
  return value_.ToString(type());
}

// ---------------------------------------------------------------------------
// BooleanExpr / NotExpr
// ---------------------------------------------------------------------------

BooleanExpr::BooleanExpr(BoolOp op, ExprPtr left, ExprPtr right)
    : Expr(DataType::Boolean()),
      op_(op),
      left_(std::move(left)),
      right_(std::move(right)) {
  PHOTON_CHECK(left_->type().id() == TypeId::kBoolean);
  PHOTON_CHECK(right_->type().id() == TypeId::kBoolean);
}

Result<ColumnVector*> BooleanExpr::Evaluate(ColumnBatch* batch,
                                            EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * a, left_->Evaluate(batch, ctx));
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * b, right_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(DataType::Boolean(), batch->capacity());
  int n = batch->num_active();
  const uint8_t* av = a->data<uint8_t>();
  const uint8_t* bv = b->data<uint8_t>();
  const uint8_t* an = a->nulls();
  const uint8_t* bn = b->nulls();
  uint8_t* ov = out->data<uint8_t>();
  uint8_t* on = out->nulls();
  // Kleene three-valued logic, matching Spark.
  for (int i = 0; i < n; i++) {
    int r = batch->ActiveRow(i);
    bool a_null = an[r], b_null = bn[r];
    bool a_true = !a_null && av[r], b_true = !b_null && bv[r];
    bool a_false = !a_null && !av[r], b_false = !b_null && !bv[r];
    if (op_ == BoolOp::kAnd) {
      if (a_false || b_false) {
        ov[r] = 0;
        on[r] = 0;
      } else if (a_null || b_null) {
        on[r] = 1;
      } else {
        ov[r] = 1;
        on[r] = 0;
      }
    } else {
      if (a_true || b_true) {
        ov[r] = 1;
        on[r] = 0;
      } else if (a_null || b_null) {
        on[r] = 1;
      } else {
        ov[r] = 0;
        on[r] = 0;
      }
    }
  }
  return out;
}

Result<Value> BooleanExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value a, left_->EvaluateRow(row));
  PHOTON_ASSIGN_OR_RETURN(Value b, right_->EvaluateRow(row));
  bool a_null = a.is_null(), b_null = b.is_null();
  bool a_true = !a_null && a.boolean(), b_true = !b_null && b.boolean();
  bool a_false = !a_null && !a.boolean(), b_false = !b_null && !b.boolean();
  if (op_ == BoolOp::kAnd) {
    if (a_false || b_false) return Value::Boolean(false);
    if (a_null || b_null) return Value::Null();
    return Value::Boolean(true);
  }
  if (a_true || b_true) return Value::Boolean(true);
  if (a_null || b_null) return Value::Null();
  return Value::Boolean(false);
}

std::string BooleanExpr::ToString() const {
  return "(" + left_->ToString() +
         (op_ == BoolOp::kAnd ? " AND " : " OR ") + right_->ToString() + ")";
}

NotExpr::NotExpr(ExprPtr child)
    : Expr(DataType::Boolean()), child_(std::move(child)) {
  PHOTON_CHECK(child_->type().id() == TypeId::kBoolean);
}

Result<ColumnVector*> NotExpr::Evaluate(ColumnBatch* batch,
                                        EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * a, child_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(DataType::Boolean(), batch->capacity());
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  bool has_nulls =
      a->ComputeHasNulls(pos, n, batch->all_active());
  DispatchBatchShape(
      has_nulls, batch->all_active(), [&](auto nulls_c, auto active_c) {
        constexpr bool kHasNulls = decltype(nulls_c)::value;
        constexpr bool kAllActive = decltype(active_c)::value;
        const uint8_t* PHOTON_RESTRICT av = a->data<uint8_t>();
        const uint8_t* PHOTON_RESTRICT an = a->nulls();
        uint8_t* PHOTON_RESTRICT ov = out->data<uint8_t>();
        uint8_t* PHOTON_RESTRICT on = out->nulls();
        for (int i = 0; i < n; i++) {
          int r = kAllActive ? i : pos[i];
          if constexpr (kHasNulls) {
            if (an[r]) {
              on[r] = 1;
              continue;
            }
          }
          ov[r] = av[r] ? 0 : 1;
        }
      });
  out->set_has_nulls(has_nulls ? TriState::kYes : TriState::kNo);
  return out;
}

Result<Value> NotExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(row));
  if (v.is_null()) return Value::Null();
  return Value::Boolean(!v.boolean());
}

std::string NotExpr::ToString() const {
  return "NOT " + child_->ToString();
}

// ---------------------------------------------------------------------------
// IsNullExpr
// ---------------------------------------------------------------------------

IsNullExpr::IsNullExpr(ExprPtr child, bool negated)
    : Expr(DataType::Boolean()), child_(std::move(child)), negated_(negated) {}

Result<ColumnVector*> IsNullExpr::Evaluate(ColumnBatch* batch,
                                           EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * a, child_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(DataType::Boolean(), batch->capacity());
  int n = batch->num_active();
  const uint8_t* an = a->nulls();
  uint8_t* ov = out->data<uint8_t>();
  const uint8_t want = negated_ ? 0 : 1;
  for (int i = 0; i < n; i++) {
    int r = batch->ActiveRow(i);
    ov[r] = (an[r] == want) ? 1 : 0;
  }
  out->set_has_nulls(TriState::kNo);
  return out;
}

Result<Value> IsNullExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(row));
  return Value::Boolean(negated_ ? !v.is_null() : v.is_null());
}

std::string IsNullExpr::ToString() const {
  return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
}

// ---------------------------------------------------------------------------
// CaseWhenExpr
// ---------------------------------------------------------------------------

CaseWhenExpr::CaseWhenExpr(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                           ExprPtr else_expr, DataType result)
    : Expr(result),
      branches_(std::move(branches)),
      else_expr_(std::move(else_expr)) {
  PHOTON_CHECK(!branches_.empty());
}

std::vector<ExprPtr> CaseWhenExpr::children() const {
  std::vector<ExprPtr> out;
  for (const auto& [c, t] : branches_) {
    out.push_back(c);
    out.push_back(t);
  }
  if (else_expr_) out.push_back(else_expr_);
  return out;
}

Result<ColumnVector*> CaseWhenExpr::Evaluate(ColumnBatch* batch,
                                             EvalContext* ctx) const {
  ColumnVector* out = ctx->NewVector(type(), batch->capacity());
  int n = batch->num_active();

  // Rows not yet claimed by any earlier branch.
  std::vector<int32_t> remaining(n);
  for (int i = 0; i < n; i++) remaining[i] = batch->ActiveRow(i);

  ScopedActiveSet scope(batch);  // restore the caller's active set at exit
  std::vector<int32_t> taken, not_taken;

  for (const auto& [cond, then] : branches_) {
    if (remaining.empty()) break;
    scope.Install(remaining.data(), static_cast<int>(remaining.size()));
    PHOTON_ASSIGN_OR_RETURN(ColumnVector * cv, cond->Evaluate(batch, ctx));
    taken.clear();
    not_taken.clear();
    const uint8_t* vals = cv->data<uint8_t>();
    const uint8_t* nulls = cv->nulls();
    for (int32_t r : remaining) {
      if (vals[r] && !nulls[r]) {
        taken.push_back(r);
      } else {
        not_taken.push_back(r);
      }
    }
    if (!taken.empty()) {
      // Narrow the active set to the rows that took the branch, evaluate
      // the THEN expression, and scatter its results into the shared
      // output vector (§4.3).
      scope.Install(taken.data(), static_cast<int>(taken.size()));
      PHOTON_ASSIGN_OR_RETURN(ColumnVector * tv, then->Evaluate(batch, ctx));
      CopyValuesAtPositions(*tv, taken.data(),
                            static_cast<int>(taken.size()), out);
    }
    remaining.swap(not_taken);
  }

  if (!remaining.empty()) {
    if (else_expr_ != nullptr) {
      scope.Install(remaining.data(), static_cast<int>(remaining.size()));
      PHOTON_ASSIGN_OR_RETURN(ColumnVector * ev,
                              else_expr_->Evaluate(batch, ctx));
      CopyValuesAtPositions(*ev, remaining.data(),
                            static_cast<int>(remaining.size()), out);
    } else {
      for (int32_t r : remaining) out->SetNull(r);
    }
  }
  return out;
}

Result<Value> CaseWhenExpr::EvaluateRow(const std::vector<Value>& row) const {
  for (const auto& [cond, then] : branches_) {
    PHOTON_ASSIGN_OR_RETURN(Value c, cond->EvaluateRow(row));
    if (!c.is_null() && c.boolean()) return then->EvaluateRow(row);
  }
  if (else_expr_ != nullptr) return else_expr_->EvaluateRow(row);
  return Value::Null();
}

std::string CaseWhenExpr::ToString() const {
  std::string out = "CASE";
  for (const auto& [c, t] : branches_) {
    out += " WHEN " + c->ToString() + " THEN " + t->ToString();
  }
  if (else_expr_) out += " ELSE " + else_expr_->ToString();
  return out + " END";
}

// ---------------------------------------------------------------------------
// InListExpr
// ---------------------------------------------------------------------------

InListExpr::InListExpr(ExprPtr value, std::vector<Value> list)
    : Expr(DataType::Boolean()),
      value_(std::move(value)),
      list_(std::move(list)) {}

Result<ColumnVector*> InListExpr::Evaluate(ColumnBatch* batch,
                                           EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, value_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(DataType::Boolean(), batch->capacity());
  int n = batch->num_active();
  bool list_has_null = false;
  for (const Value& item : list_) list_has_null |= item.is_null();

  uint8_t* ov = out->data<uint8_t>();
  uint8_t* on = out->nulls();
  for (int i = 0; i < n; i++) {
    int r = batch->ActiveRow(i);
    if (v->IsNull(r)) {
      on[r] = 1;
      continue;
    }
    Value val = v->GetValue(r);
    bool found = false;
    for (const Value& item : list_) {
      if (!item.is_null() && item.Equals(val)) {
        found = true;
        break;
      }
    }
    if (found) {
      ov[r] = 1;
      on[r] = 0;
    } else if (list_has_null) {
      on[r] = 1;  // value NOT IN list, but list has NULL -> unknown
    } else {
      ov[r] = 0;
      on[r] = 0;
    }
  }
  return out;
}

Result<Value> InListExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value v, value_->EvaluateRow(row));
  if (v.is_null()) return Value::Null();
  bool list_has_null = false;
  for (const Value& item : list_) {
    if (item.is_null()) {
      list_has_null = true;
    } else if (item.Equals(v)) {
      return Value::Boolean(true);
    }
  }
  if (list_has_null) return Value::Null();
  return Value::Boolean(false);
}

std::string InListExpr::ToString() const {
  std::string out = value_->ToString() + " IN (";
  for (size_t i = 0; i < list_.size(); i++) {
    if (i > 0) out += ", ";
    out += list_[i].ToString();
  }
  return out + ")";
}

}  // namespace photon
