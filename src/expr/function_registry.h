#ifndef PHOTON_EXPR_FUNCTION_REGISTRY_H_
#define PHOTON_EXPR_FUNCTION_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/eval_context.h"
#include "types/value.h"
#include "vector/column_batch.h"

namespace photon {

/// One named scalar function ("upper", "sqrt", "date_add", ...).
///
/// `bind` types a call site; `eval_batch` is the vectorized Photon kernel;
/// `eval_row` is the row-at-a-time implementation used by the baseline
/// engine and by the semantics-consistency tests (§5.6). Keeping both
/// implementations under one registration is this repo's version of the
/// paper's function registry, which determines whether a given expression
/// can run in Photon.
struct FunctionImpl {
  /// Computes the result type for the argument types; error => no overload.
  std::function<Result<DataType>(const std::vector<DataType>&)> bind;

  /// Vectorized evaluation. `args` are batch-aligned vectors (value for
  /// batch row r at index r); results are written into `out` at the
  /// batch's active rows only.
  std::function<Status(const std::vector<const ColumnVector*>& args,
                       ColumnBatch* batch, ColumnVector* out)>
      eval_batch;

  /// Row-at-a-time evaluation over boxed values.
  std::function<Result<Value>(const std::vector<Value>& args,
                              const std::vector<DataType>& arg_types,
                              const DataType& result_type)>
      eval_row;
};

/// Global registry of scalar functions. Built-ins self-register at startup;
/// tests and extensions may add more.
class FunctionRegistry {
 public:
  static FunctionRegistry& Instance();

  void Register(const std::string& name, FunctionImpl impl);
  /// nullptr when the function is unknown (the plan converter then treats
  /// the expression as unsupported by Photon and falls back, §3.5).
  const FunctionImpl* Lookup(const std::string& name) const;
  bool IsSupported(const std::string& name) const {
    return Lookup(name) != nullptr;
  }
  std::vector<std::string> FunctionNames() const;

 private:
  FunctionRegistry();
  std::map<std::string, FunctionImpl> functions_;
};

namespace internal_registry {
// Registration hooks implemented by the functions_*.cc files.
void RegisterStringFunctions(FunctionRegistry* registry);
void RegisterStringFunctions2(FunctionRegistry* registry);
void RegisterMathFunctions(FunctionRegistry* registry);
void RegisterDateTimeFunctions(FunctionRegistry* registry);
void RegisterMiscFunctions(FunctionRegistry* registry);
}  // namespace internal_registry

}  // namespace photon

#endif  // PHOTON_EXPR_FUNCTION_REGISTRY_H_
