#include "opt/optimizer.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_set>

#include "expr/program.h"
#include "opt/expr_rewrite.h"
#include "opt/stats.h"

namespace photon {
namespace opt {
namespace {

using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

PlanPtr CloneShallow(const PlanPtr& node) {
  return std::make_shared<PlanNode>(*node);
}

bool IsTrivialExpr(const ExprPtr& e) {
  return dynamic_cast<const ColumnRefExpr*>(e.get()) != nullptr ||
         dynamic_cast<const LiteralExpr*>(e.get()) != nullptr;
}

/// True when every column `pred` references maps to a trivial expression in
/// `exprs` (so substitution duplicates no computation).
bool RefsAreTrivial(const Expr& pred, const std::vector<ExprPtr>& exprs) {
  for (int c : ReferencedColumns(pred)) {
    if (c < 0 || c >= static_cast<int>(exprs.size())) return false;
    if (!IsTrivialExpr(exprs[c])) return false;
  }
  return true;
}

PlanPtr ApplyPreds(PlanPtr node, const std::vector<ExprPtr>& preds) {
  ExprPtr combined = AndAll(preds);
  return combined == nullptr ? node : plan::Filter(std::move(node), combined);
}

// ---------------------------------------------------------------------------
// Pass 1: filter pushdown
// ---------------------------------------------------------------------------

/// Rebuilds `node` with `preds` (conjuncts over node's output schema,
/// inherited from enclosing Filters) applied as low as possible. The result
/// always has node's output schema.
PlanPtr PushDown(const PlanPtr& node, std::vector<ExprPtr> preds) {
  switch (node->kind) {
    case PlanKind::kFilter: {
      // The node's own conjuncts sit below the inherited ones.
      std::vector<ExprPtr> merged;
      SplitConjuncts(node->predicate, &merged);
      merged.insert(merged.end(), preds.begin(), preds.end());
      return PushDown(node->children[0], std::move(merged));
    }
    case PlanKind::kProject: {
      std::vector<ExprPtr> pushable, kept;
      for (ExprPtr& p : preds) {
        ExprPtr sub = RefsAreTrivial(*p, node->exprs)
                          ? SubstituteColumns(p, node->exprs)
                          : nullptr;
        if (sub != nullptr) {
          pushable.push_back(std::move(sub));
        } else {
          kept.push_back(std::move(p));
        }
      }
      PlanPtr out = plan::Project(PushDown(node->children[0], std::move(pushable)),
                                  node->exprs, node->names);
      return ApplyPreds(std::move(out), kept);
    }
    case PlanKind::kAggregate: {
      // Predicates over group-key outputs filter groups; filtering the
      // matching input rows first yields the same groups. Only column-ref
      // keys substitute soundly and cheaply. A zero-key (scalar) aggregate
      // produces one row even over empty input, so nothing may sink past
      // it — not even a constant predicate (found by differ mode 8,
      // pinned in fuzz_regression_test).
      if (node->group_keys.empty()) {
        return ApplyPreds(plan::Aggregate(PushDown(node->children[0], {}),
                                          node->group_keys, node->key_names,
                                          node->aggregates),
                          preds);
      }
      std::vector<ExprPtr> repl(node->output_schema.num_fields(), nullptr);
      for (size_t i = 0; i < node->group_keys.size(); i++) {
        if (IsTrivialExpr(node->group_keys[i])) repl[i] = node->group_keys[i];
      }
      std::vector<ExprPtr> pushable, kept;
      for (ExprPtr& p : preds) {
        ExprPtr sub = SubstituteColumns(p, repl);
        if (sub != nullptr) {
          pushable.push_back(std::move(sub));
        } else {
          kept.push_back(std::move(p));
        }
      }
      PlanPtr out = plan::Aggregate(
          PushDown(node->children[0], std::move(pushable)), node->group_keys,
          node->key_names, node->aggregates);
      return ApplyPreds(std::move(out), kept);
    }
    case PlanKind::kJoin: {
      int lw = node->children[0]->output_schema.num_fields();
      bool right_ok = node->join_type == JoinType::kInner;
      std::vector<ExprPtr> left_preds, right_preds, kept;
      for (ExprPtr& p : preds) {
        std::vector<int> cols = ReferencedColumns(*p);
        bool all_left = cols.empty() || cols.back() < lw;
        bool all_right = !cols.empty() && cols.front() >= lw;
        if (all_left) {
          // Probe columns are the output prefix for every join type and are
          // never NULL-padded, so probe-side pushdown is always sound.
          left_preds.push_back(std::move(p));
          continue;
        }
        if (all_right && right_ok) {
          // Build-side pushdown only for inner joins — an outer join pads
          // the build side with NULLs, which a pushed filter would miss.
          ExprPtr shifted = ShiftColumns(p, -lw);
          if (shifted != nullptr) {
            right_preds.push_back(std::move(shifted));
            continue;
          }
        }
        kept.push_back(std::move(p));
      }
      PlanPtr out = plan::Join(
          PushDown(node->children[0], std::move(left_preds)),
          PushDown(node->children[1], std::move(right_preds)),
          node->join_type, node->left_keys, node->right_keys, node->residual);
      return ApplyPreds(std::move(out), kept);
    }
    case PlanKind::kSort: {
      // Filter-then-sort and sort-then-filter agree on content and on the
      // relative order of survivors.
      return plan::Sort(PushDown(node->children[0], std::move(preds)),
                        node->sort_keys);
    }
    case PlanKind::kLimit: {
      // Never push through a limit — it would change which rows are cut.
      PlanPtr out = plan::Limit(PushDown(node->children[0], {}), node->limit);
      return ApplyPreds(std::move(out), preds);
    }
    case PlanKind::kDeltaScan: {
      // Merge into the scan predicate: FileScanOperator both prunes
      // files/row groups on it (zone maps) and enforces it row-level, and
      // the baseline compiles kDeltaScan to the same scan operator, so the
      // merge is exactly semantics-preserving. Deduplicate by canonical
      // form — fuzzed plans often carry the same conjunct as both scan
      // predicate and Filter.
      std::vector<ExprPtr> merged;
      SplitConjuncts(node->scan_predicate, &merged);
      std::unordered_set<std::string> seen;
      for (const ExprPtr& c : merged) seen.insert(ExprCanonKey(*c));
      bool changed = false;
      for (ExprPtr& p : preds) {
        if (seen.insert(ExprCanonKey(*p)).second) {
          merged.push_back(std::move(p));
          changed = true;
        }
      }
      if (!changed) return node;
      PlanPtr out = CloneShallow(node);
      out->scan_predicate = AndAll(merged);
      return out;
    }
    case PlanKind::kScan:
      return ApplyPreds(node, preds);
  }
  return ApplyPreds(node, preds);
}

// ---------------------------------------------------------------------------
// Pass 2: semi-join reduction
// ---------------------------------------------------------------------------

/// Sinks a keyed semi/anti join (`type`, build `build` with `build_keys`)
/// into `probe`, descending while a child can absorb it: through filters
/// and trivial projects (both commute with a probe-row filter), and into
/// whichever side of an inner (or, for the probe side, left-outer) join
/// supplies every key column.
PlanPtr SinkSemiInto(const PlanPtr& probe, std::vector<ExprPtr> keys,
                     const PlanPtr& build,
                     const std::vector<ExprPtr>& build_keys, JoinType type) {
  if (probe->kind == PlanKind::kFilter) {
    return plan::Filter(
        SinkSemiInto(probe->children[0], std::move(keys), build, build_keys,
                     type),
        probe->predicate);
  }
  if (probe->kind == PlanKind::kProject) {
    std::vector<ExprPtr> rewritten;
    rewritten.reserve(keys.size());
    bool ok = true;
    for (const ExprPtr& k : keys) {
      ExprPtr sub = RefsAreTrivial(*k, probe->exprs)
                        ? SubstituteColumns(k, probe->exprs)
                        : nullptr;
      if (sub == nullptr) {
        ok = false;
        break;
      }
      rewritten.push_back(std::move(sub));
    }
    if (ok) {
      return plan::Project(
          SinkSemiInto(probe->children[0], std::move(rewritten), build,
                       build_keys, type),
          probe->exprs, probe->names);
    }
  }
  if (probe->kind == PlanKind::kJoin &&
      (probe->join_type == JoinType::kInner ||
       probe->join_type == JoinType::kLeftOuter)) {
    int lw = probe->children[0]->output_schema.num_fields();
    std::vector<int> cols;
    for (const ExprPtr& k : keys) {
      for (int c : ReferencedColumns(*k)) cols.push_back(c);
    }
    bool all_left = cols.empty() ||
                    *std::max_element(cols.begin(), cols.end()) < lw;
    bool all_right =
        !cols.empty() && *std::min_element(cols.begin(), cols.end()) >= lw;
    if (all_left) {
      return plan::Join(
          SinkSemiInto(probe->children[0], std::move(keys), build, build_keys,
                       type),
          probe->children[1], probe->join_type, probe->left_keys,
          probe->right_keys, probe->residual);
    }
    if (all_right && probe->join_type == JoinType::kInner) {
      std::vector<ExprPtr> shifted;
      shifted.reserve(keys.size());
      bool ok = true;
      for (const ExprPtr& k : keys) {
        ExprPtr s = ShiftColumns(k, -lw);
        if (s == nullptr) {
          ok = false;
          break;
        }
        shifted.push_back(std::move(s));
      }
      if (ok) {
        return plan::Join(probe->children[0],
                          SinkSemiInto(probe->children[1], std::move(shifted),
                                       build, build_keys, type),
                          probe->join_type, probe->left_keys,
                          probe->right_keys, probe->residual);
      }
    }
  }
  return plan::Join(probe, build, type, std::move(keys), build_keys, nullptr);
}

PlanPtr SinkSemiPass(const PlanPtr& node) {
  PlanPtr copy = CloneShallow(node);
  for (PlanPtr& child : copy->children) child = SinkSemiPass(child);
  if (copy->kind == PlanKind::kJoin &&
      (copy->join_type == JoinType::kLeftSemi ||
       copy->join_type == JoinType::kLeftAnti) &&
      copy->residual == nullptr) {
    return SinkSemiInto(copy->children[0], copy->left_keys, copy->children[1],
                        copy->right_keys, copy->join_type);
  }
  return copy;
}

// ---------------------------------------------------------------------------
// Pass 3: cost-based join reordering
// ---------------------------------------------------------------------------

/// One input of a flattened inner-join cluster. Its output columns occupy
/// the contiguous global range [offset, offset + width).
struct ClusterPart {
  PlanPtr plan;
  int offset = 0;
  int width = 0;
};

struct Cluster {
  std::vector<ClusterPart> parts;
  std::vector<ExprPtr> conjuncts;  // over the global column space
};

/// Clusters can't usefully grow past a handful of inputs, and the greedy
/// composition re-estimates the growing tree each step; cap to keep
/// pathological fuzz plans linear.
constexpr int kMaxClusterParts = 10;

/// True when `n` is interior to an inner-join cluster: an inner join, or a
/// filter stack over one.
bool IsClusterInterior(const PlanNode& n) {
  if (n.kind == PlanKind::kJoin) return n.join_type == JoinType::kInner;
  if (n.kind == PlanKind::kFilter) return IsClusterInterior(*n.children[0]);
  return false;
}

/// Flattens the maximal cluster under `node` into `out`, translating every
/// predicate, key pair, and residual into conjuncts over the global column
/// space (in-order concatenation of part outputs). Returns the subtree's
/// global width, or -1 when any expression resists translation.
int FlattenCluster(const PlanPtr& node, int base, Cluster* out) {
  if (node->kind == PlanKind::kFilter &&
      IsClusterInterior(*node->children[0])) {
    int w = FlattenCluster(node->children[0], base, out);
    if (w < 0) return -1;
    std::vector<ExprPtr> split;
    SplitConjuncts(node->predicate, &split);
    for (const ExprPtr& c : split) {
      ExprPtr g = ShiftColumns(c, base);
      if (g == nullptr) return -1;
      out->conjuncts.push_back(std::move(g));
    }
    return w;
  }
  if (node->kind == PlanKind::kJoin && node->join_type == JoinType::kInner) {
    int wl = FlattenCluster(node->children[0], base, out);
    if (wl < 0) return -1;
    int wr = FlattenCluster(node->children[1], base + wl, out);
    if (wr < 0) return -1;
    for (size_t i = 0; i < node->left_keys.size(); i++) {
      ExprPtr l = ShiftColumns(node->left_keys[i], base);
      ExprPtr r = ShiftColumns(node->right_keys[i], base + wl);
      if (l == nullptr || r == nullptr) return -1;
      out->conjuncts.push_back(
          std::make_shared<ComparisonExpr>(CmpOp::kEq, l, r));
    }
    if (node->residual != nullptr) {
      // The residual's [left cols, right cols] space is the global space
      // shifted down by `base`.
      std::vector<ExprPtr> split;
      SplitConjuncts(node->residual, &split);
      for (const ExprPtr& c : split) {
        ExprPtr g = ShiftColumns(c, base);
        if (g == nullptr) return -1;
        out->conjuncts.push_back(std::move(g));
      }
    }
    return wl + wr;
  }
  int w = node->output_schema.num_fields();
  out->parts.push_back({node, base, w});
  return w;
}

bool AllRefsIn(const std::vector<int>& refs, const std::vector<bool>& in) {
  for (int c : refs) {
    if (c < 0 || c >= static_cast<int>(in.size()) || !in[c]) return false;
  }
  return true;
}

/// A conjunct usable as a hash-key pair between the placed set and a
/// candidate part: a plain equality whose sides split cleanly across the
/// boundary with exactly matching non-float types (float keys keep their
/// engine-specific NaN/-0.0 hashing out of the build table).
struct KeyEdge {
  ExprPtr placed_side;
  ExprPtr cand_side;
};

bool QualifyKeyEdge(const ExprPtr& conjunct, const std::vector<bool>& placed,
                    const std::vector<bool>& cand, KeyEdge* out) {
  const auto* cmp = dynamic_cast<const ComparisonExpr*>(conjunct.get());
  if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
  std::vector<ExprPtr> kids = cmp->children();
  if (!(kids[0]->type() == kids[1]->type()) ||
      kids[0]->type().id() == TypeId::kFloat64) {
    return false;
  }
  std::vector<int> refs_a = ReferencedColumns(*kids[0]);
  std::vector<int> refs_b = ReferencedColumns(*kids[1]);
  if (AllRefsIn(refs_a, placed) && AllRefsIn(refs_b, cand)) {
    *out = {kids[0], kids[1]};
    return true;
  }
  if (AllRefsIn(refs_b, placed) && AllRefsIn(refs_a, cand)) {
    *out = {kids[1], kids[0]};
    return true;
  }
  return false;
}

double KeySideNdv(const ExprPtr& side, const std::vector<ColEstimate>& gcols) {
  const auto* col = dynamic_cast<const ColumnRefExpr*>(side.get());
  if (col == nullptr || col->index() < 0 ||
      col->index() >= static_cast<int>(gcols.size())) {
    return -1;
  }
  return gcols[col->index()].ndv;
}

/// Estimated output rows of joining two inputs on the given key edges:
/// rows_l * rows_r * prod(1 / max(ndv)) per edge, with the FK-style
/// 1 / max(rows) fallback when sketches are absent.
double EstimateJoinRows(double rows_l, double rows_r,
                        const std::vector<KeyEdge>& edges,
                        const std::vector<ColEstimate>& gcols) {
  double rows = std::max(rows_l, 1.0) * std::max(rows_r, 1.0);
  for (const KeyEdge& e : edges) {
    double ndv_l = KeySideNdv(e.placed_side, gcols);
    double ndv_r = KeySideNdv(e.cand_side, gcols);
    double denom = std::max(ndv_l, ndv_r);
    if (denom <= 0) denom = std::max({rows_l, rows_r, 1.0});
    rows /= std::max(denom, 1.0);
  }
  return rows;
}

std::vector<bool> PartMask(const ClusterPart& part, int total) {
  std::vector<bool> mask(total, false);
  for (int g = part.offset; g < part.offset + part.width; g++) mask[g] = true;
  return mask;
}

std::vector<int> PartLocalMap(const ClusterPart& part, int total) {
  std::vector<int> map(total, -1);
  for (int g = part.offset; g < part.offset + part.width; g++) {
    map[g] = g - part.offset;
  }
  return map;
}

PlanPtr ReorderPass(const PlanPtr& node);

/// Flattens the cluster rooted at `root`, recomposes it greedily by
/// estimated cardinality, and restores the original column order with a
/// final Project. Returns nullptr (caller keeps the original shape) when
/// any expression resists translation or the join graph disconnects.
PlanPtr TryReorderCluster(const PlanPtr& root) {
  Cluster cluster;
  int total = FlattenCluster(root, 0, &cluster);
  if (total < 0 || total != root->output_schema.num_fields()) return nullptr;
  int n = static_cast<int>(cluster.parts.size());
  if (n < 2 || n > kMaxClusterParts) return nullptr;

  // Optimize each part's own subtree (nested clusters sit below non-inner
  // boundaries such as aggregates and semi joins).
  for (ClusterPart& part : cluster.parts) part.plan = ReorderPass(part.plan);

  // Apply single-part conjuncts at their leaf before estimating, so the
  // greedy order sees post-filter cardinalities. Constant conjuncts
  // (no column refs) land on part 0.
  std::vector<std::vector<ExprPtr>> leaf_preds(n);
  std::vector<ExprPtr> remaining;
  for (ExprPtr& c : cluster.conjuncts) {
    std::vector<int> refs = ReferencedColumns(*c);
    int part_idx = -1;
    if (refs.empty()) {
      part_idx = 0;
    } else {
      for (int p = 0; p < n; p++) {
        const ClusterPart& part = cluster.parts[p];
        if (refs.front() >= part.offset &&
            refs.back() < part.offset + part.width) {
          part_idx = p;
          break;
        }
      }
    }
    if (part_idx < 0) {
      remaining.push_back(std::move(c));
      continue;
    }
    ExprPtr local = RemapColumns(c, PartLocalMap(cluster.parts[part_idx],
                                                 total));
    if (local == nullptr) return nullptr;
    leaf_preds[part_idx].push_back(std::move(local));
  }
  for (int p = 0; p < n; p++) {
    if (!leaf_preds[p].empty()) {
      cluster.parts[p].plan =
          plan::Filter(cluster.parts[p].plan, AndAll(leaf_preds[p]));
    }
  }

  std::vector<PlanEstimate> estimates(n);
  std::vector<ColEstimate> gcols(total);
  for (int p = 0; p < n; p++) {
    estimates[p] = EstimatePlan(*cluster.parts[p].plan);
    for (int k = 0; k < cluster.parts[p].width &&
                    k < static_cast<int>(estimates[p].cols.size());
         k++) {
      gcols[cluster.parts[p].offset + k] = estimates[p].cols[k];
    }
  }

  // Start pair: the keyed pair with the smallest estimated join output.
  int best_i = -1, best_j = -1;
  double best_rows = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; i++) {
    std::vector<bool> mask_i = PartMask(cluster.parts[i], total);
    for (int j = i + 1; j < n; j++) {
      std::vector<bool> mask_j = PartMask(cluster.parts[j], total);
      std::vector<KeyEdge> edges;
      KeyEdge edge;
      for (const ExprPtr& c : remaining) {
        if (QualifyKeyEdge(c, mask_i, mask_j, &edge)) edges.push_back(edge);
      }
      if (edges.empty()) continue;
      double rows =
          EstimateJoinRows(estimates[i].rows, estimates[j].rows, edges, gcols);
      if (rows < best_rows) {
        best_rows = rows;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (best_i < 0) return nullptr;

  // Greedy composition state: `cur` is the joined prefix, `map` sends each
  // global column to its index in cur's output (-1 = not yet placed).
  std::vector<bool> placed_cols(total, false);
  std::vector<bool> part_placed(n, false);
  std::vector<int> map(total, -1);

  PlanPtr cur = cluster.parts[best_i].plan;
  PlanEstimate cur_est = estimates[best_i];
  part_placed[best_i] = true;
  for (int g = cluster.parts[best_i].offset;
       g < cluster.parts[best_i].offset + cluster.parts[best_i].width; g++) {
    placed_cols[g] = true;
    map[g] = g - cluster.parts[best_i].offset;
  }

  // Joins `cand` onto `cur` using every qualifying key edge, with the
  // smaller estimated input as the hash build side. Returns false on a
  // rewrite failure (caller abandons the whole cluster).
  auto compose = [&](int cand) -> bool {
    const ClusterPart& part = cluster.parts[cand];
    std::vector<bool> cand_mask = PartMask(part, total);
    std::vector<int> cand_map = PartLocalMap(part, total);
    std::vector<KeyEdge> edges;
    std::vector<ExprPtr> rest;
    KeyEdge edge;
    for (const ExprPtr& c : remaining) {
      if (QualifyKeyEdge(c, placed_cols, cand_mask, &edge)) {
        edges.push_back(edge);
      } else {
        rest.push_back(c);
      }
    }
    if (edges.empty()) return false;
    remaining = std::move(rest);

    std::vector<ExprPtr> cur_keys, cand_keys;
    for (const KeyEdge& e : edges) {
      ExprPtr ck = RemapColumns(e.placed_side, map);
      ExprPtr pk = RemapColumns(e.cand_side, cand_map);
      if (ck == nullptr || pk == nullptr) return false;
      cur_keys.push_back(std::move(ck));
      cand_keys.push_back(std::move(pk));
    }

    int cur_width = 0;
    for (int g = 0; g < total; g++) cur_width += placed_cols[g] ? 1 : 0;
    bool cand_builds = estimates[cand].rows <= cur_est.rows;
    if (cand_builds) {
      cur = plan::Join(cur, part.plan, JoinType::kInner, cur_keys, cand_keys);
      for (int g = part.offset; g < part.offset + part.width; g++) {
        map[g] = cur_width + (g - part.offset);
      }
    } else {
      cur = plan::Join(part.plan, cur, JoinType::kInner, cand_keys, cur_keys);
      for (int g = 0; g < total; g++) {
        if (map[g] >= 0) map[g] += part.width;
      }
      for (int g = part.offset; g < part.offset + part.width; g++) {
        map[g] = g - part.offset;
      }
    }
    for (int g = part.offset; g < part.offset + part.width; g++) {
      placed_cols[g] = true;
    }
    part_placed[cand] = true;

    // Conjuncts that just became fully covered (non-equi residuals, float
    // equalities, predicates spanning three or more parts) apply here.
    std::vector<ExprPtr> now, later;
    for (const ExprPtr& c : remaining) {
      if (AllRefsIn(ReferencedColumns(*c), placed_cols)) {
        ExprPtr local = RemapColumns(c, map);
        if (local == nullptr) return false;
        now.push_back(std::move(local));
      } else {
        later.push_back(c);
      }
    }
    remaining = std::move(later);
    if (!now.empty()) cur = plan::Filter(cur, AndAll(now));
    cur_est = EstimatePlan(*cur);
    return true;
  };

  if (!compose(best_j)) return nullptr;

  for (int step = 2; step < n; step++) {
    int best = -1;
    double best_cand_rows = std::numeric_limits<double>::infinity();
    for (int j = 0; j < n; j++) {
      if (part_placed[j]) continue;
      std::vector<bool> mask_j = PartMask(cluster.parts[j], total);
      std::vector<KeyEdge> edges;
      KeyEdge edge;
      for (const ExprPtr& c : remaining) {
        if (QualifyKeyEdge(c, placed_cols, mask_j, &edge)) edges.push_back(edge);
      }
      if (edges.empty()) continue;
      double rows =
          EstimateJoinRows(cur_est.rows, estimates[j].rows, edges, gcols);
      if (rows < best_cand_rows) {
        best_cand_rows = rows;
        best = j;
      }
    }
    // Disconnected join graph: refuse to introduce a cross join.
    if (best < 0) return nullptr;
    if (!compose(best)) return nullptr;
  }
  // All conjuncts must have been consumed (keys or filters).
  if (!remaining.empty()) return nullptr;

  bool identity = true;
  for (int g = 0; g < total; g++) {
    if (map[g] != g) {
      identity = false;
      break;
    }
  }
  if (identity) return cur;
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  exprs.reserve(total);
  names.reserve(total);
  for (int g = 0; g < total; g++) {
    if (map[g] < 0) return nullptr;
    const Field& f = root->output_schema.field(g);
    exprs.push_back(std::make_shared<ColumnRefExpr>(map[g], f.type, f.name));
    names.push_back(f.name);
  }
  return plan::Project(cur, std::move(exprs), std::move(names));
}

PlanPtr ReorderPass(const PlanPtr& node) {
  if (IsClusterInterior(*node)) {
    PlanPtr reordered = TryReorderCluster(node);
    if (reordered != nullptr) return reordered;
  }
  PlanPtr copy = CloneShallow(node);
  for (PlanPtr& child : copy->children) child = ReorderPass(child);
  return copy;
}

// ---------------------------------------------------------------------------
// Pass 4: column pruning
// ---------------------------------------------------------------------------

/// Result of pruning one subtree: the rewritten plan, whose output is the
/// retained subset of the original columns in their original relative
/// order, plus the old-index → new-index mapping (-1 = dropped). A null
/// plan means the subtree could not be rewritten and the caller must keep
/// the original plan.
struct Pruned {
  PlanPtr plan;
  std::vector<int> map;
};

Pruned PruneFail() { return {nullptr, {}}; }

std::vector<int> IdentityMap(int w) {
  std::vector<int> m(w);
  for (int i = 0; i < w; i++) m[i] = i;
  return m;
}

/// Adds `e`'s column references to `req`; false on an out-of-range ref.
bool MarkRefs(const ExprPtr& e, std::vector<bool>* req) {
  if (e == nullptr) return true;
  for (int c : ReferencedColumns(*e)) {
    if (c < 0 || c >= static_cast<int>(req->size())) return false;
    (*req)[c] = true;
  }
  return true;
}

/// Top-down required-columns analysis: rewrites the subtree so only the
/// columns in `req` (plus whatever the subtree itself needs — predicates,
/// join keys, group keys) survive. Demand originates at Projects and
/// Aggregates that drop columns; the narrowing lands as smaller
/// scan_columns on kDeltaScan leaves and as trivial Projects above
/// in-memory kScan leaves, shrinking the rows that flow through hash
/// builds, sorts, and spills. Structure-preserving otherwise: no Project
/// is inserted anywhere but directly above a leaf, so Sort→Limit and
/// other order-sensitive adjacencies stay intact.
Pruned PruneTo(const PlanPtr& node, std::vector<bool> req) {
  int w = node->output_schema.num_fields();
  if (static_cast<int>(req.size()) != w) return PruneFail();
  switch (node->kind) {
    case PlanKind::kScan: {
      std::vector<int> retained;
      for (int i = 0; i < w; i++) {
        if (req[i]) retained.push_back(i);
      }
      // A zero-column scan is not expressible; keep one for row count.
      if (retained.empty()) retained.push_back(0);
      if (static_cast<int>(retained.size()) == w) {
        return {node, IdentityMap(w)};
      }
      std::vector<int> map(w, -1);
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (size_t k = 0; k < retained.size(); k++) {
        const Field& f = node->output_schema.field(retained[k]);
        map[retained[k]] = static_cast<int>(k);
        exprs.push_back(
            std::make_shared<ColumnRefExpr>(retained[k], f.type, f.name));
        names.push_back(f.name);
      }
      return {plan::Project(node, std::move(exprs), std::move(names)),
              std::move(map)};
    }
    case PlanKind::kDeltaScan: {
      // The scan predicate is evaluated inside the scan, so its columns
      // must stay in the projection.
      if (!MarkRefs(node->scan_predicate, &req)) return PruneFail();
      std::vector<int> retained;
      for (int i = 0; i < w; i++) {
        if (req[i]) retained.push_back(i);
      }
      if (retained.empty()) retained.push_back(0);
      if (static_cast<int>(retained.size()) == w) {
        return {node, IdentityMap(w)};
      }
      std::vector<int> map(w, -1);
      std::vector<int> cols;  // absolute table columns
      for (size_t k = 0; k < retained.size(); k++) {
        map[retained[k]] = static_cast<int>(k);
        cols.push_back(node->scan_columns.empty()
                           ? retained[k]
                           : node->scan_columns[retained[k]]);
      }
      ExprPtr pred = nullptr;
      if (node->scan_predicate != nullptr) {
        pred = RemapColumns(node->scan_predicate, map);
        if (pred == nullptr) return PruneFail();
      }
      // Rebuilding through the builder refreshes the attached TableStats
      // for the narrower projection.
      return {plan::DeltaScan(node->store, node->snapshot, std::move(cols),
                              std::move(pred), node->scan_io),
              std::move(map)};
    }
    case PlanKind::kFilter: {
      if (!MarkRefs(node->predicate, &req)) return PruneFail();
      Pruned child = PruneTo(node->children[0], std::move(req));
      if (child.plan == nullptr) return PruneFail();
      ExprPtr pred = RemapColumns(node->predicate, child.map);
      if (pred == nullptr) return PruneFail();
      return {plan::Filter(child.plan, std::move(pred)),
              std::move(child.map)};
    }
    case PlanKind::kProject: {
      std::vector<int> retained;
      for (int i = 0; i < w; i++) {
        if (req[i]) retained.push_back(i);
      }
      if (retained.empty()) retained.push_back(0);
      int cw = node->children[0]->output_schema.num_fields();
      std::vector<bool> creq(cw, false);
      for (int i : retained) {
        if (!MarkRefs(node->exprs[i], &creq)) return PruneFail();
      }
      Pruned child = PruneTo(node->children[0], std::move(creq));
      if (child.plan == nullptr) return PruneFail();
      std::vector<int> map(w, -1);
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (size_t k = 0; k < retained.size(); k++) {
        ExprPtr e = RemapColumns(node->exprs[retained[k]], child.map);
        if (e == nullptr) return PruneFail();
        map[retained[k]] = static_cast<int>(k);
        exprs.push_back(std::move(e));
        names.push_back(node->names[retained[k]]);
      }
      return {plan::Project(child.plan, std::move(exprs), std::move(names)),
              std::move(map)};
    }
    case PlanKind::kAggregate: {
      // Group keys define the semantics and are always kept; only unused
      // aggregate outputs are dropped.
      int nk = static_cast<int>(node->group_keys.size());
      std::vector<int> kept_aggs;
      for (size_t j = 0; j < node->aggregates.size(); j++) {
        if (req[nk + static_cast<int>(j)]) {
          kept_aggs.push_back(static_cast<int>(j));
        }
      }
      if (nk == 0 && kept_aggs.empty()) kept_aggs.push_back(0);
      int cw = node->children[0]->output_schema.num_fields();
      std::vector<bool> creq(cw, false);
      for (const ExprPtr& k : node->group_keys) {
        if (!MarkRefs(k, &creq)) return PruneFail();
      }
      for (int j : kept_aggs) {
        if (!MarkRefs(node->aggregates[j].arg, &creq)) return PruneFail();
      }
      Pruned child = PruneTo(node->children[0], std::move(creq));
      if (child.plan == nullptr) return PruneFail();
      std::vector<ExprPtr> keys;
      for (const ExprPtr& k : node->group_keys) {
        ExprPtr e = RemapColumns(k, child.map);
        if (e == nullptr) return PruneFail();
        keys.push_back(std::move(e));
      }
      std::vector<int> map(w, -1);
      for (int i = 0; i < nk; i++) map[i] = i;
      std::vector<AggregateSpec> specs;
      for (size_t k = 0; k < kept_aggs.size(); k++) {
        const AggregateSpec& spec = node->aggregates[kept_aggs[k]];
        ExprPtr arg = nullptr;
        if (spec.arg != nullptr) {
          arg = RemapColumns(spec.arg, child.map);
          if (arg == nullptr) return PruneFail();
        }
        map[nk + kept_aggs[k]] = nk + static_cast<int>(k);
        specs.push_back(AggregateSpec{spec.kind, std::move(arg), spec.name});
      }
      return {plan::Aggregate(child.plan, std::move(keys), node->key_names,
                              std::move(specs)),
              std::move(map)};
    }
    case PlanKind::kJoin: {
      int lw = node->children[0]->output_schema.num_fields();
      int rw = node->children[1]->output_schema.num_fields();
      bool wide = node->join_type == JoinType::kInner ||
                  node->join_type == JoinType::kLeftOuter;
      std::vector<bool> preq(lw, false);
      std::vector<bool> breq(rw, false);
      for (int i = 0; i < w; i++) {
        if (!req[i]) continue;
        if (i < lw) {
          preq[i] = true;
        } else if (wide && i - lw < rw) {
          breq[i - lw] = true;
        } else {
          return PruneFail();
        }
      }
      for (const ExprPtr& k : node->left_keys) {
        if (!MarkRefs(k, &preq)) return PruneFail();
      }
      for (const ExprPtr& k : node->right_keys) {
        if (!MarkRefs(k, &breq)) return PruneFail();
      }
      if (node->residual != nullptr) {
        for (int c : ReferencedColumns(*node->residual)) {
          if (c < 0 || c >= lw + rw) return PruneFail();
          if (c < lw) {
            preq[c] = true;
          } else {
            breq[c - lw] = true;
          }
        }
      }
      Pruned probe = PruneTo(node->children[0], std::move(preq));
      if (probe.plan == nullptr) return PruneFail();
      Pruned build = PruneTo(node->children[1], std::move(breq));
      if (build.plan == nullptr) return PruneFail();
      int plw = probe.plan->output_schema.num_fields();
      std::vector<ExprPtr> lkeys, rkeys;
      for (const ExprPtr& k : node->left_keys) {
        ExprPtr e = RemapColumns(k, probe.map);
        if (e == nullptr) return PruneFail();
        lkeys.push_back(std::move(e));
      }
      for (const ExprPtr& k : node->right_keys) {
        ExprPtr e = RemapColumns(k, build.map);
        if (e == nullptr) return PruneFail();
        rkeys.push_back(std::move(e));
      }
      // Combined [probe cols, build cols] map for the residual and the
      // node's own output.
      std::vector<int> combined(lw + rw, -1);
      for (int i = 0; i < lw; i++) combined[i] = probe.map[i];
      for (int i = 0; i < rw; i++) {
        combined[lw + i] =
            build.map[i] < 0 ? -1 : plw + build.map[i];
      }
      ExprPtr residual = nullptr;
      if (node->residual != nullptr) {
        residual = RemapColumns(node->residual, combined);
        if (residual == nullptr) return PruneFail();
      }
      std::vector<int> map(w, -1);
      for (int i = 0; i < w; i++) map[i] = combined[i];
      return {plan::Join(probe.plan, build.plan, node->join_type,
                         std::move(lkeys), std::move(rkeys),
                         std::move(residual)),
              std::move(map)};
    }
    case PlanKind::kSort: {
      for (const SortKey& k : node->sort_keys) {
        if (!MarkRefs(k.expr, &req)) return PruneFail();
      }
      Pruned child = PruneTo(node->children[0], std::move(req));
      if (child.plan == nullptr) return PruneFail();
      std::vector<SortKey> keys;
      for (const SortKey& k : node->sort_keys) {
        ExprPtr e = RemapColumns(k.expr, child.map);
        if (e == nullptr) return PruneFail();
        keys.push_back(SortKey{std::move(e), k.ascending, k.nulls_first});
      }
      return {plan::Sort(child.plan, std::move(keys)), std::move(child.map)};
    }
    case PlanKind::kLimit: {
      Pruned child = PruneTo(node->children[0], std::move(req));
      if (child.plan == nullptr) return PruneFail();
      return {plan::Limit(child.plan, node->limit), std::move(child.map)};
    }
  }
  return PruneFail();
}

/// Entry point: the root's full output is required, so pruning only
/// triggers below Projects/Aggregates that drop columns. Falls back to
/// the original plan if any subtree fails to rewrite.
PlanPtr PruneColumns(const PlanPtr& node) {
  int w = node->output_schema.num_fields();
  Pruned out = PruneTo(node, std::vector<bool>(w, true));
  if (out.plan == nullptr) return node;
  // Full demand at the root must retain every column in place.
  for (int i = 0; i < w; i++) {
    if (out.map[i] != i) return node;
  }
  return out.plan;
}

}  // namespace

plan::PlanPtr Optimize(const plan::PlanPtr& p, const OptimizerOptions& options) {
  if (p == nullptr) return p;
  PlanPtr out = p;
  if (options.filter_pushdown) out = PushDown(out, {});
  if (options.semi_join_reduction) out = SinkSemiPass(out);
  if (options.join_reorder) out = ReorderPass(out);
  // Reordering re-surfaces Filters (leaf conjuncts, late-covered
  // residuals); a second pushdown sinks them into the reshaped tree.
  if (options.filter_pushdown) out = PushDown(out, {});
  if (options.prune_scan_columns) out = PruneColumns(out);
  return out;
}

}  // namespace opt
}  // namespace photon
