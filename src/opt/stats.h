#ifndef PHOTON_OPT_STATS_H_
#define PHOTON_OPT_STATS_H_

#include <vector>

#include "plan/logical_plan.h"

namespace photon {
namespace opt {

/// Derived per-column estimate flowing bottom-up through EstimatePlan.
struct ColEstimate {
  double ndv = -1;  // estimated distinct non-null values; < 0 = unknown
  double null_frac = 0;
  bool has_min_max = false;
  Value min;
  Value max;
};

/// Derived estimate for one plan node's output.
struct PlanEstimate {
  double rows = 0;
  std::vector<ColEstimate> cols;  // aligned with the node's output schema
};

/// System R-style bottom-up cardinality estimation. Leaf row counts come
/// from the scan itself (Table::num_rows / snapshot row counts); NDV and
/// min/max come from attached TableStats (Delta zone maps + NDV sketches
/// for kDeltaScan, ComputeTableStats for in-memory leaves). Unknown inputs
/// degrade to textbook default selectivities rather than failing.
PlanEstimate EstimatePlan(const plan::PlanNode& node);

/// Fraction of `input` rows satisfying `pred`, clamped to [1e-7, 1].
double EstimateSelectivity(const Expr& pred, const PlanEstimate& input);

}  // namespace opt
}  // namespace photon

#endif  // PHOTON_OPT_STATS_H_
