#include "opt/expr_rewrite.h"

#include <algorithm>

namespace photon {
namespace opt {

ExprPtr RewriteColumns(
    const ExprPtr& e,
    const std::function<ExprPtr(const ColumnRefExpr&)>& fn) {
  if (e == nullptr) return nullptr;
  if (const auto* col = dynamic_cast<const ColumnRefExpr*>(e.get())) {
    return fn(*col);
  }
  if (dynamic_cast<const LiteralExpr*>(e.get()) != nullptr) return e;

  auto rewrite = [&](const ExprPtr& child) {
    return RewriteColumns(child, fn);
  };

  if (const auto* a = dynamic_cast<const ArithmeticExpr*>(e.get())) {
    std::vector<ExprPtr> kids = a->children();
    ExprPtr l = rewrite(kids[0]), r = rewrite(kids[1]);
    if (l == nullptr || r == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(
        std::make_shared<ArithmeticExpr>(a->op(), l, r, a->type()));
  }
  if (const auto* c = dynamic_cast<const ComparisonExpr*>(e.get())) {
    std::vector<ExprPtr> kids = c->children();
    ExprPtr l = rewrite(kids[0]), r = rewrite(kids[1]);
    if (l == nullptr || r == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(
        std::make_shared<ComparisonExpr>(c->op(), l, r));
  }
  if (dynamic_cast<const BetweenExpr*>(e.get()) != nullptr) {
    std::vector<ExprPtr> kids = e->children();
    ExprPtr v = rewrite(kids[0]), lo = rewrite(kids[1]), hi = rewrite(kids[2]);
    if (v == nullptr || lo == nullptr || hi == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(
        std::make_shared<BetweenExpr>(v, lo, hi));
  }
  if (const auto* b = dynamic_cast<const BooleanExpr*>(e.get())) {
    std::vector<ExprPtr> kids = b->children();
    ExprPtr l = rewrite(kids[0]), r = rewrite(kids[1]);
    if (l == nullptr || r == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(
        std::make_shared<BooleanExpr>(b->op(), l, r));
  }
  if (dynamic_cast<const NotExpr*>(e.get()) != nullptr) {
    ExprPtr c = rewrite(e->children()[0]);
    if (c == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(std::make_shared<NotExpr>(c));
  }
  if (const auto* isn = dynamic_cast<const IsNullExpr*>(e.get())) {
    ExprPtr c = rewrite(isn->children()[0]);
    if (c == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(
        std::make_shared<IsNullExpr>(c, isn->negated()));
  }
  if (dynamic_cast<const CastExpr*>(e.get()) != nullptr) {
    ExprPtr c = rewrite(e->children()[0]);
    if (c == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(
        std::make_shared<CastExpr>(c, e->type()));
  }
  if (const auto* in = dynamic_cast<const InListExpr*>(e.get())) {
    ExprPtr v = rewrite(in->children()[0]);
    if (v == nullptr) return nullptr;
    return std::static_pointer_cast<Expr>(
        std::make_shared<InListExpr>(v, in->list()));
  }
  if (const auto* call = dynamic_cast<const CallExpr*>(e.get())) {
    std::vector<ExprPtr> args;
    args.reserve(call->args().size());
    for (const ExprPtr& arg : call->args()) {
      ExprPtr a = rewrite(arg);
      if (a == nullptr) return nullptr;
      args.push_back(std::move(a));
    }
    return std::static_pointer_cast<Expr>(
        std::make_shared<CallExpr>(call->name(), std::move(args), e->type()));
  }
  if (const auto* cw = dynamic_cast<const CaseWhenExpr*>(e.get())) {
    std::vector<std::pair<ExprPtr, ExprPtr>> branches;
    branches.reserve(cw->branches().size());
    for (const auto& [when, then] : cw->branches()) {
      ExprPtr w = rewrite(when), t = rewrite(then);
      if (w == nullptr || t == nullptr) return nullptr;
      branches.emplace_back(std::move(w), std::move(t));
    }
    ExprPtr else_expr = nullptr;
    if (cw->else_expr() != nullptr) {
      else_expr = rewrite(cw->else_expr());
      if (else_expr == nullptr) return nullptr;
    }
    return std::static_pointer_cast<Expr>(std::make_shared<CaseWhenExpr>(
        std::move(branches), std::move(else_expr), e->type()));
  }
  // Unknown expression kind: refuse to rewrite.
  return nullptr;
}

ExprPtr RemapColumns(const ExprPtr& e, const std::vector<int>& map) {
  return RewriteColumns(e, [&](const ColumnRefExpr& col) -> ExprPtr {
    if (col.index() < 0 || col.index() >= static_cast<int>(map.size()) ||
        map[col.index()] < 0) {
      return nullptr;
    }
    return std::make_shared<ColumnRefExpr>(map[col.index()], col.type(),
                                           col.name());
  });
}

ExprPtr ShiftColumns(const ExprPtr& e, int delta) {
  return RewriteColumns(e, [&](const ColumnRefExpr& col) -> ExprPtr {
    if (col.index() + delta < 0) return nullptr;
    return std::make_shared<ColumnRefExpr>(col.index() + delta, col.type(),
                                           col.name());
  });
}

ExprPtr SubstituteColumns(const ExprPtr& e, const std::vector<ExprPtr>& repl) {
  return RewriteColumns(e, [&](const ColumnRefExpr& col) -> ExprPtr {
    if (col.index() < 0 || col.index() >= static_cast<int>(repl.size())) {
      return nullptr;
    }
    return repl[col.index()];
  });
}

namespace {
void CollectColumns(const Expr& e, std::vector<int>* out) {
  if (const auto* col = dynamic_cast<const ColumnRefExpr*>(&e)) {
    out->push_back(col->index());
    return;
  }
  for (const ExprPtr& child : e.children()) {
    if (child != nullptr) CollectColumns(*child, out);
  }
}
}  // namespace

std::vector<int> ReferencedColumns(const Expr& e) {
  std::vector<int> out;
  CollectColumns(e, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  const auto* b = dynamic_cast<const BooleanExpr*>(e.get());
  if (b != nullptr && b->op() == BoolOp::kAnd) {
    std::vector<ExprPtr> kids = b->children();
    SplitConjuncts(kids[0], out);
    SplitConjuncts(kids[1], out);
    return;
  }
  out->push_back(e);
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out = nullptr;
  for (const ExprPtr& c : conjuncts) {
    if (c == nullptr) continue;
    out = out == nullptr
              ? c
              : std::static_pointer_cast<Expr>(
                    std::make_shared<BooleanExpr>(BoolOp::kAnd, out, c));
  }
  return out;
}

}  // namespace opt
}  // namespace photon
