#ifndef PHOTON_OPT_OPTIMIZER_H_
#define PHOTON_OPT_OPTIMIZER_H_

#include "plan/logical_plan.h"

namespace photon {
namespace opt {

/// Which rewrite families run. All on by default; benches and tests toggle
/// individual rules to isolate their effect.
struct OptimizerOptions {
  bool filter_pushdown = true;
  bool semi_join_reduction = true;
  bool join_reorder = true;
  bool prune_scan_columns = true;
};

/// Rewrites a logical plan into a semantically identical, cheaper one:
///   1. filter pushdown — conjuncts sink through projects, aggregates,
///      joins, and sorts, merging into DeltaScan predicates where they feed
///      zone-map file/row-group skipping and the scan's row-level filter;
///   2. semi-join reduction — IN/EXISTS-derived semi (and anti) joins sink
///      to the smallest input that supplies their keys;
///   3. cost-based join reordering — maximal inner-join clusters are
///      flattened to a conjunct graph and recomposed greedily by estimated
///      cardinality (src/opt/stats), picking build/probe sides so the
///      smaller input builds the hash table;
///   4. scan column pruning — projections narrow DeltaScan column sets.
///
/// Pure and deterministic: the input plan is never mutated (rewrites build
/// new nodes; untouched subtrees are shared), and equal inputs produce
/// equal outputs — the differ relies on both to run optimizer-on vs
/// optimizer-off over the same PlanPtr as differential modes.
///
/// Every rule degrades to "keep the original shape" when a precondition
/// fails (unknown expression kind, non-equi edge, disconnected join graph),
/// so Optimize never errors.
plan::PlanPtr Optimize(const plan::PlanPtr& p,
                       const OptimizerOptions& options = {});

}  // namespace opt
}  // namespace photon

#endif  // PHOTON_OPT_OPTIMIZER_H_
