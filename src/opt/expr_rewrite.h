#ifndef PHOTON_OPT_EXPR_REWRITE_H_
#define PHOTON_OPT_EXPR_REWRITE_H_

#include <functional>
#include <vector>

#include "expr/expr.h"

namespace photon {
namespace opt {

/// Rebuilds `e` with every column reference replaced by `fn(ref)`. Returns
/// nullptr when `fn` returns nullptr for any reference or the tree contains
/// an expression kind the rewriter doesn't know how to copy — callers must
/// treat nullptr as "rule does not apply", never as an error, so unknown
/// expression kinds degrade to skipped rewrites instead of wrong plans.
ExprPtr RewriteColumns(
    const ExprPtr& e,
    const std::function<ExprPtr(const ColumnRefExpr&)>& fn);

/// Remaps column indices: ref i becomes map[i], keeping type and name.
/// Out-of-range refs and negative map entries fail the rewrite (nullptr).
ExprPtr RemapColumns(const ExprPtr& e, const std::vector<int>& map);

/// Shifts every column index by `delta` (e.g. join-side re-basing).
ExprPtr ShiftColumns(const ExprPtr& e, int delta);

/// Replaces ref i with a copy of repl[i]; a nullptr entry marks a column
/// that must not be referenced (fails the rewrite).
ExprPtr SubstituteColumns(const ExprPtr& e, const std::vector<ExprPtr>& repl);

/// All column indices referenced by `e`, sorted and deduplicated.
std::vector<int> ReferencedColumns(const Expr& e);

/// Flattens nested ANDs into a conjunct list (in evaluation order).
void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

/// Left-deep AND of `conjuncts`; nullptr when empty, the sole element when
/// singleton.
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

}  // namespace opt
}  // namespace photon

#endif  // PHOTON_OPT_EXPR_REWRITE_H_
