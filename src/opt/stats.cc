#include "opt/stats.h"

#include <algorithm>
#include <cmath>

#include "opt/expr_rewrite.h"

namespace photon {
namespace opt {
namespace {

constexpr double kMinSelectivity = 1e-7;
constexpr double kDefaultSelectivity = 0.25;  // unrecognized predicate shape
constexpr double kDefaultEqSelectivity = 0.1;
constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

double Clamp01(double s) {
  return std::max(kMinSelectivity, std::min(1.0, s));
}

/// Numeric image of a value for range interpolation. Strings have no
/// useful linear image; they fall back to default selectivities.
bool ValueToDouble(const Value& v, const DataType& type, double* out) {
  if (v.is_null()) return false;
  switch (type.id()) {
    case TypeId::kBoolean:
      *out = v.boolean() ? 1 : 0;
      return true;
    case TypeId::kInt32:
    case TypeId::kDate32:
      *out = static_cast<double>(v.i32());
      return true;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      *out = static_cast<double>(v.i64());
      return true;
    case TypeId::kFloat64:
      *out = v.f64();
      return true;
    case TypeId::kDecimal128:
      *out = static_cast<double>(v.decimal().value()) *
             std::pow(10.0, -type.scale());
      return true;
    case TypeId::kString:
      return false;
  }
  return false;
}

const ColEstimate* ColOf(const PlanEstimate& input, const Expr& e,
                         const ColumnRefExpr** ref_out) {
  const auto* col = dynamic_cast<const ColumnRefExpr*>(&e);
  if (col == nullptr || col->index() < 0 ||
      col->index() >= static_cast<int>(input.cols.size())) {
    return nullptr;
  }
  *ref_out = col;
  return &input.cols[col->index()];
}

/// Selectivity of `col op lit` using NDV for equality and min/max linear
/// interpolation for ranges.
double ComparisonSelectivity(CmpOp op, const ColumnRefExpr& col,
                             const ColEstimate& cs, const Value& lit,
                             const DataType& lit_type) {
  double not_null = 1.0 - cs.null_frac;
  if (op == CmpOp::kEq) {
    double eq = cs.ndv > 0 ? 1.0 / cs.ndv : kDefaultEqSelectivity;
    // Out-of-range literal provably matches nothing.
    if (cs.has_min_max && !lit.is_null() && lit.is_string() == cs.min.is_string() &&
        lit.is_date() == cs.min.is_date() &&
        (lit.Compare(cs.min) < 0 || lit.Compare(cs.max) > 0)) {
      return kMinSelectivity;
    }
    return Clamp01(eq * not_null);
  }
  if (op == CmpOp::kNe) {
    double eq = cs.ndv > 0 ? 1.0 / cs.ndv : kDefaultEqSelectivity;
    return Clamp01((1.0 - eq) * not_null);
  }
  double lo, hi, v;
  if (!cs.has_min_max || !ValueToDouble(cs.min, col.type(), &lo) ||
      !ValueToDouble(cs.max, col.type(), &hi) ||
      !ValueToDouble(lit, lit_type, &v) || hi <= lo) {
    return Clamp01(kDefaultRangeSelectivity * not_null);
  }
  double frac_below = (v - lo) / (hi - lo);  // P(col < v), roughly
  double s;
  switch (op) {
    case CmpOp::kLt:
    case CmpOp::kLe:
      s = frac_below;
      break;
    case CmpOp::kGt:
    case CmpOp::kGe:
      s = 1.0 - frac_below;
      break;
    default:
      s = kDefaultRangeSelectivity;
      break;
  }
  return Clamp01(std::max(0.0, std::min(1.0, s)) * not_null);
}

double ConjunctSelectivity(const Expr& pred, const PlanEstimate& input) {
  if (const auto* cmp = dynamic_cast<const ComparisonExpr*>(&pred)) {
    std::vector<ExprPtr> kids = cmp->children();
    const ColumnRefExpr* col = nullptr;
    const ColEstimate* cs = ColOf(input, *kids[0], &col);
    const auto* lit = dynamic_cast<const LiteralExpr*>(kids[1].get());
    CmpOp op = cmp->op();
    if (cs == nullptr || lit == nullptr) {
      // Mirror literal OP col.
      cs = ColOf(input, *kids[1], &col);
      lit = dynamic_cast<const LiteralExpr*>(kids[0].get());
      switch (op) {
        case CmpOp::kLt: op = CmpOp::kGt; break;
        case CmpOp::kLe: op = CmpOp::kGe; break;
        case CmpOp::kGt: op = CmpOp::kLt; break;
        case CmpOp::kGe: op = CmpOp::kLe; break;
        default: break;
      }
    }
    if (cs == nullptr || lit == nullptr || lit->value().is_null()) {
      return op == CmpOp::kEq ? kDefaultEqSelectivity
                              : kDefaultRangeSelectivity;
    }
    return ComparisonSelectivity(op, *col, *cs, lit->value(), lit->type());
  }
  if (const auto* between = dynamic_cast<const BetweenExpr*>(&pred)) {
    std::vector<ExprPtr> kids = between->children();
    double ge = ConjunctSelectivity(ComparisonExpr(CmpOp::kGe, kids[0], kids[1]),
                                    input);
    double le = ConjunctSelectivity(ComparisonExpr(CmpOp::kLe, kids[0], kids[2]),
                                    input);
    // A range is one interval, not two independent conditions; the sum form
    // avoids the double-counting that a plain product would give.
    return Clamp01(std::max(kMinSelectivity, ge + le - 1.0));
  }
  if (const auto* b = dynamic_cast<const BooleanExpr*>(&pred)) {
    std::vector<ExprPtr> kids = b->children();
    double l = EstimateSelectivity(*kids[0], input);
    double r = EstimateSelectivity(*kids[1], input);
    if (b->op() == BoolOp::kAnd) return Clamp01(l * r);
    return Clamp01(l + r - l * r);
  }
  if (const auto* n = dynamic_cast<const NotExpr*>(&pred)) {
    return Clamp01(1.0 - EstimateSelectivity(*n->children()[0], input));
  }
  if (const auto* isn = dynamic_cast<const IsNullExpr*>(&pred)) {
    const ColumnRefExpr* col = nullptr;
    const ColEstimate* cs = ColOf(input, *isn->children()[0], &col);
    double null_frac = cs != nullptr ? cs->null_frac : 0.1;
    return Clamp01(isn->negated() ? 1.0 - null_frac : null_frac);
  }
  if (const auto* in = dynamic_cast<const InListExpr*>(&pred)) {
    const ColumnRefExpr* col = nullptr;
    const ColEstimate* cs = ColOf(input, *in->children()[0], &col);
    double eq = cs != nullptr && cs->ndv > 0 ? 1.0 / cs->ndv
                                             : kDefaultEqSelectivity;
    return Clamp01(eq * static_cast<double>(in->list().size()));
  }
  if (dynamic_cast<const LiteralExpr*>(&pred) != nullptr) {
    const auto& lit = static_cast<const LiteralExpr&>(pred);
    if (lit.value().is_null()) return kMinSelectivity;
    if (lit.type().id() == TypeId::kBoolean) {
      return lit.value().boolean() ? 1.0 : kMinSelectivity;
    }
  }
  return kDefaultSelectivity;
}

ColEstimate ScaleCol(const ColEstimate& in, double out_rows) {
  ColEstimate out = in;
  if (out.ndv >= 0) out.ndv = std::min(out.ndv, std::max(out_rows, 0.0));
  return out;
}

double KeyPairSelectivity(const ColEstimate* l, const ColEstimate* r,
                          double l_rows, double r_rows) {
  double l_ndv = l != nullptr && l->ndv > 0 ? l->ndv : -1;
  double r_ndv = r != nullptr && r->ndv > 0 ? r->ndv : -1;
  double denom;
  if (l_ndv > 0 && r_ndv > 0) {
    denom = std::max(l_ndv, r_ndv);
  } else if (l_ndv > 0) {
    denom = l_ndv;
  } else if (r_ndv > 0) {
    denom = r_ndv;
  } else {
    // Unknown on both sides: assume the key is near-unique on the larger
    // input (the FK-join shape), which keeps chains from exploding.
    denom = std::max({l_rows, r_rows, 1.0});
  }
  return 1.0 / std::max(denom, 1.0);
}

const ColEstimate* KeyEstimate(const PlanEstimate& side, const ExprPtr& key) {
  const ColumnRefExpr* ref = nullptr;
  return key != nullptr ? ColOf(side, *key, &ref) : nullptr;
}

}  // namespace

double EstimateSelectivity(const Expr& pred, const PlanEstimate& input) {
  return Clamp01(ConjunctSelectivity(pred, input));
}

PlanEstimate EstimatePlan(const plan::PlanNode& node) {
  using plan::PlanKind;
  PlanEstimate out;
  switch (node.kind) {
    case PlanKind::kScan: {
      out.rows = node.table != nullptr
                     ? static_cast<double>(node.table->num_rows())
                     : 0;
      out.cols.resize(node.output_schema.num_fields());
      if (node.stats != nullptr && static_cast<int>(node.stats->columns.size()) ==
                                       node.output_schema.num_fields()) {
        for (size_t c = 0; c < node.stats->columns.size(); c++) {
          const plan::ColumnStats& s = node.stats->columns[c];
          out.cols[c].ndv = s.ndv;
          out.cols[c].null_frac =
              out.rows > 0 ? static_cast<double>(s.null_count) / out.rows : 0;
          out.cols[c].has_min_max = s.has_min_max;
          out.cols[c].min = s.min;
          out.cols[c].max = s.max;
        }
      }
      return out;
    }
    case PlanKind::kDeltaScan: {
      out.rows = static_cast<double>(node.snapshot.num_rows());
      out.cols.resize(node.output_schema.num_fields());
      if (node.stats != nullptr && static_cast<int>(node.stats->columns.size()) ==
                                       node.output_schema.num_fields()) {
        for (size_t c = 0; c < node.stats->columns.size(); c++) {
          const plan::ColumnStats& s = node.stats->columns[c];
          out.cols[c].ndv = s.ndv;
          out.cols[c].null_frac =
              out.rows > 0 ? static_cast<double>(s.null_count) / out.rows : 0;
          out.cols[c].has_min_max = s.has_min_max;
          out.cols[c].min = s.min;
          out.cols[c].max = s.max;
        }
      }
      if (node.scan_predicate != nullptr) {
        double s = EstimateSelectivity(*node.scan_predicate, out);
        out.rows *= s;
        for (ColEstimate& c : out.cols) c = ScaleCol(c, out.rows);
      }
      return out;
    }
    case PlanKind::kFilter: {
      PlanEstimate in = EstimatePlan(*node.children[0]);
      double s = node.predicate != nullptr
                     ? EstimateSelectivity(*node.predicate, in)
                     : 1.0;
      out.rows = in.rows * s;
      out.cols = std::move(in.cols);
      for (ColEstimate& c : out.cols) c = ScaleCol(c, out.rows);
      return out;
    }
    case PlanKind::kProject: {
      PlanEstimate in = EstimatePlan(*node.children[0]);
      out.rows = in.rows;
      out.cols.resize(node.exprs.size());
      for (size_t i = 0; i < node.exprs.size(); i++) {
        if (const auto* ref =
                dynamic_cast<const ColumnRefExpr*>(node.exprs[i].get())) {
          if (ref->index() >= 0 &&
              ref->index() < static_cast<int>(in.cols.size())) {
            out.cols[i] = in.cols[ref->index()];
          }
        } else if (const auto* lit = dynamic_cast<const LiteralExpr*>(
                       node.exprs[i].get())) {
          out.cols[i].ndv = 1;
          out.cols[i].null_frac = lit->value().is_null() ? 1.0 : 0.0;
        }
      }
      return out;
    }
    case PlanKind::kAggregate: {
      PlanEstimate in = EstimatePlan(*node.children[0]);
      double groups = 1;
      bool any_unknown = false;
      for (const ExprPtr& key : node.group_keys) {
        const ColEstimate* ks = KeyEstimate(in, key);
        if (ks != nullptr && ks->ndv >= 0) {
          groups *= std::max(1.0, ks->ndv + (ks->null_frac > 0 ? 1 : 0));
        } else {
          any_unknown = true;
        }
      }
      if (node.group_keys.empty()) {
        out.rows = 1;
      } else if (any_unknown) {
        // Square-root rule for unknown key cardinality.
        out.rows = std::min(in.rows, std::max(groups, std::sqrt(in.rows)));
      } else {
        out.rows = std::min(in.rows, groups);
      }
      out.cols.resize(node.output_schema.num_fields());
      for (size_t i = 0; i < node.group_keys.size(); i++) {
        const ColEstimate* ks = KeyEstimate(in, node.group_keys[i]);
        if (ks != nullptr) out.cols[i] = ScaleCol(*ks, out.rows);
      }
      return out;
    }
    case PlanKind::kJoin: {
      PlanEstimate l = EstimatePlan(*node.children[0]);
      PlanEstimate r = EstimatePlan(*node.children[1]);
      double key_sel = 1.0;
      for (size_t k = 0; k < node.left_keys.size(); k++) {
        key_sel *= KeyPairSelectivity(KeyEstimate(l, node.left_keys[k]),
                                      KeyEstimate(r, node.right_keys[k]),
                                      l.rows, r.rows);
      }
      double inner = l.rows * r.rows * key_sel;
      if (node.residual != nullptr) {
        inner *= kDefaultSelectivity;
      }
      switch (node.join_type) {
        case JoinType::kInner:
          out.rows = inner;
          break;
        case JoinType::kLeftOuter:
          out.rows = std::max(inner, l.rows);
          break;
        case JoinType::kLeftSemi: {
          double match = r.rows > 0 ? std::min(1.0, inner / std::max(l.rows, 1.0))
                                    : 0.0;
          out.rows = l.rows * std::max(std::min(match, 1.0), 0.0);
          break;
        }
        case JoinType::kLeftAnti: {
          double match = r.rows > 0 ? std::min(1.0, inner / std::max(l.rows, 1.0))
                                    : 0.0;
          out.rows = l.rows * (1.0 - std::max(std::min(match, 1.0), 0.0));
          break;
        }
      }
      out.cols.reserve(node.output_schema.num_fields());
      for (const ColEstimate& c : l.cols) out.cols.push_back(ScaleCol(c, out.rows));
      if (node.join_type == JoinType::kInner ||
          node.join_type == JoinType::kLeftOuter) {
        for (const ColEstimate& c : r.cols) {
          out.cols.push_back(ScaleCol(c, out.rows));
        }
      }
      out.cols.resize(node.output_schema.num_fields());
      return out;
    }
    case PlanKind::kSort: {
      out = EstimatePlan(*node.children[0]);
      return out;
    }
    case PlanKind::kLimit: {
      out = EstimatePlan(*node.children[0]);
      out.rows = std::min(out.rows, static_cast<double>(node.limit));
      for (ColEstimate& c : out.cols) c = ScaleCol(c, out.rows);
      return out;
    }
  }
  return out;
}

}  // namespace opt
}  // namespace photon
