#include "exec/driver.h"

#include <chrono>
#include <utility>

#include "expr/fusion.h"
#include "obs/trace.h"
#include "opt/optimizer.h"
#include "ops/file_scan.h"
#include "ops/filter.h"
#include "ops/fused_filter_project.h"
#include "ops/hash_join.h"
#include "ops/limit.h"
#include "ops/project.h"
#include "ops/scan.h"
#include "ops/sort.h"

namespace photon {
namespace exec {
namespace {

int64_t NowNs() { return obs::WallNowNs(); }

// Morsel granularity: fixed unit counts, NOT derived from the thread
// count, so the decomposition — and with it every per-morsel partial
// result — is identical at any parallelism.
constexpr int kMorselBatches = 8;   // table batches per morsel
constexpr int kFilesPerMorsel = 2;  // scan files per morsel

// Process-wide counters: task groups and shuffle ids must be unique
// across *all* Driver instances. Concurrent sessions each construct a
// driver over one shared MemoryManager and object store; colliding group
// ids would put two queries' consumers in one spill-victim set (a
// cross-thread Spill() race), and colliding shuffle ids would mix their
// blocks.
std::atomic<int64_t> g_next_task_group{1};
std::atomic<int64_t> g_next_shuffle_id{0};

int64_t NextTaskGroup() {
  return g_next_task_group.fetch_add(1, std::memory_order_relaxed);
}

/// Cancellation checkpoint helper: OK when no token is attached.
Status CheckAlive(const ExecContext& ctx) {
  return ctx.control != nullptr ? ctx.control->Check() : Status::OK();
}

/// Deletes a shuffle's blocks on scope exit: a failed map or reduce task
/// must not leak shuffle data in the object store.
class ShuffleGuard {
 public:
  explicit ShuffleGuard(std::string id) : id_(std::move(id)) {}
  ~ShuffleGuard() { DeleteShuffle(id_); }
  ShuffleGuard(const ShuffleGuard&) = delete;
  ShuffleGuard& operator=(const ShuffleGuard&) = delete;

 private:
  std::string id_;
};

/// Appends compacted copies of every batch of `src` to `dst`.
void AppendTable(const Table& src, Table* dst) {
  for (int b = 0; b < src.num_batches(); b++) {
    if (src.batch(b).num_active() == 0) continue;
    dst->AppendBatch(CompactBatch(src.batch(b)));
  }
}

/// Profile-node label for an in-fragment (streaming) plan node.
const char* ChainNodeName(plan::PlanKind kind) {
  switch (kind) {
    case plan::PlanKind::kFilter:
      return "Filter";
    case plan::PlanKind::kProject:
      return "Project";
    case plan::PlanKind::kJoin:
      return "HashJoin";
    default:
      return "Node";
  }
}

bool IsFusable(plan::PlanKind kind) {
  return kind == plan::PlanKind::kFilter || kind == plan::PlanKind::kProject;
}

FusedStage StageOf(const plan::PlanNode& node) {
  FusedStage stage;
  stage.is_filter = node.kind == plan::PlanKind::kFilter;
  if (stage.is_filter) {
    stage.predicate = node.predicate;
  } else {
    stage.exprs = node.exprs;
    stage.names = node.names;
  }
  return stage;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parallel plan execution
// ---------------------------------------------------------------------------

struct Driver::RunState {
  ExecContext ctx;
  std::vector<StageInfo>* stages = nullptr;
  /// Null = no profile bookkeeping this run (the stages/profile-off fast
  /// path); set when either a stage list or a QueryProfile was requested.
  obs::ProfileBuilder* profile = nullptr;
  int next_stage_id = 0;
};

/// A fragment compiled for morsel execution: the cut plus everything the
/// per-morsel operator chains share — the source table or pruned file
/// list, and one immutable join-build state per in-fragment join.
struct Driver::StagedFragment {
  plan::FragmentCut cut;

  const Table* source_table = nullptr;  // kTable / kStage leaf
  std::unique_ptr<Table> staged;        // owns a materialized kStage input
  std::vector<std::string> files;       // kDeltaFiles leaf, post-pruning
  int64_t files_pruned = 0;

  /// One physical operator per group: a [begin, end) root-first range of
  /// cut.nodes. `unit` non-null = the range executes as one
  /// FusedFilterProjectOperator (compiled once here, shared immutably by
  /// every task's FusedUnitState); null = a single legacy node.
  struct FusedGroup {
    int begin = 0;
    int end = 0;
    std::shared_ptr<const FusedUnit> unit;
  };
  std::vector<FusedGroup> groups;

  /// Parallel to cut.nodes; non-null only at kJoin positions. Built once,
  /// probed concurrently by every task (entries own their bytes).
  std::vector<JoinBuildPtr> builds;

  /// Profile node ids (all -1 when profiling is off): one per *group*,
  /// plus the leaf scan; top_node_id is the chain's root, attached to its
  /// parent (breaker or profile root) by the caller.
  std::vector<int> node_ids;
  int leaf_node_id = -1;
  int top_node_id = -1;

  int units = 0;            // batches or files to split into morsels
  int units_per_morsel = 1;
};

Result<Table> Driver::Run(const plan::PlanPtr& plan, ExecContext ctx,
                          std::vector<StageInfo>* stages,
                          obs::QueryProfile* profile) {
  if (ctx.optimizer == OptimizerPolicy::kOn) {
    ExecContext off = ctx;
    off.optimizer = OptimizerPolicy::kOff;
    return Run(opt::Optimize(plan), off, stages, profile);
  }
  RunState state;
  state.ctx = ctx;
  state.stages = stages;
  obs::ProfileBuilder builder;
  if (stages != nullptr || profile != nullptr) state.profile = &builder;
  int64_t t0 = NowNs();
  Result<Table> out = RunNode(plan, &state, -1);
  if (profile != nullptr) {
    *profile = builder.Finish(NowNs() - t0, num_threads());
  }
  return out;
}

Result<Table> Driver::RunNode(const plan::PlanPtr& node, RunState* state,
                              int parent_node) {
  switch (node->kind) {
    case plan::PlanKind::kAggregate:
      return RunAggregate(node, state, parent_node);
    case plan::PlanKind::kSort:
      return RunSort(node, state, parent_node);
    case plan::PlanKind::kLimit: {
      // The child (in TPC-H always a sort or aggregate) is materialized in
      // its deterministic order; the limit just trims the prefix.
      int limit_id = -1;
      if (state->profile != nullptr) {
        limit_id = state->profile->AddNode("Limit", parent_node);
      }
      PHOTON_ASSIGN_OR_RETURN(Table child,
                              RunNode(node->children[0], state, limit_id));
      LimitOperator limit(OperatorPtr(new InMemoryScanOperator(&child)),
                          node->limit);
      Result<Table> out = CollectAll(&limit, state->ctx.control);
      if (state->profile != nullptr) {
        limit.PublishMetrics();
        state->profile
            ->TaskShard(limit_id, state->profile->NewTaskId())
            ->MergeFrom(limit.op_metrics());
      }
      return out;
    }
    default:
      return RunFragment(node, state, parent_node);
  }
}

Result<Driver::StagedFragment> Driver::PrepareFragment(
    const plan::PlanPtr& root, RunState* state) {
  StagedFragment frag;
  frag.cut = plan::CutFragment(root);
  const std::vector<const plan::PlanNode*>& nodes = frag.cut.nodes;

  // Group the chain's consecutive filter/project runs into fused units
  // (DESIGN.md §12); every other node stays a singleton legacy group. A
  // unit is compiled once here and shared immutably by every task.
  size_t i = 0;
  while (i < nodes.size()) {
    size_t j = i;
    if (state->ctx.expr_policy != ExprPolicy::kTreeOnly) {
      while (j < nodes.size() && IsFusable(nodes[j]->kind)) j++;
    }
    if (j == i) {  // non-fusable node (or tree-only policy)
      frag.groups.push_back(
          {static_cast<int>(i), static_cast<int>(i) + 1, nullptr});
      i++;
      continue;
    }
    auto try_compile =
        [&](size_t begin, size_t end) -> std::shared_ptr<const FusedUnit> {
      std::vector<FusedStage> stages;
      stages.reserve(end - begin);
      for (size_t k = end; k-- > begin;) stages.push_back(StageOf(*nodes[k]));
      Result<std::shared_ptr<const FusedUnit>> unit = FusedUnit::Compile(
          stages, nodes[end - 1]->children[0]->output_schema);
      return unit.ok() ? std::move(*unit) : nullptr;
    };
    std::shared_ptr<const FusedUnit> unit = try_compile(i, j);
    if (unit != nullptr) {
      frag.groups.push_back(
          {static_cast<int>(i), static_cast<int>(j), std::move(unit)});
    } else {
      // An unsupported expression somewhere in the run: retry each node
      // alone so only the offending node falls back to the legacy path.
      for (size_t k = i; k < j; k++) {
        frag.groups.push_back({static_cast<int>(k), static_cast<int>(k) + 1,
                               try_compile(k, k + 1)});
      }
    }
    i = j;
  }

  // One profile node per group plus the leaf scan, created root-first so
  // a node's streaming child is its profile child. The top stays detached
  // until the caller knows its parent (breaker wrapper or profile root).
  // Single-node groups keep their legacy labels whether fused or not;
  // only a genuinely collapsed run reads "FusedFilterProject".
  obs::ProfileBuilder* profile = state->profile;
  frag.node_ids.assign(frag.groups.size(), -1);
  if (profile != nullptr) {
    int prev = obs::ProfileBuilder::kDetached;
    for (size_t g = 0; g < frag.groups.size(); g++) {
      const StagedFragment::FusedGroup& grp = frag.groups[g];
      const char* name = grp.end - grp.begin > 1
                             ? "FusedFilterProject"
                             : ChainNodeName(nodes[grp.begin]->kind);
      frag.node_ids[g] = profile->AddNode(
          name, g == 0 ? obs::ProfileBuilder::kDetached : prev);
      prev = frag.node_ids[g];
    }
    const char* leaf_name = "TableScan";
    if (frag.cut.leaf_kind == plan::FragmentLeaf::kDeltaFiles) {
      leaf_name = "DeltaScan";
    } else if (frag.cut.leaf_kind == plan::FragmentLeaf::kStage) {
      leaf_name = "StageScan";
    }
    frag.leaf_node_id = profile->AddNode(
        leaf_name,
        frag.groups.empty() ? obs::ProfileBuilder::kDetached : prev);
    frag.top_node_id =
        frag.groups.empty() ? frag.leaf_node_id : frag.node_ids[0];
  }

  // Build sides of in-fragment joins: each is materialized by its own
  // (recursive) stages, then hashed once into a shared build state. In
  // the profile the build subtree hangs under the join node, next to the
  // probe-side chain. (Joins are always singleton groups.)
  frag.builds.resize(nodes.size());
  for (size_t g = 0; g < frag.groups.size(); g++) {
    size_t idx = static_cast<size_t>(frag.groups[g].begin);
    const plan::PlanNode* node = nodes[idx];
    if (frag.groups[g].unit != nullptr ||
        node->kind != plan::PlanKind::kJoin) {
      continue;
    }
    PHOTON_ASSIGN_OR_RETURN(
        Table build_table,
        RunNode(node->children[1], state, frag.node_ids[g]));
    ExecContext build_ctx = state->ctx;
    build_ctx.task_group = NextTaskGroup();
    InMemoryScanOperator build_scan(&build_table);
    obs::TraceSpan span("join_build", static_cast<int64_t>(idx));
    PHOTON_ASSIGN_OR_RETURN(
        frag.builds[idx],
        HashJoinOperator::BuildShared(&build_scan, node->right_keys,
                                      build_ctx));
  }

  switch (frag.cut.leaf_kind) {
    case plan::FragmentLeaf::kTable:
      frag.source_table = frag.cut.leaf->table;
      frag.units = frag.source_table->num_batches();
      frag.units_per_morsel = kMorselBatches;
      break;
    case plan::FragmentLeaf::kDeltaFiles: {
      const plan::PlanNode* leaf = frag.cut.leaf.get();
      Schema projected = FileScanOperator::Project(leaf->snapshot.schema,
                                                   leaf->scan_columns);
      frag.files =
          PruneDeltaFiles(leaf->snapshot, leaf->scan_columns,
                          leaf->scan_predicate, projected, &frag.files_pruned);
      frag.units = static_cast<int>(frag.files.size());
      frag.units_per_morsel = kFilesPerMorsel;
      if (profile != nullptr && frag.files_pruned > 0) {
        // Pruning happens once at plan time, not in any task.
        profile->NodeSet(frag.leaf_node_id)
            ->Add(obs::Metric::kFilesPruned, frag.files_pruned);
      }
      break;
    }
    case plan::FragmentLeaf::kStage: {
      PHOTON_ASSIGN_OR_RETURN(
          Table staged, RunNode(frag.cut.leaf, state, frag.leaf_node_id));
      frag.staged = std::make_unique<Table>(std::move(staged));
      frag.source_table = frag.staged.get();
      frag.units = frag.source_table->num_batches();
      frag.units_per_morsel = kMorselBatches;
      break;
    }
  }
  return frag;
}

Result<OperatorPtr> Driver::InstantiateFragment(const StagedFragment& frag,
                                                Morsel morsel,
                                                const ExecContext& task_ctx,
                                                Harvest* harvest) {
  OperatorPtr op;
  if (frag.cut.leaf_kind == plan::FragmentLeaf::kDeltaFiles) {
    const plan::PlanNode* leaf = frag.cut.leaf.get();
    std::vector<std::string> subset(frag.files.begin() + morsel.begin,
                                    frag.files.begin() + morsel.end);
    io::IoOptions io = leaf->scan_io;
    // Read-aheads go to the driver's IO pool; sharing the worker pool
    // would let a prefetch future queue behind the very task waiting on
    // it.
    if (io.prefetch_pool != nullptr) io.prefetch_pool = io_pool_;
    op = OperatorPtr(new FileScanOperator(leaf->store, std::move(subset),
                                          leaf->snapshot.schema,
                                          leaf->scan_columns,
                                          leaf->scan_predicate, io));
  } else {
    op = OperatorPtr(
        new TableSliceScan(frag.source_table, morsel.begin, morsel.end));
  }
  if (harvest != nullptr) harvest->emplace_back(op.get(), frag.leaf_node_id);

  for (int g = static_cast<int>(frag.groups.size()) - 1; g >= 0; g--) {
    const StagedFragment::FusedGroup& grp = frag.groups[g];
    if (grp.unit != nullptr) {
      op = OperatorPtr(new FusedFilterProjectOperator(
          std::move(op), grp.unit, task_ctx.expr_policy));
      if (harvest != nullptr) {
        harvest->emplace_back(op.get(), frag.node_ids[g]);
      }
      continue;
    }
    const plan::PlanNode* node = frag.cut.nodes[grp.begin];
    switch (node->kind) {
      case plan::PlanKind::kFilter:
        op = OperatorPtr(new FilterOperator(std::move(op), node->predicate));
        break;
      case plan::PlanKind::kProject:
        op = OperatorPtr(
            new ProjectOperator(std::move(op), node->exprs, node->names));
        break;
      case plan::PlanKind::kJoin:
        op = OperatorPtr(new HashJoinOperator(
            frag.builds[grp.begin], std::move(op), node->left_keys,
            node->join_type, task_ctx, node->residual));
        break;
      default:
        return Status::Internal("non-streaming node inside fragment");
    }
    if (harvest != nullptr) harvest->emplace_back(op.get(), frag.node_ids[g]);
  }
  return op;
}

Result<std::vector<std::unique_ptr<Table>>> Driver::RunMorselStage(
    const StagedFragment& frag, RunState* state, const WrapFn& wrap,
    int wrap_node_id, StageInfo* info) {
  std::vector<Morsel> morsels =
      SplitMorsels(frag.units, frag.units_per_morsel);
  const int num_morsels = static_cast<int>(morsels.size());
  const int num_tasks = std::min(num_threads(), num_morsels);
  const int stage_id = info->stage_id;
  obs::ProfileBuilder* profile = state->profile;
  obs::MetricSet* stage_set =
      profile != nullptr ? profile->StageSet(stage_id) : nullptr;
  if (profile != nullptr) {
    for (int nid : frag.node_ids) profile->SetStage(nid, stage_id);
    profile->SetStage(frag.leaf_node_id, stage_id);
    if (wrap_node_id >= 0) profile->SetStage(wrap_node_id, stage_id);
  }
  int64_t t0 = NowNs();

  MorselQueue queue(num_morsels);
  std::vector<std::unique_ptr<Table>> slots(num_morsels);

  // One metric shard per (node, worker): the shard is only ever touched
  // by this thread, so the hot path is uncontended relaxed atomics and
  // the merge happens here, after the morsel is drained — the
  // sharded-then-merged-at-barriers design of §5.2.
  //
  // `max_claims` bounds how many morsels one invocation drains: the
  // standalone driver launches num_tasks unbounded claim loops (each
  // worker thread drains greedily), while service mode submits one
  // single-claim task per morsel to the fair scheduler — yielding the
  // worker between morsels is exactly what lets a peer query's task run.
  auto worker = [&, stage_id](int max_claims) -> Status {
    const int64_t task_id = profile != nullptr ? profile->NewTaskId() : 0;
    for (int claimed = 0; claimed < max_claims; claimed++) {
      // Morsel claims are cancellation points: a cancelled or
      // deadline-expired query stops claiming work here, and the claim
      // its peers skip is what makes cancellation prompt at 8 threads.
      PHOTON_RETURN_NOT_OK(CheckAlive(state->ctx));
      int m = queue.Next();
      if (m < 0) break;
      obs::TraceSpan morsel_span("morsel", m);
      int64_t cpu0 = profile != nullptr ? obs::ThreadCpuNs() : 0;
      ExecContext task_ctx = state->ctx;
      task_ctx.task_group = NextTaskGroup();
      // Unique per-task spill namespace: concurrent tasks must never
      // collide on object-store spill keys.
      task_ctx.spill_prefix = state->ctx.spill_prefix + "/s" +
                              std::to_string(stage_id) + "-m" +
                              std::to_string(m);
      Harvest harvest;
      PHOTON_ASSIGN_OR_RETURN(
          OperatorPtr op,
          InstantiateFragment(frag, morsels[m], task_ctx,
                              profile != nullptr ? &harvest : nullptr));
      Operator* chain_top = op.get();
      PHOTON_ASSIGN_OR_RETURN(op, wrap(std::move(op), task_ctx));
      if (profile != nullptr && op.get() != chain_top) {
        harvest.emplace_back(op.get(), wrap_node_id);
      }
      Result<Table> out = CollectAll(op.get(), state->ctx.control);
      if (profile != nullptr) {
        for (const auto& [hop, nid] : harvest) {
          hop->PublishMetrics();
          if (nid >= 0) {
            profile->TaskShard(nid, task_id)->MergeFrom(hop->op_metrics());
          }
          stage_set->MergeResourceFrom(hop->op_metrics());
        }
        stage_set->Add(obs::Metric::kCpuNs, obs::ThreadCpuNs() - cpu0);
        if (out.ok()) {
          stage_set->Add(obs::Metric::kRowsOut, out->num_rows());
          stage_set->Add(obs::Metric::kBatches, out->num_batches());
        }
      }
      PHOTON_RETURN_NOT_OK(out.status());
      slots[m] = std::make_unique<Table>(std::move(*out));
    }
    return Status::OK();
  };

  Status status = Status::OK();
  if (num_morsels == 1 || (scheduler_ == nullptr && num_tasks <= 1)) {
    // One morsel (or a single-worker standalone driver): run inline on
    // the calling thread. In service mode this keeps point queries off
    // the shared queues entirely — their single morsel runs on the
    // session's own control thread at zero scheduling latency — but a
    // multi-morsel stage always goes through the scheduler, whatever its
    // size, so the worker cap and round-robin fairness hold.
    status = worker(num_morsels);
  } else {
    std::vector<std::future<Status>> futures;
    if (scheduler_ != nullptr) {
      // Service mode: one single-claim task per morsel on this query's
      // queue. The scheduler drains queues round-robin, so between any
      // two of our morsels every peer query gets a turn.
      futures.reserve(num_morsels);
      for (int t = 0; t < num_morsels; t++) {
        futures.push_back(SubmitTask([&worker] { return worker(1); }));
      }
    } else {
      futures.reserve(num_tasks);
      for (int t = 0; t < num_tasks; t++) {
        futures.push_back(SubmitTask([&worker, num_morsels] {
          return worker(num_morsels);
        }));
      }
    }
    // Join every task before surfacing the first error — peers share the
    // queue and the output slots. (Also a breaker-barrier cancellation
    // point: the post-join CheckAlive below turns "every task bailed at
    // its claim" into a crisp kCancelled for the whole stage.)
    obs::TraceSpan barrier("stage_barrier", stage_id);
    for (auto& f : futures) {
      Status s = f.get();
      if (status.ok() && !s.ok()) status = s;
    }
  }
  if (status.ok()) status = CheckAlive(state->ctx);
  PHOTON_RETURN_NOT_OK(status);

  info->num_tasks = num_tasks;
  int64_t wall = NowNs() - t0;
  if (profile != nullptr) {
    stage_set->Add(obs::Metric::kWallNs, wall);
    info->m = profile->StageSnapshot(stage_id);
  } else {
    info->m[obs::Metric::kWallNs] = wall;
  }
  return slots;
}

Result<Table> Driver::RunFragment(const plan::PlanPtr& node, RunState* state,
                                  int parent_node) {
  PHOTON_ASSIGN_OR_RETURN(StagedFragment frag, PrepareFragment(node, state));
  if (state->profile != nullptr) {
    state->profile->SetParent(frag.top_node_id, parent_node);
  }
  StageInfo info;
  info.stage_id = state->next_stage_id++;
  WrapFn identity = [](OperatorPtr op, const ExecContext&) {
    return Result<OperatorPtr>(std::move(op));
  };
  PHOTON_ASSIGN_OR_RETURN(auto outputs,
                          RunMorselStage(frag, state, identity, -1, &info));
  if (state->stages != nullptr) state->stages->push_back(info);
  Table out(node->output_schema);
  for (auto& t : outputs) {
    if (t != nullptr) AppendTable(*t, &out);
  }
  return out;
}

Result<Table> Driver::RunAggregate(const plan::PlanPtr& node,
                                   RunState* state, int parent_node) {
  // Pre-project non-trivial aggregate arguments (DESIGN.md §12): the
  // inserted Project joins the input fragment, where it fuses with the
  // scan-side filter chain; the aggregate then reads plain column refs.
  // `pre` owns the rewritten plan nodes for the rest of this function.
  plan::AggPreProject pre;
  if (state->ctx.expr_policy != ExprPolicy::kTreeOnly) {
    pre = plan::PlanAggPreProject(*node);
  }
  const plan::PlanPtr& input = pre.fired ? pre.input : node->children[0];
  const std::vector<ExprPtr>& keys = pre.fired ? pre.keys : node->group_keys;
  const std::vector<AggregateSpec>& aggs =
      pre.fired ? pre.aggregates : node->aggregates;
  PHOTON_ASSIGN_OR_RETURN(StagedFragment frag,
                          PrepareFragment(input, state));
  const int num_morsels = static_cast<int>(
      SplitMorsels(frag.units, frag.units_per_morsel).size());
  obs::ProfileBuilder* profile = state->profile;
  StageInfo info;
  info.stage_id = state->next_stage_id++;

  if (num_morsels <= 1) {
    // One morsel: a classic complete aggregate in one task, no merge
    // stage. (This path is chosen by input size alone, so it is the same
    // at every thread count.)
    int agg_id = -1;
    if (profile != nullptr) {
      agg_id = profile->AddNode("HashAggregate", parent_node);
      profile->SetParent(frag.top_node_id, agg_id);
    }
    WrapFn wrap = [&](OperatorPtr op, const ExecContext& task_ctx) {
      return Result<OperatorPtr>(OperatorPtr(new HashAggregateOperator(
          std::move(op), keys, node->key_names, aggs, task_ctx,
          AggMode::kComplete)));
    };
    PHOTON_ASSIGN_OR_RETURN(auto outputs,
                            RunMorselStage(frag, state, wrap, agg_id, &info));
    if (state->stages != nullptr) state->stages->push_back(info);
    return std::move(*outputs[0]);
  }

  // Partial stage: one exact partial aggregate per morsel, emitting
  // serialized (key, state) blobs; the profile mirrors the physical shape
  // as Final <- Partial <- input chain.
  int final_id = -1;
  int partial_id = -1;
  if (profile != nullptr) {
    final_id = profile->AddNode("HashAggregateFinal", parent_node);
    partial_id = profile->AddNode("HashAggregatePartial", final_id);
    profile->SetParent(frag.top_node_id, partial_id);
  }
  WrapFn wrap = [&](OperatorPtr op, const ExecContext& task_ctx) {
    return Result<OperatorPtr>(OperatorPtr(new HashAggregateOperator(
        std::move(op), keys, node->key_names, aggs, task_ctx,
        AggMode::kPartial)));
  };
  PHOTON_ASSIGN_OR_RETURN(auto outputs,
                          RunMorselStage(frag, state, wrap, partial_id, &info));
  if (state->stages != nullptr) state->stages->push_back(info);

  // Merge stage: a single task merges every partial's states. Blobs are
  // concatenated in morsel order, so the merge input — and the output
  // order — is independent of the thread count.
  int64_t t0 = NowNs();
  StageInfo merge_info;
  merge_info.stage_id = state->next_stage_id++;
  Table blobs(HashAggregateOperator::PartialOutputSchema());
  for (auto& t : outputs) {
    if (t != nullptr) AppendTable(*t, &blobs);
  }
  ExecContext merge_ctx = state->ctx;
  merge_ctx.task_group = NextTaskGroup();
  merge_ctx.spill_prefix = state->ctx.spill_prefix + "/s" +
                           std::to_string(info.stage_id) + "-merge";
  HashAggregateOperator merge(OperatorPtr(new InMemoryScanOperator(&blobs)),
                              keys, node->key_names, aggs, merge_ctx,
                              AggMode::kFinalMerge);
  Result<Table> out = CollectAll(&merge, state->ctx.control);
  if (profile != nullptr) {
    profile->SetStage(final_id, merge_info.stage_id);
    merge.PublishMetrics();
    profile->TaskShard(final_id, profile->NewTaskId())
        ->MergeFrom(merge.op_metrics());
    obs::MetricSet* stage_set = profile->StageSet(merge_info.stage_id);
    stage_set->MergeResourceFrom(merge.op_metrics());
    stage_set->Add(obs::Metric::kWallNs, NowNs() - t0);
    if (out.ok()) {
      stage_set->Add(obs::Metric::kRowsOut, out->num_rows());
      stage_set->Add(obs::Metric::kBatches, out->num_batches());
    }
    merge_info.m = profile->StageSnapshot(merge_info.stage_id);
  }
  merge_info.num_tasks = 1;
  if (state->stages != nullptr) state->stages->push_back(merge_info);
  return out;
}

Result<Table> Driver::RunSort(const plan::PlanPtr& node, RunState* state,
                              int parent_node) {
  PHOTON_ASSIGN_OR_RETURN(StagedFragment frag,
                          PrepareFragment(node->children[0], state));
  const int num_morsels = static_cast<int>(
      SplitMorsels(frag.units, frag.units_per_morsel).size());
  obs::ProfileBuilder* profile = state->profile;
  StageInfo info;
  info.stage_id = state->next_stage_id++;

  // One sorted run per morsel; with several morsels a deterministic k-way
  // merge stage sits above the runs (SortMerge <- Sort <- input).
  int sort_id = -1;
  int sort_merge_id = -1;
  if (profile != nullptr) {
    if (num_morsels > 1) {
      sort_merge_id = profile->AddNode("SortMerge", parent_node);
      sort_id = profile->AddNode("Sort", sort_merge_id);
    } else {
      sort_id = profile->AddNode("Sort", parent_node);
    }
    profile->SetParent(frag.top_node_id, sort_id);
  }
  WrapFn wrap = [&](OperatorPtr op, const ExecContext& task_ctx) {
    return Result<OperatorPtr>(OperatorPtr(
        new SortOperator(std::move(op), node->sort_keys, task_ctx)));
  };
  PHOTON_ASSIGN_OR_RETURN(auto outputs,
                          RunMorselStage(frag, state, wrap, sort_id, &info));
  if (state->stages != nullptr) state->stages->push_back(info);
  if (outputs.size() == 1) return std::move(*outputs[0]);

  // Merge stage: deterministic k-way merge of the runs (ties resolve to
  // the lowest morsel index).
  int64_t t0 = NowNs();
  StageInfo merge_info;
  merge_info.stage_id = state->next_stage_id++;
  // Breaker-barrier cancellation point: don't start a k-way merge for a
  // query that was cancelled while its runs were sorting.
  PHOTON_RETURN_NOT_OK(CheckAlive(state->ctx));
  std::vector<Table*> runs;
  runs.reserve(outputs.size());
  for (auto& t : outputs) {
    if (t != nullptr) runs.push_back(t.get());
  }
  Result<Table> merged = MergeSortedRuns(runs, node->sort_keys,
                                         node->output_schema,
                                         state->ctx.batch_size);
  if (profile != nullptr) {
    // MergeSortedRuns is a free function, not an Operator: record its
    // contribution into the SortMerge node by hand.
    profile->SetStage(sort_merge_id, merge_info.stage_id);
    obs::MetricSet* shard =
        profile->TaskShard(sort_merge_id, profile->NewTaskId());
    shard->Add(obs::Metric::kWallNs, NowNs() - t0);
    obs::MetricSet* stage_set = profile->StageSet(merge_info.stage_id);
    stage_set->Add(obs::Metric::kWallNs, NowNs() - t0);
    if (merged.ok()) {
      shard->Add(obs::Metric::kRowsOut, merged->num_rows());
      shard->Add(obs::Metric::kBatches, merged->num_batches());
      stage_set->Add(obs::Metric::kRowsOut, merged->num_rows());
      stage_set->Add(obs::Metric::kBatches, merged->num_batches());
    }
    merge_info.m = profile->StageSnapshot(merge_info.stage_id);
  }
  merge_info.num_tasks = 1;
  if (state->stages != nullptr) state->stages->push_back(merge_info);
  return merged;
}

// ---------------------------------------------------------------------------
// Single-task + shuffle entry points
// ---------------------------------------------------------------------------

Result<Table> Driver::RunSingleTask(const plan::PlanPtr& plan,
                                    ExecContext ctx, StageInfo* stage) {
  if (ctx.optimizer == OptimizerPolicy::kOn) {
    ExecContext off = ctx;
    off.optimizer = OptimizerPolicy::kOff;
    return RunSingleTask(opt::Optimize(plan), off, stage);
  }
  PHOTON_ASSIGN_OR_RETURN(OperatorPtr root, plan::CompilePhoton(plan, ctx));
  int64_t t0 = NowNs();
  Result<Table> result = CollectAll(root.get(), ctx.control);
  if (stage != nullptr) {
    stage->num_tasks = 1;
    // Resource metrics (IO, memory, spill) fold over the whole tree into
    // the stage view; rows/wall come from the root.
    CollectTreeMetrics(root.get(), &stage->m);
    stage->m[obs::Metric::kWallNs] = NowNs() - t0;
    if (result.ok()) {
      stage->m[obs::Metric::kRowsOut] = result->num_rows();
      stage->m[obs::Metric::kBatches] = result->num_batches();
    }
  }
  return result;
}

Result<Table> Driver::RunShuffledAggregate(
    const Table& input, std::vector<ExprPtr> keys,
    std::vector<std::string> key_names, std::vector<AggregateSpec> aggs,
    int num_partitions, std::vector<StageInfo>* stages) {
  std::string shuffle_id = "driver-" + std::to_string(g_next_shuffle_id.fetch_add(1));
  // Any early return below (failed map task, failed reduce task) must
  // still clean up whatever blocks were written.
  ShuffleGuard guard(shuffle_id);

  // ---- Stage 1: map tasks write the shuffle ------------------------------
  int64_t t0 = NowNs();
  int num_map_tasks =
      std::min(num_threads(), std::max(1, input.num_batches()));
  int batches_per_task =
      (input.num_batches() + num_map_tasks - 1) / std::max(1, num_map_tasks);
  std::vector<std::future<Status>> map_futures;
  for (int t = 0; t < num_map_tasks; t++) {
    int begin = t * batches_per_task;
    int end = std::min(input.num_batches(), begin + batches_per_task);
    if (begin >= end) break;
    map_futures.push_back(SubmitTask([&, t, begin, end]() -> Status {
      ShuffleOptions options;
      options.num_partitions = num_partitions;
      options.writer_id = t;
      auto write = std::make_unique<ShuffleWriteOperator>(
          std::make_unique<TableSliceScan>(&input, begin, end), keys,
          shuffle_id, options);
      PHOTON_RETURN_NOT_OK(write->Open());
      PHOTON_ASSIGN_OR_RETURN(ColumnBatch * sink, write->GetNext());
      PHOTON_CHECK(sink == nullptr);
      return Status::OK();
    }));
  }
  Status map_status = Status::OK();
  {
    obs::TraceSpan barrier("stage_barrier", 0);
    for (auto& f : map_futures) {
      Status s = f.get();  // join every task before returning an error
      if (map_status.ok() && !s.ok()) map_status = s;
    }
  }
  PHOTON_RETURN_NOT_OK(map_status);
  int64_t t1 = NowNs();
  if (stages != nullptr) {
    StageInfo map_stage;
    map_stage.stage_id = 0;
    map_stage.num_tasks = static_cast<int>(map_futures.size());
    map_stage.m[obs::Metric::kRowsOut] = input.num_rows();
    map_stage.m[obs::Metric::kShuffleBytes] = ShuffleDataBytes(shuffle_id);
    map_stage.m[obs::Metric::kWallNs] = t1 - t0;
    stages->push_back(map_stage);
  }

  // ---- Stage 2: reduce tasks aggregate partitions ------------------------
  // (Stage boundary is blocking: stage 2 starts only after every map task
  // finished, §2.2.)
  std::vector<std::future<Result<Table>>> reduce_futures;
  for (int p = 0; p < num_partitions; p++) {
    reduce_futures.push_back(SubmitTask([&, p]() -> Result<Table> {
      auto read = std::make_unique<ShuffleReadOperator>(input.schema(),
                                                        shuffle_id, p);
      auto agg = std::make_unique<HashAggregateOperator>(
          std::move(read), keys, key_names, aggs);
      return CollectAll(agg.get());
    }));
  }

  Table out(plan::Aggregate(plan::Scan(&input), keys, key_names, aggs)
                ->output_schema);
  int64_t rows = 0;
  Status reduce_status = Status::OK();
  {
    obs::TraceSpan barrier("stage_barrier", 1);
    for (auto& f : reduce_futures) {
      Result<Table> part = f.get();
      if (!part.ok()) {
        if (reduce_status.ok()) reduce_status = part.status();
        continue;
      }
      rows += part->num_rows();
      for (int b = 0; b < part->num_batches(); b++) {
        out.AppendBatch(CompactBatch(part->batch(b)));
      }
    }
  }
  PHOTON_RETURN_NOT_OK(reduce_status);
  int64_t t2 = NowNs();
  if (stages != nullptr) {
    StageInfo reduce_stage;
    reduce_stage.stage_id = 1;
    reduce_stage.num_tasks = num_partitions;
    reduce_stage.m[obs::Metric::kRowsOut] = rows;
    reduce_stage.m[obs::Metric::kWallNs] = t2 - t1;
    stages->push_back(reduce_stage);
  }
  return out;
}

}  // namespace exec
}  // namespace photon
