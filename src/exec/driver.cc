#include "exec/driver.h"

#include <chrono>

#include "ops/file_scan.h"
#include "ops/scan.h"

namespace photon {
namespace exec {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A scan over a contiguous range of a table's batches (one map task's
/// slice of the input partition space).
class TableSliceScan : public Operator {
 public:
  TableSliceScan(const Table* table, int begin_batch, int end_batch)
      : Operator(table->schema()),
        table_(table),
        begin_(begin_batch),
        end_(end_batch) {}

  Status Open() override {
    next_ = begin_;
    return Status::OK();
  }

  Result<ColumnBatch*> GetNextImpl() override {
    if (next_ >= end_) return nullptr;
    const ColumnBatch& src = table_->batch(next_++);
    if (out_ == nullptr || out_->capacity() < src.num_rows()) {
      out_ = std::make_unique<ColumnBatch>(
          table_->schema(), std::max(src.capacity(), kDefaultBatchSize));
    }
    CopyBatchShallow(src, out_.get());
    return out_.get();
  }

  std::string name() const override { return "TableSliceScan"; }

 private:
  const Table* table_;
  int begin_;
  int end_;
  int next_ = 0;
  std::unique_ptr<ColumnBatch> out_;
};

}  // namespace

void AccumulateIoStats(Operator* root, StageInfo* info) {
  if (root == nullptr || info == nullptr) return;
  if (auto* scan = dynamic_cast<FileScanOperator*>(root)) {
    info->bytes_read += scan->bytes_read();
    info->cache_hits += scan->cache_hits();
    info->prefetch_wait_ns += scan->prefetch_wait_ns();
    info->files_read += scan->files_read();
    info->row_groups_skipped += scan->row_groups_skipped();
  }
  for (Operator* child : root->children()) AccumulateIoStats(child, info);
}

Result<Table> Driver::RunSingleTask(const plan::PlanPtr& plan,
                                    ExecContext ctx, StageInfo* stage) {
  PHOTON_ASSIGN_OR_RETURN(OperatorPtr root, plan::CompilePhoton(plan, ctx));
  int64_t t0 = NowNs();
  Result<Table> result = CollectAll(root.get());
  if (stage != nullptr) {
    stage->num_tasks = 1;
    stage->wall_ns = NowNs() - t0;
    if (result.ok()) stage->rows_out = result->num_rows();
    AccumulateIoStats(root.get(), stage);
  }
  return result;
}

Result<Table> Driver::RunShuffledAggregate(
    const Table& input, std::vector<ExprPtr> keys,
    std::vector<std::string> key_names, std::vector<AggregateSpec> aggs,
    int num_partitions, std::vector<StageInfo>* stages) {
  std::string shuffle_id = "driver-" + std::to_string(next_shuffle_id_++);

  // ---- Stage 1: map tasks write the shuffle ------------------------------
  int64_t t0 = NowNs();
  int num_map_tasks =
      std::min(pool_.num_threads(), std::max(1, input.num_batches()));
  int batches_per_task =
      (input.num_batches() + num_map_tasks - 1) / std::max(1, num_map_tasks);
  std::vector<std::future<Status>> map_futures;
  for (int t = 0; t < num_map_tasks; t++) {
    int begin = t * batches_per_task;
    int end = std::min(input.num_batches(), begin + batches_per_task);
    if (begin >= end) break;
    map_futures.push_back(pool_.Submit([&, t, begin, end]() -> Status {
      ShuffleOptions options;
      options.num_partitions = num_partitions;
      options.writer_id = t;
      auto write = std::make_unique<ShuffleWriteOperator>(
          std::make_unique<TableSliceScan>(&input, begin, end), keys,
          shuffle_id, options);
      PHOTON_RETURN_NOT_OK(write->Open());
      PHOTON_ASSIGN_OR_RETURN(ColumnBatch * sink, write->GetNext());
      PHOTON_CHECK(sink == nullptr);
      return Status::OK();
    }));
  }
  for (auto& f : map_futures) {
    PHOTON_RETURN_NOT_OK(f.get());
  }
  int64_t t1 = NowNs();
  if (stages != nullptr) {
    StageInfo map_stage;
    map_stage.stage_id = 0;
    map_stage.num_tasks = static_cast<int>(map_futures.size());
    map_stage.rows_out = input.num_rows();
    map_stage.shuffle_bytes = ShuffleDataBytes(shuffle_id);
    map_stage.wall_ns = t1 - t0;
    stages->push_back(map_stage);
  }

  // ---- Stage 2: reduce tasks aggregate partitions ------------------------
  // (Stage boundary is blocking: stage 2 starts only after every map task
  // finished, §2.2.)
  std::vector<std::future<Result<Table>>> reduce_futures;
  for (int p = 0; p < num_partitions; p++) {
    reduce_futures.push_back(pool_.Submit([&, p]() -> Result<Table> {
      auto read = std::make_unique<ShuffleReadOperator>(input.schema(),
                                                        shuffle_id, p);
      auto agg = std::make_unique<HashAggregateOperator>(
          std::move(read), keys, key_names, aggs);
      return CollectAll(agg.get());
    }));
  }

  Table out(plan::Aggregate(plan::Scan(&input), keys, key_names, aggs)
                ->output_schema);
  int64_t rows = 0;
  for (auto& f : reduce_futures) {
    Result<Table> part = f.get();
    PHOTON_RETURN_NOT_OK(part.status());
    rows += part->num_rows();
    for (int b = 0; b < part->num_batches(); b++) {
      out.AppendBatch(CompactBatch(part->batch(b)));
    }
  }
  int64_t t2 = NowNs();
  if (stages != nullptr) {
    StageInfo reduce_stage;
    reduce_stage.stage_id = 1;
    reduce_stage.num_tasks = num_partitions;
    reduce_stage.rows_out = rows;
    reduce_stage.wall_ns = t2 - t1;
    stages->push_back(reduce_stage);
  }
  DeleteShuffle(shuffle_id);
  return out;
}

}  // namespace exec
}  // namespace photon
