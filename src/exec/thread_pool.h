#ifndef PHOTON_EXEC_THREAD_POOL_H_
#define PHOTON_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace photon {

/// Fixed-size worker pool modeling the executor's task threads (§2.2: each
/// executor runs a task scheduler and a thread pool executing independent
/// tasks submitted by the driver).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    for (int i = 0; i < num_threads; i++) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future delivers its result (or rethrows).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (shutdown_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace photon

#endif  // PHOTON_EXEC_THREAD_POOL_H_
