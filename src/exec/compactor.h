#ifndef PHOTON_EXEC_COMPACTOR_H_
#define PHOTON_EXEC_COMPACTOR_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/driver.h"
#include "exec/task_scheduler.h"
#include "io/caching_store.h"
#include "storage/delta.h"

namespace photon {
namespace exec {

/// Background small-file compaction (the lakehouse's OPTIMIZE): coalesces
/// runs of small data files into fewer large ones via copy-on-write
/// Rewrite commits. Purely physical — every pass preserves the table's
/// logical contents, so it coexists with readers (their snapshots pin the
/// old files) and with writers (a compaction that races a DELETE/UPDATE of
/// the same files loses read-set validation, counts a conflict, and simply
/// leaves the group for the next pass — writer progress is never blocked).
class Compactor {
 public:
  struct Options {
    /// Files below this row count are compaction candidates.
    int64_t small_file_rows = 1024;
    /// Greedy group budget: a group closes when its rows reach this.
    int64_t target_file_rows = 8192;
    /// Groups smaller than this are not worth a commit.
    int min_group_files = 2;
    /// Background pass period.
    int64_t interval_ms = 10;
    /// IO wiring for the group read-back.
    io::IoOptions io;
    /// Format options for the coalesced file.
    FormatWriteOptions write;
  };

  struct Stats {
    int64_t passes = 0;
    int64_t commits = 0;
    /// Rewrites that lost read-set validation to a concurrent writer.
    int64_t conflicts = 0;
    /// Non-conflict pass failures (store errors).
    int64_t failed_passes = 0;
    int64_t files_compacted = 0;
  };

  /// Without a scheduler, passes run on the compactor's own background
  /// thread. With one, each pass body is submitted as leaf work on the
  /// shared worker pool under a registered query slot, so compaction
  /// shares workers round-robin with live queries instead of owning a
  /// core; the background thread only paces and joins pass futures.
  Compactor(DeltaTable* table, Options options,
            TaskScheduler* scheduler = nullptr);
  ~Compactor();

  Compactor(const Compactor&) = delete;
  Compactor& operator=(const Compactor&) = delete;

  /// One synchronous pass: snapshot, group small files greedily, rewrite
  /// each group. Conflicts are absorbed (counted, group skipped); other
  /// errors abort the pass.
  Status RunOncePass();

  /// Starts/stops the background loop. Stop joins the thread and is safe
  /// to call twice; the destructor calls it.
  void Start();
  void Stop();

  Stats stats() const;

  /// Observer invoked with each committed compaction's log version, from
  /// the pass thread (the differential harness records commit order).
  void set_commit_listener(std::function<void(int64_t)> fn) {
    commit_listener_ = std::move(fn);
  }

 private:
  void Loop();

  DeltaTable* table_;
  Options options_;
  TaskScheduler* scheduler_;
  int64_t query_slot_ = -1;
  /// RunSingleTask executes inline on the calling thread, so this driver's
  /// pools stay idle; it only exists to compile and drain scan plans.
  Driver driver_{1, 1};
  std::function<void(int64_t)> commit_listener_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool started_ = false;
  Stats stats_;
  std::thread thread_;
};

}  // namespace exec
}  // namespace photon

#endif  // PHOTON_EXEC_COMPACTOR_H_
