#include "exec/dml.h"

#include <algorithm>
#include <utility>

#include "expr/builder.h"

namespace photon {
namespace dml {
namespace {

/// Single-file view of a snapshot: the per-file copy-on-write unit. Every
/// DML scan pins the snapshot's version, so concurrent commits never leak
/// into an in-flight rewrite.
plan::PlanPtr FileScan(DeltaTable* table, const DeltaSnapshot& snapshot,
                       const DeltaFileEntry& file, const io::IoOptions& io,
                       ExprPtr scan_predicate = nullptr) {
  DeltaSnapshot one;
  one.version = snapshot.version;
  one.schema = snapshot.schema;
  one.files.push_back(file);
  return plan::DeltaScan(table->store(), std::move(one), {},
                         std::move(scan_predicate), io);
}

void ReleaseAll(DeltaTable* table, const std::vector<DeltaFileEntry>& staged) {
  for (const DeltaFileEntry& e : staged) table->ReleaseDataFile(e.key);
}

Status CheckCancelled(const ExecContext& ctx) {
  return ctx.control != nullptr ? ctx.control->Check() : Status::OK();
}

/// Rows a DELETE keeps: predicate false OR NULL (three-valued logic — a
/// NULL predicate does not delete the row).
ExprPtr SurvivorPredicate(const ExprPtr& pred) {
  return eb::Or(eb::Not(pred), eb::IsNull(pred));
}

ExprPtr ColRef(const Schema& schema, int index) {
  const Field& f = schema.field(index);
  return eb::Col(index, f.type, f.name);
}

/// Casts `e` to the column type iff it differs (the SQL analyzer coerces
/// ahead of time; plan-level callers get the same safety net).
ExprPtr CastTo(ExprPtr e, const DataType& type) {
  if (e->type() == type) return e;
  return eb::Cast(std::move(e), type);
}

std::vector<std::string> FieldNames(const Schema& schema) {
  std::vector<std::string> names;
  names.reserve(schema.num_fields());
  for (const Field& f : schema.fields()) names.push_back(f.name);
  return names;
}

Status RetriesExhausted(const DeltaTable& table, const char* op,
                        int retries) {
  return Status::CommitConflict(std::string(op) + " on '" + table.path() +
                                "' still conflicting after " +
                                std::to_string(retries) + " retries");
}

}  // namespace

Result<DmlResult> ExecuteDelete(DeltaTable* table, const ExprPtr& predicate,
                                exec::Driver* driver, const ExecContext& ctx,
                                const DmlOptions& options) {
  PHOTON_CHECK(predicate != nullptr);
  DmlResult result;
  int64_t conflicts = 0;
  for (int attempt = 0; attempt <= options.max_retries; attempt++) {
    PHOTON_ASSIGN_OR_RETURN(DeltaSnapshot snapshot, table->Snapshot());
    std::vector<DeltaFileEntry> candidates =
        DeltaTable::PruneFiles(snapshot, predicate);
    result = DmlResult{};
    result.conflicts_retried = conflicts;
    result.files_pruned =
        static_cast<int64_t>(snapshot.files.size() - candidates.size());

    DeltaTransaction tx;
    tx.read_version = snapshot.version;
    tx.schema = snapshot.schema;
    tx.read_predicate = predicate;
    std::vector<DeltaFileEntry> staged;
    Status failed = Status::OK();
    for (const DeltaFileEntry& file : candidates) {
      failed = CheckCancelled(ctx);
      if (!failed.ok()) break;
      Result<Table> survivors = driver->RunSingleTask(
          plan::Filter(FileScan(table, snapshot, file, options.io),
                       SurvivorPredicate(predicate)),
          ctx);
      if (!survivors.ok()) {
        failed = survivors.status();
        break;
      }
      const int64_t matched = file.num_rows - survivors->num_rows();
      if (matched == 0) continue;  // stats matched but no row did
      result.rows_affected += matched;
      tx.read_files.push_back(file.key);
      tx.remove_keys.push_back(file.key);
      if (survivors->num_rows() > 0) {
        Result<DeltaFileEntry> entry =
            table->WriteDataFile(*survivors, options.write);
        if (!entry.ok()) {
          failed = entry.status();
          break;
        }
        staged.push_back(*std::move(entry));
      }
    }
    if (!failed.ok()) {
      ReleaseAll(table, staged);
      return failed;
    }
    if (tx.remove_keys.empty()) {
      result.version = snapshot.version;  // matched nothing: no commit
      return result;
    }
    result.files_rewritten = static_cast<int64_t>(tx.remove_keys.size());
    tx.add_files = std::move(staged);
    Result<int64_t> version = table->Commit(tx);
    if (version.ok()) {
      result.version = *version;
      return result;
    }
    ReleaseAll(table, tx.add_files);
    if (!version.status().IsCommitConflict()) return version.status();
    conflicts++;
  }
  return RetriesExhausted(*table, "delete", options.max_retries);
}

Result<DmlResult> ExecuteUpdate(DeltaTable* table,
                                const std::vector<UpdateAssignment>& set,
                                const ExprPtr& predicate,
                                exec::Driver* driver, const ExecContext& ctx,
                                const DmlOptions& options) {
  PHOTON_CHECK(!set.empty());
  for (const UpdateAssignment& a : set) {
    PHOTON_CHECK(a.column >= 0 && a.value != nullptr);
  }
  DmlResult result;
  int64_t conflicts = 0;
  for (int attempt = 0; attempt <= options.max_retries; attempt++) {
    PHOTON_ASSIGN_OR_RETURN(DeltaSnapshot snapshot, table->Snapshot());
    const Schema& schema = snapshot.schema;
    std::vector<DeltaFileEntry> candidates =
        DeltaTable::PruneFiles(snapshot, predicate);
    result = DmlResult{};
    result.conflicts_retried = conflicts;
    result.files_pruned =
        static_cast<int64_t>(snapshot.files.size() - candidates.size());

    // The rewrite projection: assigned columns take If(pred, value, old),
    // the rest pass through. With no predicate every row is assigned.
    std::vector<ExprPtr> exprs;
    for (int i = 0; i < schema.num_fields(); i++) {
      exprs.push_back(ColRef(schema, i));
    }
    for (const UpdateAssignment& a : set) {
      PHOTON_CHECK(a.column < schema.num_fields());
      const DataType& type = schema.field(a.column).type;
      ExprPtr value = CastTo(a.value, type);
      exprs[a.column] =
          predicate != nullptr
              ? eb::If(predicate, std::move(value), ColRef(schema, a.column))
              : std::move(value);
    }

    DeltaTransaction tx;
    tx.read_version = snapshot.version;
    tx.schema = schema;
    if (predicate != nullptr) {
      tx.read_predicate = predicate;  // phantom protection
    } else {
      tx.reads_all_files = true;  // unqualified UPDATE touches every row
    }
    std::vector<DeltaFileEntry> staged;
    Status failed = Status::OK();
    for (const DeltaFileEntry& file : candidates) {
      failed = CheckCancelled(ctx);
      if (!failed.ok()) break;
      int64_t matched = file.num_rows;
      if (predicate != nullptr) {
        // Count matching rows first (with stats pushdown — only matches
        // are needed) so untouched files are never rewritten.
        Result<Table> matches = driver->RunSingleTask(
            plan::Filter(FileScan(table, snapshot, file, options.io,
                                  predicate),
                         predicate),
            ctx);
        if (!matches.ok()) {
          failed = matches.status();
          break;
        }
        matched = matches->num_rows();
      }
      if (matched == 0) continue;
      Result<Table> rewritten = driver->RunSingleTask(
          plan::Project(FileScan(table, snapshot, file, options.io), exprs,
                        FieldNames(schema)),
          ctx);
      if (!rewritten.ok()) {
        failed = rewritten.status();
        break;
      }
      Result<DeltaFileEntry> entry =
          table->WriteDataFile(*rewritten, options.write);
      if (!entry.ok()) {
        failed = entry.status();
        break;
      }
      result.rows_affected += matched;
      tx.read_files.push_back(file.key);
      tx.remove_keys.push_back(file.key);
      staged.push_back(*std::move(entry));
    }
    if (!failed.ok()) {
      ReleaseAll(table, staged);
      return failed;
    }
    if (tx.remove_keys.empty()) {
      result.version = snapshot.version;
      return result;
    }
    result.files_rewritten = static_cast<int64_t>(tx.remove_keys.size());
    tx.add_files = std::move(staged);
    Result<int64_t> version = table->Commit(tx);
    if (version.ok()) {
      result.version = *version;
      return result;
    }
    ReleaseAll(table, tx.add_files);
    if (!version.status().IsCommitConflict()) return version.status();
    conflicts++;
  }
  return RetriesExhausted(*table, "update", options.max_retries);
}

Result<DmlResult> ExecuteMerge(DeltaTable* table, const MergeSpec& spec,
                               exec::Driver* driver, const ExecContext& ctx,
                               const DmlOptions& options) {
  PHOTON_CHECK(spec.source != nullptr);
  PHOTON_CHECK(!spec.target_keys.empty() &&
               spec.target_keys.size() == spec.source_keys.size());
  DmlResult result;
  int64_t conflicts = 0;
  for (int attempt = 0; attempt <= options.max_retries; attempt++) {
    PHOTON_ASSIGN_OR_RETURN(DeltaSnapshot snapshot, table->Snapshot());
    const Schema& schema = snapshot.schema;
    const int target_width = schema.num_fields();
    if (!spec.matched_exprs.empty()) {
      PHOTON_CHECK(static_cast<int>(spec.matched_exprs.size()) ==
                   target_width);
    }
    if (!spec.insert_exprs.empty()) {
      PHOTON_CHECK(static_cast<int>(spec.insert_exprs.size()) ==
                   target_width);
    }
    result = DmlResult{};
    result.conflicts_retried = conflicts;

    // Materialize the source once per attempt; both the per-file outer
    // joins and the not-matched anti join read this one table.
    PHOTON_ASSIGN_OR_RETURN(Table source, driver->Run(spec.source, ctx));
    const Schema& src_schema = source.schema();

    // Equi-join keys, cast to a common type when the sides differ.
    const size_t num_keys = spec.target_keys.size();
    std::vector<ExprPtr> target_key_exprs;
    std::vector<ExprPtr> source_key_exprs;
    for (size_t k = 0; k < num_keys; k++) {
      PHOTON_CHECK(spec.target_keys[k] >= 0 &&
                   spec.target_keys[k] < target_width);
      PHOTON_CHECK(spec.source_keys[k] >= 0 &&
                   spec.source_keys[k] < src_schema.num_fields());
      ExprPtr t = ColRef(schema, spec.target_keys[k]);
      ExprPtr s = ColRef(src_schema, spec.source_keys[k]);
      DataType common = eb::CommonType(t->type(), s->type());
      target_key_exprs.push_back(CastTo(std::move(t), common));
      source_key_exprs.push_back(CastTo(std::move(s), common));
    }

    DeltaTransaction tx;
    tx.read_version = snapshot.version;
    tx.schema = schema;
    // The matched/not-matched split reads the entire table: any concurrent
    // add or remove invalidates it.
    tx.reads_all_files = true;
    std::vector<DeltaFileEntry> staged;
    Status failed = Status::OK();

    // WHEN MATCHED: per-file left-outer join target ⋈ source; rows whose
    // source side joined are rewritten through matched_exprs.
    if (!spec.matched_exprs.empty()) {
      // In the joined row [target cols..., source cols...] a non-null
      // source key marks a match (null keys never join).
      const int probe_key_col =
          target_width + spec.source_keys[0];
      for (const DeltaFileEntry& file : snapshot.files) {
        failed = CheckCancelled(ctx);
        if (!failed.ok()) break;
        plan::PlanPtr joined_plan = plan::Join(
            FileScan(table, snapshot, file, options.io),
            plan::Scan(&source), JoinType::kLeftOuter, target_key_exprs,
            source_key_exprs);
        const Schema joined_schema = joined_plan->output_schema;
        ExprPtr is_matched = eb::IsNotNull(ColRef(joined_schema,
                                                  probe_key_col));
        Result<Table> joined = driver->RunSingleTask(joined_plan, ctx);
        if (!joined.ok()) {
          failed = joined.status();
          break;
        }
        Result<Table> matches = driver->RunSingleTask(
            plan::Filter(plan::Scan(&*joined), is_matched), ctx);
        if (!matches.ok()) {
          failed = matches.status();
          break;
        }
        const int64_t matched = matches->num_rows();
        if (matched == 0) continue;
        std::vector<ExprPtr> exprs;
        for (int i = 0; i < target_width; i++) {
          const DataType& type = schema.field(i).type;
          exprs.push_back(eb::If(is_matched,
                                 CastTo(spec.matched_exprs[i], type),
                                 ColRef(joined_schema, i)));
        }
        Result<Table> rewritten = driver->RunSingleTask(
            plan::Project(plan::Scan(&*joined), exprs, FieldNames(schema)),
            ctx);
        if (!rewritten.ok()) {
          failed = rewritten.status();
          break;
        }
        Result<DeltaFileEntry> entry =
            table->WriteDataFile(*rewritten, options.write);
        if (!entry.ok()) {
          failed = entry.status();
          break;
        }
        result.rows_affected += matched;
        tx.read_files.push_back(file.key);
        tx.remove_keys.push_back(file.key);
        staged.push_back(*std::move(entry));
      }
    }

    // WHEN NOT MATCHED: anti-join the source against the whole target's
    // key columns; survivors become one inserted file.
    if (failed.ok() && !spec.insert_exprs.empty()) {
      failed = CheckCancelled(ctx);
      if (failed.ok()) {
        // Build side scans only the key columns of every target file.
        std::vector<int> key_cols(spec.target_keys.begin(),
                                  spec.target_keys.end());
        plan::PlanPtr build =
            plan::DeltaScan(table->store(), snapshot, key_cols, nullptr,
                            options.io);
        std::vector<ExprPtr> build_key_exprs;
        for (size_t k = 0; k < num_keys; k++) {
          ExprPtr b = ColRef(build->output_schema, static_cast<int>(k));
          build_key_exprs.push_back(
              CastTo(std::move(b), source_key_exprs[k]->type()));
        }
        Result<Table> unmatched = driver->RunSingleTask(
            plan::Join(plan::Scan(&source), build, JoinType::kLeftAnti,
                       source_key_exprs, build_key_exprs),
            ctx);
        if (!unmatched.ok()) {
          failed = unmatched.status();
        } else if (unmatched->num_rows() > 0) {
          std::vector<ExprPtr> exprs;
          for (int i = 0; i < target_width; i++) {
            exprs.push_back(
                CastTo(spec.insert_exprs[i], schema.field(i).type));
          }
          Result<Table> inserts = driver->RunSingleTask(
              plan::Project(plan::Scan(&*unmatched), exprs,
                            FieldNames(schema)),
              ctx);
          if (!inserts.ok()) {
            failed = inserts.status();
          } else {
            Result<DeltaFileEntry> entry =
                table->WriteDataFile(*inserts, options.write);
            if (!entry.ok()) {
              failed = entry.status();
            } else {
              result.rows_inserted = inserts->num_rows();
              staged.push_back(*std::move(entry));
            }
          }
        }
      }
    }

    if (!failed.ok()) {
      ReleaseAll(table, staged);
      return failed;
    }
    if (staged.empty() && tx.remove_keys.empty()) {
      result.version = snapshot.version;  // nothing matched, nothing to add
      return result;
    }
    result.files_rewritten = static_cast<int64_t>(tx.remove_keys.size());
    tx.add_files = std::move(staged);
    Result<int64_t> version = table->Commit(tx);
    if (version.ok()) {
      result.version = *version;
      return result;
    }
    ReleaseAll(table, tx.add_files);
    if (!version.status().IsCommitConflict()) return version.status();
    conflicts++;
  }
  return RetriesExhausted(*table, "merge", options.max_retries);
}

}  // namespace dml
}  // namespace photon
