#include "exec/task_scheduler.h"

#include "common/macros.h"

namespace photon {
namespace exec {

TaskScheduler::TaskScheduler(int num_threads) {
  PHOTON_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int64_t TaskScheduler::RegisterQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  auto q = std::make_unique<QueryQueue>();
  q->id = next_query_id_++;
  queues_.push_back(std::move(q));
  return queues_.back()->id;
}

void TaskScheduler::UnregisterQuery(int64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < queues_.size(); i++) {
    if (queues_[i]->id != query_id) continue;
    queues_.erase(queues_.begin() + i);
    // Keep the cursor pointing at the same successor queue so removal of
    // an earlier query doesn't double-serve a later one this round.
    if (rr_ > i) rr_--;
    if (!queues_.empty()) rr_ %= queues_.size();
    return;
  }
  PHOTON_CHECK(false);  // unknown query id
}

void TaskScheduler::Enqueue(int64_t query_id, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& q : queues_) {
      if (q->id != query_id) continue;
      q->tasks.push_back(std::move(fn));
      cv_.notify_one();
      return;
    }
    PHOTON_CHECK(false);  // submit to an unregistered query
  }
}

std::function<void()> TaskScheduler::ClaimLocked() {
  const size_t n = queues_.size();
  for (size_t step = 0; step < n; step++) {
    QueryQueue& q = *queues_[(rr_ + step) % n];
    if (q.tasks.empty()) continue;
    std::function<void()> fn = std::move(q.tasks.front());
    q.tasks.pop_front();
    // Advance past the served queue: the next claim starts at its
    // successor, which is what makes service round-robin.
    rr_ = (rr_ + step + 1) % n;
    return fn;
  }
  return {};
}

void TaskScheduler::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        if (shutdown_) return true;
        for (const auto& q : queues_) {
          if (!q->tasks.empty()) return true;
        }
        return false;
      });
      task = ClaimLocked();
      if (task == nullptr) {
        if (shutdown_) return;
        continue;
      }
    }
    // Counted before running: a task's future can be observed complete
    // the instant it finishes, and the count must not lag behind it.
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
}

}  // namespace exec
}  // namespace photon
