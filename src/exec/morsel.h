#ifndef PHOTON_EXEC_MORSEL_H_
#define PHOTON_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "ops/operator.h"
#include "ops/scan.h"
#include "vector/table.h"

namespace photon {
namespace exec {

/// A contiguous range of work units — table batches or scan files — one
/// task's slice of a stage's input (morsel-driven parallelism). The
/// decomposition is a function of the input only, never of the thread
/// count, so a plan produces the same per-morsel partials (and therefore
/// the same final result) at any parallelism.
struct Morsel {
  int begin = 0;
  int end = 0;  // exclusive
};

/// Splits `total` units into morsels of `per_morsel` units (the last may
/// be short). `total == 0` yields one empty morsel so every stage runs at
/// least one task — scalar aggregates must still emit their empty-input
/// row.
inline std::vector<Morsel> SplitMorsels(int total, int per_morsel) {
  std::vector<Morsel> morsels;
  if (total <= 0) {
    morsels.push_back(Morsel{0, 0});
    return morsels;
  }
  for (int begin = 0; begin < total; begin += per_morsel) {
    morsels.push_back(Morsel{begin, std::min(total, begin + per_morsel)});
  }
  return morsels;
}

/// Shared work queue for one stage: workers claim the next morsel index
/// with a single atomic increment (no locks, no static partitioning), so
/// a task finishing a cheap morsel immediately steals the next one —
/// dynamic load balancing across skewed morsels.
class MorselQueue {
 public:
  explicit MorselQueue(int num_morsels) : num_(num_morsels) {}

  /// Claims the next morsel index, or -1 when the queue is drained.
  int Next() {
    int i = next_.fetch_add(1, std::memory_order_relaxed);
    return i < num_ ? i : -1;
  }

 private:
  std::atomic<int> next_{0};
  int num_;
};

/// A scan over a contiguous range of a table's batches (one task's morsel
/// of an in-memory input). Values and null bytes are copied into a
/// scan-owned batch (string bytes shared zero-copy; the table outlives
/// the query) so downstream operators may rewrite position lists freely.
class TableSliceScan : public Operator {
 public:
  TableSliceScan(const Table* table, int begin_batch, int end_batch)
      : Operator(table->schema()),
        table_(table),
        begin_(begin_batch),
        end_(end_batch) {}

  Status Open() override {
    next_ = begin_;
    return Status::OK();
  }

  Result<ColumnBatch*> GetNextImpl() override {
    if (next_ >= end_) return nullptr;
    const ColumnBatch& src = table_->batch(next_++);
    if (out_ == nullptr || out_->capacity() < src.num_rows()) {
      out_ = std::make_unique<ColumnBatch>(
          table_->schema(), std::max(src.capacity(), kDefaultBatchSize));
    }
    CopyBatchShallow(src, out_.get());
    return out_.get();
  }

  std::string name() const override { return "TableSliceScan"; }

 private:
  const Table* table_;
  int begin_;
  int end_;
  int next_ = 0;
  std::unique_ptr<ColumnBatch> out_;
};

}  // namespace exec
}  // namespace photon

#endif  // PHOTON_EXEC_MORSEL_H_
