#include "exec/compactor.h"

#include <chrono>
#include <utility>

#include "plan/logical_plan.h"

namespace photon {
namespace exec {

Compactor::Compactor(DeltaTable* table, Options options,
                     TaskScheduler* scheduler)
    : table_(table), options_(options), scheduler_(scheduler) {}

Compactor::~Compactor() { Stop(); }

Status Compactor::RunOncePass() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.passes++;
  }
  PHOTON_ASSIGN_OR_RETURN(DeltaSnapshot snapshot, table_->Snapshot());

  // Greedy grouping in log order: accumulate small files until the row
  // budget closes the group.
  std::vector<std::vector<DeltaFileEntry>> groups;
  std::vector<DeltaFileEntry> current;
  int64_t current_rows = 0;
  for (const DeltaFileEntry& file : snapshot.files) {
    if (file.num_rows >= options_.small_file_rows) continue;
    current.push_back(file);
    current_rows += file.num_rows;
    if (current_rows >= options_.target_file_rows) {
      groups.push_back(std::move(current));
      current.clear();
      current_rows = 0;
    }
  }
  if (static_cast<int>(current.size()) >= options_.min_group_files) {
    groups.push_back(std::move(current));
  }

  for (std::vector<DeltaFileEntry>& group : groups) {
    if (static_cast<int>(group.size()) < options_.min_group_files) continue;
    DeltaSnapshot view;
    view.version = snapshot.version;
    view.schema = snapshot.schema;
    view.files = group;
    PHOTON_ASSIGN_OR_RETURN(
        Table coalesced,
        driver_.RunSingleTask(plan::DeltaScan(table_->store(),
                                              std::move(view), {}, nullptr,
                                              options_.io)));
    std::vector<std::string> keys;
    keys.reserve(group.size());
    for (const DeltaFileEntry& file : group) keys.push_back(file.key);
    Result<int64_t> version =
        table_->Rewrite(keys, coalesced, options_.write);
    std::lock_guard<std::mutex> lock(mu_);
    if (version.ok()) {
      stats_.commits++;
      stats_.files_compacted += static_cast<int64_t>(group.size());
      if (commit_listener_) commit_listener_(*version);
    } else if (version.status().IsCommitConflict()) {
      // A writer rewrote one of the group's files first. Its version of
      // the data supersedes ours; drop the group and move on.
      stats_.conflicts++;
    } else {
      return version.status();
    }
  }
  return Status::OK();
}

void Compactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  if (scheduler_ != nullptr) query_slot_ = scheduler_->RegisterQuery();
  thread_ = std::thread([this] { Loop(); });
}

void Compactor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  if (scheduler_ != nullptr && query_slot_ >= 0) {
    scheduler_->UnregisterQuery(query_slot_);
    query_slot_ = -1;
  }
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void Compactor::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_; });
      if (stop_) return;
    }
    Status status = Status::OK();
    if (scheduler_ != nullptr) {
      // Pass bodies are leaf work: they scan (may block on IO) and commit,
      // but never wait on another worker's future.
      std::future<Status> pass =
          scheduler_->Submit(query_slot_, [this] { return RunOncePass(); });
      status = pass.get();
    } else {
      status = RunOncePass();
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.failed_passes++;
    }
  }
}

Compactor::Stats Compactor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace exec
}  // namespace photon
