#ifndef PHOTON_EXEC_DRIVER_H_
#define PHOTON_EXEC_DRIVER_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/morsel.h"
#include "exec/task_scheduler.h"
#include "exec/thread_pool.h"
#include "obs/profile.h"
#include "ops/hash_aggregate.h"
#include "ops/shuffle.h"
#include "plan/logical_plan.h"
#include "plan/stage_planner.h"

namespace photon {
namespace exec {

/// Per-stage execution summary: a thin view over the obs metrics registry
/// (the driver's slice of §5.5 live metrics). The snapshot is the merge of
/// every task's metric shards at the stage barrier, so it is filled
/// identically by the single-task and morsel-parallel paths, at every
/// thread count.
struct StageInfo {
  int stage_id = 0;
  int num_tasks = 0;
  /// Merged stage metrics (the full obs vocabulary).
  obs::MetricSnapshot m;

  int64_t rows_out() const { return m[obs::Metric::kRowsOut]; }
  int64_t batches() const { return m[obs::Metric::kBatches]; }
  int64_t wall_ns() const { return m[obs::Metric::kWallNs]; }
  int64_t cpu_ns() const { return m[obs::Metric::kCpuNs]; }
  int64_t shuffle_bytes() const { return m[obs::Metric::kShuffleBytes]; }
  int64_t spill_bytes() const { return m[obs::Metric::kSpillBytes]; }
  // Scan IO counters (src/io), summed over the stage's scan operators.
  int64_t bytes_read() const { return m[obs::Metric::kBytesRead]; }
  int64_t cache_hits() const { return m[obs::Metric::kCacheHits]; }
  int64_t prefetch_wait_ns() const {
    return m[obs::Metric::kPrefetchWaitNs];
  }
  int64_t files_read() const { return m[obs::Metric::kFilesRead]; }
  int64_t row_groups_skipped() const {
    return m[obs::Metric::kRowGroupsSkipped];
  }
};

/// A miniature DBR driver (§2.2): breaks a job into stages at exchange
/// boundaries, launches tasks on the executor thread pool, and blocks at
/// stage boundaries (stage N+1 starts after stage N finishes, which is
/// what enables fault tolerance and adaptive execution at stage
/// boundaries in the real system).
class Driver {
 public:
  /// Standalone driver owning its pools. Pool sizes are explicit per
  /// pool: `num_threads` workers execute morsel tasks; `io_threads` run
  /// scan read-aheads. `io_threads < 0` (the documented default) sizes
  /// the IO pool to max(2, num_threads) — enough to double-buffer every
  /// worker without assuming anything about hardware concurrency.
  explicit Driver(int num_threads = 4, int io_threads = -1)
      : owned_pool_(std::make_unique<ThreadPool>(num_threads)),
        owned_io_pool_(std::make_unique<ThreadPool>(
            io_threads >= 0 ? io_threads : std::max(2, num_threads))),
        pool_(owned_pool_.get()),
        io_pool_(owned_io_pool_.get()) {}

  /// Service-mode driver: no pools of its own. Morsel tasks go to
  /// `scheduler`'s shared worker pool on the per-query queue
  /// `query_slot` (see TaskScheduler — queues are drained round-robin
  /// across queries, so this driver's stages cannot starve a peer's).
  /// Read-aheads go to the shared `io_pool`. One task is submitted per
  /// morsel, so fairness is morsel-granular; stage barriers block the
  /// calling (per-session control) thread, never a scheduler worker.
  Driver(TaskScheduler* scheduler, int64_t query_slot, ThreadPool* io_pool)
      : scheduler_(scheduler), query_slot_(query_slot), io_pool_(io_pool) {}

  /// Runs an arbitrary logical plan multi-threaded. The plan is cut into
  /// stages at pipeline breakers (stage_planner.h); each stage's input is
  /// split into morsels — fixed-size table batch ranges, or file ranges
  /// for lakehouse scans — which worker tasks claim from a shared atomic
  /// queue. Pipeline breakers execute parallelism-aware:
  ///   - aggregates run one partial aggregate per morsel and a final
  ///     merge stage over the serialized states (exact for every kind);
  ///   - joins build their hash table once and probe it from all tasks;
  ///   - sorts produce one sorted run per morsel, k-way merged at the
  ///     stage boundary.
  /// The morsel decomposition depends only on the input, so the result
  /// table (rows *and* row order) is identical for every thread count.
  ///
  /// Observability: when `stages` is non-null one StageInfo per executed
  /// stage is appended in completion order; when `profile` is non-null it
  /// receives the full QueryProfile tree (one node per plan operator per
  /// stage, per-task min/max/sum). With both null the run does no profile
  /// bookkeeping at all beyond the operators' own counters.
  Result<Table> Run(const plan::PlanPtr& plan, ExecContext ctx = {},
                    std::vector<StageInfo>* stages = nullptr,
                    obs::QueryProfile* profile = nullptr);

  /// Two-stage distributed aggregation:
  ///   Stage 1 (map):    split the input into one task per executor
  ///                     thread; each task pipes its slice through a
  ///                     Photon shuffle write hash-partitioned by `keys`.
  ///   Stage 2 (reduce): one task per partition aggregates its partition.
  /// Results are concatenated (order unspecified).
  Result<Table> RunShuffledAggregate(const Table& input,
                                     std::vector<ExprPtr> keys,
                                     std::vector<std::string> key_names,
                                     std::vector<AggregateSpec> aggs,
                                     int num_partitions,
                                     std::vector<StageInfo>* stages = nullptr);

  /// Runs a single-task (single-threaded) Photon plan, like one task of a
  /// stage (Figure 1: "Photon executes tasks on partitions of data on a
  /// single thread"). When `stage` is non-null it is filled with the
  /// task's rows/wall time plus the resource metrics (IO, memory, spill)
  /// folded over the plan's operator tree.
  Result<Table> RunSingleTask(const plan::PlanPtr& plan, ExecContext ctx = {},
                              StageInfo* stage = nullptr);

  /// Worker parallelism: the owned pool's size, or the shared
  /// scheduler's in service mode.
  int num_threads() const {
    return scheduler_ != nullptr ? scheduler_->num_threads()
                                 : pool_->num_threads();
  }

 private:
  struct RunState;        // per-Run bookkeeping (ctx, stage list, profile)
  struct StagedFragment;  // compiled fragment + its materialized inputs

  /// Operator tree to drain for one morsel: the fragment chain, optionally
  /// wrapped (partial aggregate, sort) by the breaker above it.
  using WrapFn =
      std::function<Result<OperatorPtr>(OperatorPtr, const ExecContext&)>;
  /// (operator, profile node) pairs harvested into task shards after a
  /// morsel chain is drained.
  using Harvest = std::vector<std::pair<Operator*, int>>;

  Result<Table> RunNode(const plan::PlanPtr& node, RunState* state,
                        int parent_node);
  Result<Table> RunFragment(const plan::PlanPtr& node, RunState* state,
                            int parent_node);
  Result<Table> RunAggregate(const plan::PlanPtr& node, RunState* state,
                             int parent_node);
  Result<Table> RunSort(const plan::PlanPtr& node, RunState* state,
                        int parent_node);
  Result<StagedFragment> PrepareFragment(const plan::PlanPtr& root,
                                         RunState* state);
  Result<OperatorPtr> InstantiateFragment(const StagedFragment& frag,
                                          Morsel morsel,
                                          const ExecContext& task_ctx,
                                          Harvest* harvest);
  Result<std::vector<std::unique_ptr<Table>>> RunMorselStage(
      const StagedFragment& frag, RunState* state, const WrapFn& wrap,
      int wrap_node_id, StageInfo* info);

  /// Submits a worker task: to the shared scheduler's per-query queue in
  /// service mode, else to the owned pool.
  template <typename Fn>
  auto SubmitTask(Fn&& fn) -> std::future<decltype(fn())> {
    if (scheduler_ != nullptr) {
      return scheduler_->Submit(query_slot_, std::forward<Fn>(fn));
    }
    return pool_->Submit(std::forward<Fn>(fn));
  }

  std::unique_ptr<ThreadPool> owned_pool_;
  std::unique_ptr<ThreadPool> owned_io_pool_;
  /// Shared fair scheduler + this query's queue slot (service mode only).
  TaskScheduler* scheduler_ = nullptr;
  int64_t query_slot_ = 0;
  /// Worker pool; null in service mode (scheduler_ used instead).
  ThreadPool* pool_ = nullptr;
  /// Dedicated pool for scan read-aheads. Prefetch futures must never
  /// queue behind the worker tasks that block on them — with a saturated
  /// shared pool that is a deadlock. Shared across sessions in service
  /// mode (prefetch tasks are leaf work and never wait on workers).
  ThreadPool* io_pool_ = nullptr;
};

}  // namespace exec
}  // namespace photon

#endif  // PHOTON_EXEC_DRIVER_H_
