#ifndef PHOTON_EXEC_DRIVER_H_
#define PHOTON_EXEC_DRIVER_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/thread_pool.h"
#include "ops/hash_aggregate.h"
#include "ops/shuffle.h"
#include "plan/logical_plan.h"

namespace photon {
namespace exec {

/// Per-stage execution summary (the driver's view; feeds the live-metrics
/// story of §5.5 at miniature scale).
struct StageInfo {
  int stage_id = 0;
  int num_tasks = 0;
  int64_t rows_out = 0;
  int64_t shuffle_bytes = 0;
  int64_t wall_ns = 0;
  // Scan IO counters (src/io), summed over the stage's scan operators.
  int64_t bytes_read = 0;
  int64_t cache_hits = 0;
  int64_t prefetch_wait_ns = 0;
  int64_t files_read = 0;
  int64_t row_groups_skipped = 0;
};

/// Walks an operator tree and folds every file scan's IO counters
/// (bytes read, block-cache hits, prefetch stalls, data skipping) into
/// `info` — the per-stage view of the §5.5 live metrics.
void AccumulateIoStats(Operator* root, StageInfo* info);

/// A miniature DBR driver (§2.2): breaks a job into stages at exchange
/// boundaries, launches one task per partition on the executor thread
/// pool, and blocks at stage boundaries (stage N+1 starts after stage N
/// finishes, which is what enables fault tolerance and adaptive execution
/// at stage boundaries in the real system).
class Driver {
 public:
  explicit Driver(int num_threads = 4) : pool_(num_threads) {}

  /// Two-stage distributed aggregation:
  ///   Stage 1 (map):    split the input into one task per executor
  ///                     thread; each task pipes its slice through a
  ///                     Photon shuffle write hash-partitioned by `keys`.
  ///   Stage 2 (reduce): one task per partition aggregates its partition.
  /// Results are concatenated (order unspecified).
  Result<Table> RunShuffledAggregate(const Table& input,
                                     std::vector<ExprPtr> keys,
                                     std::vector<std::string> key_names,
                                     std::vector<AggregateSpec> aggs,
                                     int num_partitions,
                                     std::vector<StageInfo>* stages = nullptr);

  /// Runs a single-task (single-threaded) Photon plan, like one task of a
  /// stage (Figure 1: "Photon executes tasks on partitions of data on a
  /// single thread"). When `stage` is non-null it is filled with the
  /// task's rows/wall time and the scan IO counters of the plan's tree.
  Result<Table> RunSingleTask(const plan::PlanPtr& plan, ExecContext ctx = {},
                              StageInfo* stage = nullptr);

 private:
  ThreadPool pool_;
  int64_t next_shuffle_id_ = 0;
};

}  // namespace exec
}  // namespace photon

#endif  // PHOTON_EXEC_DRIVER_H_
