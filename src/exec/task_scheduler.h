#ifndef PHOTON_EXEC_TASK_SCHEDULER_H_
#define PHOTON_EXEC_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace photon {
namespace exec {

/// Fair cross-query task scheduler: one fixed worker pool shared by every
/// concurrent query, pulling from *per-query* task queues round-robin
/// instead of one global FIFO. With a global queue, a long scan that
/// enqueues 200 morsel tasks starves a point query submitted a moment
/// later; with round-robin per-query queues each registered query gets one
/// task slot per scheduling round, so the point query's two morsels run
/// after at most one round regardless of how deep its neighbor's backlog
/// is (the Shark/ytsaurus multi-user serving model, task-granular).
///
/// Tasks must be leaf work: they may block on IO or on memory
/// backpressure, but never on a future produced by another worker task of
/// this scheduler (that can deadlock a fully loaded pool). The drivers'
/// stage barriers run on per-session control threads, not on workers.
class TaskScheduler {
 public:
  /// `num_threads` is explicit — callers decide worker parallelism (see
  /// ServiceOptions); the scheduler makes no hardware-concurrency
  /// assumptions of its own.
  explicit TaskScheduler(int num_threads);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Registers a query, returning its queue id. Queries are scheduled
  /// round-robin in registration order.
  int64_t RegisterQuery();

  /// Unregisters a query. The caller must have joined all of the query's
  /// task futures first; any task still queued is discarded (its future
  /// is abandoned — only a bug reaches that state).
  void UnregisterQuery(int64_t query_id);

  /// Enqueues a task on `query_id`'s queue; the returned future delivers
  /// its result (or rethrows).
  template <typename Fn>
  auto Submit(int64_t query_id, Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    Enqueue(query_id, [task] { (*task)(); });
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Total tasks executed (service-level observability).
  int64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct QueryQueue {
    int64_t id = 0;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(int64_t query_id, std::function<void()> fn);
  void WorkerLoop();
  /// Picks the next task round-robin across non-empty queues; empty
  /// function when all queues are drained. Caller must hold mu_.
  std::function<void()> ClaimLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Registration order; rotated through by rr_. Erasing keeps order.
  std::vector<std::unique_ptr<QueryQueue>> queues_;
  size_t rr_ = 0;
  int64_t next_query_id_ = 1;
  bool shutdown_ = false;
  std::atomic<int64_t> tasks_executed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace photon

#endif  // PHOTON_EXEC_TASK_SCHEDULER_H_
