#ifndef PHOTON_EXEC_DML_H_
#define PHOTON_EXEC_DML_H_

#include <string>
#include <vector>

#include "exec/driver.h"
#include "io/caching_store.h"
#include "plan/logical_plan.h"
#include "storage/delta.h"

namespace photon {
namespace dml {

/// Knobs shared by every DML executor.
struct DmlOptions {
  /// Format options for rewritten/inserted data files.
  FormatWriteOptions write;
  /// IO wiring (block cache, prefetch) for the copy-on-write scans.
  io::IoOptions io;
  /// How many CommitConflict aborts to absorb by re-reading the table and
  /// re-deriving the write before giving up and surfacing the conflict.
  int max_retries = 8;
};

/// Outcome of one DML statement.
struct DmlResult {
  /// Log version the statement committed as. A statement that matched
  /// nothing commits nothing and reports the snapshot version it read.
  int64_t version = -1;
  /// Rows deleted (DELETE), updated (UPDATE), or merge-updated (MERGE).
  int64_t rows_affected = 0;
  /// Rows inserted by MERGE's WHEN NOT MATCHED clause.
  int64_t rows_inserted = 0;
  /// Data files rewritten copy-on-write.
  int64_t files_rewritten = 0;
  /// Files the zone-map pruner proved untouched (never read or rewritten).
  int64_t files_pruned = 0;
  /// CommitConflict aborts that were retried from a fresh snapshot.
  int64_t conflicts_retried = 0;
};

/// One UPDATE ... SET assignment: `column` (index into the table schema)
/// takes `value`, an expression over the table's columns evaluated against
/// the pre-update row. Values are cast to the column type if needed.
struct UpdateAssignment {
  int column = -1;
  ExprPtr value;
};

/// MERGE INTO target USING source ON target.key = source.key ...
/// The source is an arbitrary logical plan, materialized once per attempt.
/// Source keys must be unique — each target row matches at most one source
/// row — which keeps the copy-on-write join cardinality-preserving (the
/// differ's workload generator dedupes by key for exactly this reason).
struct MergeSpec {
  plan::PlanPtr source;
  /// Equi-join key columns: indices into the target schema / source schema.
  std::vector<int> target_keys;
  std::vector<int> source_keys;
  /// WHEN MATCHED THEN UPDATE: one expression per target column, over the
  /// combined [target columns..., source columns...] row. Empty = no
  /// matched clause (matched rows pass through untouched).
  std::vector<ExprPtr> matched_exprs;
  /// WHEN NOT MATCHED THEN INSERT: one expression per target column, over
  /// the source columns. Empty = no insert clause.
  std::vector<ExprPtr> insert_exprs;
};

/// DELETE FROM `table` WHERE `predicate` (over the table's columns).
///
/// Copy-on-write at file granularity (DESIGN.md §15): zone-map pruning
/// narrows the candidate files, each candidate is scanned through the
/// engine keeping its surviving rows (rows where the predicate is false
/// OR NULL), files with any match are rewritten, and one optimistic
/// transaction removes the old files and adds the rewrites — so readers
/// see every row of the DELETE disappear atomically. The transaction
/// carries `predicate` as its read predicate: a concurrently appended
/// file whose stats may match aborts the commit (no lost phantoms), and
/// the executor retries from a fresh snapshot up to `max_retries` times.
Result<DmlResult> ExecuteDelete(DeltaTable* table, const ExprPtr& predicate,
                                exec::Driver* driver, const ExecContext& ctx,
                                const DmlOptions& options = {});

/// UPDATE `table` SET assignments WHERE `predicate` (null = all rows).
/// Same copy-on-write shape as ExecuteDelete; matched rows are rewritten
/// through a Project that evaluates each assignment against the old row.
Result<DmlResult> ExecuteUpdate(DeltaTable* table,
                                const std::vector<UpdateAssignment>& set,
                                const ExprPtr& predicate,
                                exec::Driver* driver, const ExecContext& ctx,
                                const DmlOptions& options = {});

/// MERGE: join-driven upsert. Per target file, a left-outer join against
/// the materialized source decides matched rows (rewritten via
/// matched_exprs); a left-anti join of the source against the whole
/// target's key columns yields the not-matched inserts. Because the
/// matched/not-matched split reads every file, the transaction sets
/// `reads_all_files` — any concurrent add or remove aborts and retries.
Result<DmlResult> ExecuteMerge(DeltaTable* table, const MergeSpec& spec,
                               exec::Driver* driver, const ExecContext& ctx,
                               const DmlOptions& options = {});

}  // namespace dml
}  // namespace photon

#endif  // PHOTON_EXEC_DML_H_
