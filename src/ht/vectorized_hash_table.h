#ifndef PHOTON_HT_VECTORIZED_HASH_TABLE_H_
#define PHOTON_HT_VECTORIZED_HASH_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "types/data_type.h"
#include "vector/column_batch.h"
#include "vector/var_len_pool.h"

namespace photon {

/// Photon's hash table, optimized for vectorized access (§4.4).
///
/// Lookups proceed in three batched steps:
///   1. a hashing kernel evaluates the hash function over a batch of keys;
///   2. a probe kernel uses the hashes to load candidate entry pointers —
///      the loads for a whole batch are issued in one tight loop, so the
///      hardware can overlap the cache misses (memory-level parallelism);
///   3. a vectorized comparison checks entries against lookup keys
///      column-by-column, producing a position list of non-matching rows,
///      which re-probe at the next quadratic step.
///
/// Entries are stored as rows (a single pointer represents composite keys),
/// in arena-allocated fixed-size slots:
///
///   [ hash u64 | null_mask u64 | next ptr | key slots... | payload ]
///
/// `next` chains duplicate-key entries (used by hash join builds). Growing
/// the bucket array re-buckets pointers by stored hash — entries are never
/// copied (the paper notes "avoiding copies during hash table resizing").
class VectorizedHashTable {
 public:
  /// `payload_bytes` is the caller-defined state area per entry (aggregate
  /// state or join build columns). If `match_null_keys` is true, NULL key
  /// values compare equal to each other (group-by semantics); if false, a
  /// row with any NULL key never matches or inserts (join semantics).
  VectorizedHashTable(std::vector<DataType> key_types, int payload_bytes,
                      bool match_null_keys);

  VectorizedHashTable(const VectorizedHashTable&) = delete;
  VectorizedHashTable& operator=(const VectorizedHashTable&) = delete;

  /// Step 1: hashing kernel. Computes combined hashes of the key columns
  /// for the batch's active rows, densely into `hashes[0..num_active)`.
  static void HashKeys(const std::vector<const ColumnVector*>& keys,
                       const ColumnBatch& batch, uint64_t* hashes);

  /// Reusable per-caller scratch for the batched probe loop, so concurrent
  /// probers (parallel hash-join tasks) can share one read-only table.
  struct ProbeScratch {
    std::vector<int32_t> remaining;
    std::vector<int32_t> steps;
    std::vector<uint8_t*> candidates;
  };

  /// Finds the entry for each active row, or nullptr. `entries_out` is
  /// indexed densely (i-th active row).
  void Lookup(const std::vector<const ColumnVector*>& keys,
              const ColumnBatch& batch, const uint64_t* hashes,
              uint8_t** entries_out);

  /// Thread-safe probe: identical to Lookup() but const, with all mutable
  /// state in caller-provided `scratch`. Safe to call from many threads
  /// concurrently as long as no thread mutates the table.
  void Lookup(const std::vector<const ColumnVector*>& keys,
              const ColumnBatch& batch, const uint64_t* hashes,
              uint8_t** entries_out, ProbeScratch* scratch) const;

  /// Finds or creates the entry for each active row. `inserted_out[i]` is
  /// true when a new entry was created (payload must then be initialized by
  /// the caller). Rows with NULL keys get nullptr entries when
  /// `match_null_keys` is false.
  Status LookupOrInsert(const std::vector<const ColumnVector*>& keys,
                        const ColumnBatch& batch, const uint64_t* hashes,
                        uint8_t** entries_out, bool* inserted_out);

  /// Inserts a duplicate-key entry chained behind `head` (hash join
  /// builds). Keys are copied from the head entry; returns the new entry
  /// whose payload the caller fills.
  uint8_t* InsertChained(uint8_t* head);

  /// Entry accessors -------------------------------------------------------

  uint8_t* payload(uint8_t* entry) const { return entry + payload_offset_; }
  const uint8_t* payload(const uint8_t* entry) const {
    return entry + payload_offset_;
  }
  static uint8_t* next(const uint8_t* entry) {
    uint8_t* p;
    std::memcpy(&p, entry + kNextOffset, sizeof(p));
    return p;
  }

  /// Reads key column `k` of an entry as a boxed value (output paths).
  Value GetKeyValue(const uint8_t* entry, int k) const;
  bool KeyIsNull(const uint8_t* entry, int k) const {
    uint64_t mask;
    std::memcpy(&mask, entry + kNullMaskOffset, sizeof(mask));
    return (mask >> k) & 1;
  }
  /// Raw pointer to key slot `k` within the entry.
  const uint8_t* key_slot(const uint8_t* entry, int k) const {
    return entry + key_offsets_[k];
  }

  int64_t num_entries() const { return num_entries_; }
  /// Total bytes held (buckets + entry arena + string arena).
  int64_t memory_bytes() const;

  /// Visits every chain-head entry (and not chained duplicates).
  void ForEachEntry(const std::function<void(uint8_t*)>& fn) const;
  /// Visits every entry including chained duplicates.
  void ForEachEntryWithChains(const std::function<void(uint8_t*)>& fn) const;

  /// Drops all entries and shrinks to the initial bucket count.
  void Clear();

  int num_keys() const { return static_cast<int>(key_types_.size()); }
  const DataType& key_type(int k) const { return key_types_[k]; }

  /// Hash value stored in an entry.
  static uint64_t entry_hash(const uint8_t* entry) {
    uint64_t h;
    std::memcpy(&h, entry, sizeof(h));
    return h;
  }

  /// Statistics for metrics/observability.
  int64_t num_resizes() const { return num_resizes_; }

  /// Arena backing string keys; payload writers (hash join build rows) also
  /// copy their variable-length data here so it lives as long as the table.
  VarLenPool* string_arena() { return &strings_; }

 private:
  static constexpr int kHashOffset = 0;
  static constexpr int kNullMaskOffset = 8;
  static constexpr int kNextOffset = 16;
  static constexpr int kHeaderBytes = 24;
  static constexpr int kInitialBuckets = 1024;
  static constexpr double kMaxLoadFactor = 0.6;

  uint8_t* AllocateEntry();
  void CopyKeysToEntry(const std::vector<const ColumnVector*>& keys,
                       int row, uint64_t hash, uint8_t* entry);
  bool EntryMatchesRow(const uint8_t* entry, uint64_t hash,
                       const std::vector<const ColumnVector*>& keys,
                       int row) const;
  void Grow();

  std::vector<DataType> key_types_;
  std::vector<int> key_offsets_;
  int payload_offset_;
  int entry_bytes_;
  bool match_null_keys_;

  std::vector<uint8_t*> buckets_;
  uint64_t bucket_mask_;
  int64_t num_entries_ = 0;
  int64_t num_resizes_ = 0;

  // Entry arena: fixed-size slots bump-allocated from chunks.
  std::vector<std::unique_ptr<uint8_t[]>> chunks_;
  int chunk_capacity_;
  int chunk_used_ = 0;
  // String key/payload bytes.
  VarLenPool strings_;

  // Scratch for the batched probe loop.
  std::vector<int32_t> scratch_remaining_;
  std::vector<int32_t> scratch_steps_;
};

}  // namespace photon

#endif  // PHOTON_HT_VECTORIZED_HASH_TABLE_H_
