#include "ht/vectorized_hash_table.h"

#include <cstring>

#include "common/hash.h"
#include "common/macros.h"

namespace photon {
namespace {

// Hash contribution of a NULL key value.
constexpr uint64_t kNullHash = 0x9D5E350AFD3CB6D1ULL;

// Hashing kernels: one tight loop per (type, first-or-combine, activity)
// shape so the compiler can vectorize the common dense case.
template <typename T, bool kFirst>
void HashFixedKernel(const T* PHOTON_RESTRICT values,
                     const uint8_t* PHOTON_RESTRICT nulls,
                     const int32_t* PHOTON_RESTRICT pos_list, int n,
                     bool all_active, uint64_t* PHOTON_RESTRICT hashes) {
  for (int i = 0; i < n; i++) {
    int row = all_active ? i : pos_list[i];
    uint64_t h = nulls[row] ? kNullHash
                            : HashMix64(static_cast<uint64_t>(values[row]));
    if constexpr (kFirst) {
      hashes[i] = h;
    } else {
      hashes[i] = HashCombine(hashes[i], h);
    }
  }
}

template <bool kFirst>
void HashDecimalKernel(const int128_t* PHOTON_RESTRICT values,
                       const uint8_t* PHOTON_RESTRICT nulls,
                       const int32_t* PHOTON_RESTRICT pos_list, int n,
                       bool all_active, uint64_t* PHOTON_RESTRICT hashes) {
  for (int i = 0; i < n; i++) {
    int row = all_active ? i : pos_list[i];
    uint64_t h;
    if (nulls[row]) {
      h = kNullHash;
    } else {
      uint128_t v = static_cast<uint128_t>(values[row]);
      h = HashMix64(static_cast<uint64_t>(v) ^
                    (HashMix64(static_cast<uint64_t>(v >> 64))));
    }
    if constexpr (kFirst) {
      hashes[i] = h;
    } else {
      hashes[i] = HashCombine(hashes[i], h);
    }
  }
}

template <bool kFirst>
void HashStringKernel(const StringRef* values, const uint8_t* nulls,
                      const int32_t* pos_list, int n, bool all_active,
                      uint64_t* hashes) {
  for (int i = 0; i < n; i++) {
    int row = all_active ? i : pos_list[i];
    uint64_t h = nulls[row]
                     ? kNullHash
                     : HashBytes(values[row].data, values[row].len);
    if constexpr (kFirst) {
      hashes[i] = h;
    } else {
      hashes[i] = HashCombine(hashes[i], h);
    }
  }
}

template <bool kFirst>
void HashColumn(const ColumnVector& col, const ColumnBatch& batch,
                uint64_t* hashes) {
  int n = batch.num_active();
  const int32_t* pos = batch.pos_list();
  bool all = batch.all_active();
  const uint8_t* nulls = col.nulls();
  switch (col.type().id()) {
    case TypeId::kBoolean:
      HashFixedKernel<uint8_t, kFirst>(col.data<uint8_t>(), nulls, pos, n,
                                       all, hashes);
      break;
    case TypeId::kInt32:
    case TypeId::kDate32:
      HashFixedKernel<int32_t, kFirst>(col.data<int32_t>(), nulls, pos, n,
                                       all, hashes);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      HashFixedKernel<int64_t, kFirst>(col.data<int64_t>(), nulls, pos, n,
                                       all, hashes);
      break;
    case TypeId::kFloat64: {
      // Hash the bit pattern; normalize -0.0 to 0.0 first.
      const double* vals = col.data<double>();
      for (int i = 0; i < n; i++) {
        int row = all ? i : pos[i];
        uint64_t h;
        if (nulls[row]) {
          h = kNullHash;
        } else {
          double d = vals[row] == 0.0 ? 0.0 : vals[row];
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          h = HashMix64(bits);
        }
        if constexpr (kFirst) {
          hashes[i] = h;
        } else {
          hashes[i] = HashCombine(hashes[i], h);
        }
      }
      break;
    }
    case TypeId::kDecimal128:
      HashDecimalKernel<kFirst>(col.data<int128_t>(), nulls, pos, n, all,
                                hashes);
      break;
    case TypeId::kString:
      HashStringKernel<kFirst>(col.data<StringRef>(), nulls, pos, n, all,
                               hashes);
      break;
  }
}

}  // namespace

VectorizedHashTable::VectorizedHashTable(std::vector<DataType> key_types,
                                         int payload_bytes,
                                         bool match_null_keys)
    : key_types_(std::move(key_types)), match_null_keys_(match_null_keys) {
  PHOTON_CHECK(key_types_.size() <= 64);
  int offset = kHeaderBytes;
  for (const DataType& t : key_types_) {
    // 8-align every slot; decimal/string slots are 16 bytes.
    offset = (offset + 7) & ~7;
    key_offsets_.push_back(offset);
    offset += t.byte_width();
  }
  // The payload may embed __int128 aggregate state, which the compiler
  // accesses with 16-byte-aligned instructions: align the payload (and the
  // entry stride) to 16 so every entry's payload is 16-aligned.
  offset = (offset + 15) & ~15;
  payload_offset_ = offset;
  entry_bytes_ = offset + payload_bytes;
  entry_bytes_ = (entry_bytes_ + 15) & ~15;
  chunk_capacity_ = std::max(1, (64 * 1024) / entry_bytes_);

  buckets_.assign(kInitialBuckets, nullptr);
  bucket_mask_ = kInitialBuckets - 1;
}

void VectorizedHashTable::HashKeys(
    const std::vector<const ColumnVector*>& keys, const ColumnBatch& batch,
    uint64_t* hashes) {
  PHOTON_CHECK(!keys.empty());
  HashColumn<true>(*keys[0], batch, hashes);
  for (size_t k = 1; k < keys.size(); k++) {
    HashColumn<false>(*keys[k], batch, hashes);
  }
}

uint8_t* VectorizedHashTable::AllocateEntry() {
  if (chunks_.empty() || chunk_used_ == chunk_capacity_) {
    chunks_.push_back(std::make_unique<uint8_t[]>(
        static_cast<size_t>(chunk_capacity_) * entry_bytes_));
    chunk_used_ = 0;
  }
  uint8_t* entry =
      chunks_.back().get() + static_cast<size_t>(chunk_used_) * entry_bytes_;
  chunk_used_++;
  std::memset(entry, 0, entry_bytes_);
  return entry;
}

void VectorizedHashTable::CopyKeysToEntry(
    const std::vector<const ColumnVector*>& keys, int row, uint64_t hash,
    uint8_t* entry) {
  std::memcpy(entry + kHashOffset, &hash, 8);
  uint64_t null_mask = 0;
  for (size_t k = 0; k < keys.size(); k++) {
    const ColumnVector& col = *keys[k];
    uint8_t* slot = entry + key_offsets_[k];
    if (col.IsNull(row)) {
      null_mask |= (uint64_t{1} << k);
      continue;
    }
    switch (col.type().id()) {
      case TypeId::kBoolean:
        *slot = col.data<uint8_t>()[row];
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        std::memcpy(slot, &col.data<int32_t>()[row], 4);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        std::memcpy(slot, &col.data<int64_t>()[row], 8);
        break;
      case TypeId::kFloat64:
        std::memcpy(slot, &col.data<double>()[row], 8);
        break;
      case TypeId::kDecimal128:
        std::memcpy(slot, &col.data<int128_t>()[row], 16);
        break;
      case TypeId::kString: {
        // Copy the bytes into the table-owned arena so entries outlive the
        // probe batch.
        StringRef s = col.data<StringRef>()[row];
        StringRef owned = strings_.AddString(s);
        std::memcpy(slot, &owned, sizeof(owned));
        break;
      }
    }
  }
  std::memcpy(entry + kNullMaskOffset, &null_mask, 8);
}

bool VectorizedHashTable::EntryMatchesRow(
    const uint8_t* entry, uint64_t hash,
    const std::vector<const ColumnVector*>& keys, int row) const {
  if (entry_hash(entry) != hash) return false;
  uint64_t null_mask;
  std::memcpy(&null_mask, entry + kNullMaskOffset, 8);
  for (size_t k = 0; k < keys.size(); k++) {
    const ColumnVector& col = *keys[k];
    bool row_null = col.IsNull(row);
    bool entry_null = (null_mask >> k) & 1;
    if (row_null != entry_null) return false;
    if (row_null) continue;  // both NULL: equal under group-by semantics
    const uint8_t* slot = entry + key_offsets_[k];
    switch (col.type().id()) {
      case TypeId::kBoolean:
        if (*slot != col.data<uint8_t>()[row]) return false;
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        if (std::memcmp(slot, &col.data<int32_t>()[row], 4) != 0) {
          return false;
        }
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        if (std::memcmp(slot, &col.data<int64_t>()[row], 8) != 0) {
          return false;
        }
        break;
      case TypeId::kFloat64:
        if (std::memcmp(slot, &col.data<double>()[row], 8) != 0) {
          return false;
        }
        break;
      case TypeId::kDecimal128:
        if (std::memcmp(slot, &col.data<int128_t>()[row], 16) != 0) {
          return false;
        }
        break;
      case TypeId::kString: {
        StringRef entry_str;
        std::memcpy(&entry_str, slot, sizeof(entry_str));
        StringRef row_str = col.data<StringRef>()[row];
        if (!(entry_str == row_str)) return false;
        break;
      }
    }
  }
  return true;
}

void VectorizedHashTable::Lookup(const std::vector<const ColumnVector*>& keys,
                                 const ColumnBatch& batch,
                                 const uint64_t* hashes,
                                 uint8_t** entries_out) {
  ProbeScratch scratch;
  scratch.remaining = std::move(scratch_remaining_);
  scratch.steps = std::move(scratch_steps_);
  Lookup(keys, batch, hashes, entries_out, &scratch);
  scratch_remaining_ = std::move(scratch.remaining);
  scratch_steps_ = std::move(scratch.steps);
}

void VectorizedHashTable::Lookup(const std::vector<const ColumnVector*>& keys,
                                 const ColumnBatch& batch,
                                 const uint64_t* hashes, uint8_t** entries_out,
                                 ProbeScratch* scratch) const {
  int n = batch.num_active();
  // Remaining: dense indices (into the active set) still probing.
  scratch->remaining.resize(n);
  scratch->steps.assign(n, 0);
  int num_remaining = 0;
  for (int i = 0; i < n; i++) {
    entries_out[i] = nullptr;
    int row = batch.ActiveRow(i);
    if (!match_null_keys_) {
      bool any_null = false;
      for (const ColumnVector* col : keys) any_null |= col->IsNull(row);
      if (any_null) continue;  // NULL never matches under join semantics
    }
    scratch->remaining[num_remaining++] = i;
  }

  scratch->candidates.resize(n);
  std::vector<uint8_t*>& candidates = scratch->candidates;
  while (num_remaining > 0) {
    // Probe kernel: issue all bucket loads back-to-back so the hardware can
    // overlap the misses (§4.4). The candidate loads are independent.
    for (int j = 0; j < num_remaining; j++) {
      int i = scratch->remaining[j];
      int step = scratch->steps[i];
      uint64_t slot =
          (hashes[i] + (static_cast<uint64_t>(step) * (step + 1)) / 2) &
          bucket_mask_;
      candidates[j] = buckets_[slot];
    }
    // Compare kernel: keep only mismatching, still-occupied slots.
    int next_remaining = 0;
    for (int j = 0; j < num_remaining; j++) {
      int i = scratch->remaining[j];
      uint8_t* entry = candidates[j];
      if (entry == nullptr) continue;  // definitive miss
      int row = batch.ActiveRow(i);
      if (EntryMatchesRow(entry, hashes[i], keys, row)) {
        entries_out[i] = entry;
      } else {
        scratch->steps[i]++;
        scratch->remaining[next_remaining++] = i;
      }
    }
    num_remaining = next_remaining;
  }
}

Status VectorizedHashTable::LookupOrInsert(
    const std::vector<const ColumnVector*>& keys, const ColumnBatch& batch,
    const uint64_t* hashes, uint8_t** entries_out, bool* inserted_out) {
  int n = batch.num_active();
  // Insertion must be sequential w.r.t. duplicate keys within the batch, so
  // resolve rows in order, but the fast path (found or empty at step 0) is
  // still the common case and stays batched via Lookup semantics.
  for (int i = 0; i < n; i++) {
    entries_out[i] = nullptr;
    inserted_out[i] = false;
  }

  // Grow until the batch's worst-case insert count fits under the load
  // factor (a single batch can exceed one doubling).
  while ((num_entries_ + n) >
         static_cast<int64_t>(buckets_.size() * kMaxLoadFactor)) {
    Grow();
  }

  for (int i = 0; i < n; i++) {
    int row = batch.ActiveRow(i);
    if (!match_null_keys_) {
      bool any_null = false;
      for (const ColumnVector* col : keys) any_null |= col->IsNull(row);
      if (any_null) continue;
    }
    uint64_t hash = hashes[i];
    int step = 0;
    while (true) {
      uint64_t slot =
          (hash + (static_cast<uint64_t>(step) * (step + 1)) / 2) &
          bucket_mask_;
      uint8_t* entry = buckets_[slot];
      if (entry == nullptr) {
        entry = AllocateEntry();
        CopyKeysToEntry(keys, row, hash, entry);
        buckets_[slot] = entry;
        num_entries_++;
        entries_out[i] = entry;
        inserted_out[i] = true;
        break;
      }
      if (EntryMatchesRow(entry, hash, keys, row)) {
        entries_out[i] = entry;
        break;
      }
      step++;
    }
  }
  return Status::OK();
}

uint8_t* VectorizedHashTable::InsertChained(uint8_t* head) {
  uint8_t* entry = AllocateEntry();
  // Copy header + keys from the head; payload stays zeroed for the caller.
  std::memcpy(entry, head, payload_offset_);
  // Link: head -> entry -> old chain.
  uint8_t* old_next = next(head);
  std::memcpy(entry + kNextOffset, &old_next, sizeof(old_next));
  std::memcpy(head + kNextOffset, &entry, sizeof(entry));
  num_entries_++;
  return entry;
}

Value VectorizedHashTable::GetKeyValue(const uint8_t* entry, int k) const {
  if (KeyIsNull(entry, k)) return Value::Null();
  const uint8_t* slot = entry + key_offsets_[k];
  switch (key_types_[k].id()) {
    case TypeId::kBoolean:
      return Value::Boolean(*slot != 0);
    case TypeId::kInt32: {
      int32_t v;
      std::memcpy(&v, slot, 4);
      return Value::Int32(v);
    }
    case TypeId::kDate32: {
      int32_t v;
      std::memcpy(&v, slot, 4);
      return Value::Date32(v);
    }
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, slot, 8);
      return Value::Int64(v);
    }
    case TypeId::kTimestamp: {
      int64_t v;
      std::memcpy(&v, slot, 8);
      return Value::Timestamp(v);
    }
    case TypeId::kFloat64: {
      double v;
      std::memcpy(&v, slot, 8);
      return Value::Float64(v);
    }
    case TypeId::kDecimal128: {
      int128_t v;
      std::memcpy(&v, slot, 16);
      return Value::Decimal(Decimal128(v));
    }
    case TypeId::kString: {
      StringRef s;
      std::memcpy(&s, slot, sizeof(s));
      return Value::String(std::string(s.data, s.len));
    }
  }
  return Value::Null();
}

int64_t VectorizedHashTable::memory_bytes() const {
  return static_cast<int64_t>(buckets_.size() * sizeof(uint8_t*)) +
         static_cast<int64_t>(chunks_.size()) * chunk_capacity_ *
             entry_bytes_ +
         static_cast<int64_t>(strings_.total_bytes());
}

void VectorizedHashTable::ForEachEntry(
    const std::function<void(uint8_t*)>& fn) const {
  for (uint8_t* head : buckets_) {
    if (head != nullptr) fn(head);
  }
}

void VectorizedHashTable::ForEachEntryWithChains(
    const std::function<void(uint8_t*)>& fn) const {
  for (uint8_t* head : buckets_) {
    for (uint8_t* e = head; e != nullptr; e = next(e)) fn(e);
  }
}

void VectorizedHashTable::Grow() {
  size_t new_size = buckets_.size() * 2;
  std::vector<uint8_t*> old = std::move(buckets_);
  buckets_.assign(new_size, nullptr);
  bucket_mask_ = new_size - 1;
  num_resizes_++;
  // Re-bucket chain heads by stored hash; entries themselves do not move.
  for (uint8_t* head : old) {
    if (head == nullptr) continue;
    uint64_t hash = entry_hash(head);
    int step = 0;
    while (true) {
      uint64_t slot =
          (hash + (static_cast<uint64_t>(step) * (step + 1)) / 2) &
          bucket_mask_;
      if (buckets_[slot] == nullptr) {
        buckets_[slot] = head;
        break;
      }
      step++;
    }
  }
}

void VectorizedHashTable::Clear() {
  buckets_.assign(kInitialBuckets, nullptr);
  bucket_mask_ = kInitialBuckets - 1;
  num_entries_ = 0;
  chunks_.clear();
  chunk_used_ = 0;
  strings_.Reset();
}

}  // namespace photon
