#include "storage/delta.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace photon {
namespace {

/// Process-unique nonce per DeltaTable handle (see file_seq_ docs).
std::atomic<int64_t> g_table_instance_counter{0};

// Log record kinds.
constexpr uint8_t kActionMetadata = 0;
constexpr uint8_t kActionAddFile = 1;
constexpr uint8_t kActionRemoveFile = 2;

void WriteSchemaAction(const Schema& schema, BinaryWriter* out) {
  out->WriteU8(kActionMetadata);
  out->WriteVarU64(schema.num_fields());
  for (const Field& f : schema.fields()) {
    out->WriteString(f.name);
    out->WriteU8(static_cast<uint8_t>(f.type.id()));
    out->WriteU8(static_cast<uint8_t>(f.type.precision()));
    out->WriteU8(static_cast<uint8_t>(f.type.scale()));
    out->WriteU8(f.nullable ? 1 : 0);
  }
}

void WriteAddFileAction(const DeltaFileEntry& entry, const Schema& schema,
                        BinaryWriter* out) {
  out->WriteU8(kActionAddFile);
  out->WriteString(entry.key);
  out->WriteVarU64(static_cast<uint64_t>(entry.num_rows));
  out->WriteVarU64(entry.column_stats.size());
  for (size_t c = 0; c < entry.column_stats.size(); c++) {
    const ColumnChunkMeta& s = entry.column_stats[c];
    out->WriteVarU64(static_cast<uint64_t>(s.null_count));
    out->WriteU8(s.has_min_max ? 1 : 0);
    if (s.has_min_max) {
      WriteTypedValue(schema.field(static_cast<int>(c)).type, s.min, out);
      WriteTypedValue(schema.field(static_cast<int>(c)).type, s.max, out);
    }
    s.ndv.Serialize(out);
  }
}

/// Aggregates per-row-group stats into one per-file stats vector.
std::vector<ColumnChunkMeta> AggregateStats(const FileMeta& meta) {
  std::vector<ColumnChunkMeta> out(meta.schema.num_fields());
  for (const RowGroupMeta& rg : meta.row_groups) {
    for (size_t c = 0; c < rg.columns.size(); c++) {
      const ColumnChunkMeta& chunk = rg.columns[c];
      out[c].null_count += chunk.null_count;
      out[c].ndv.Merge(chunk.ndv);
      if (chunk.has_min_max) {
        if (!out[c].has_min_max) {
          out[c].min = chunk.min;
          out[c].max = chunk.max;
          out[c].has_min_max = true;
        } else {
          if (chunk.min.Compare(out[c].min) < 0) out[c].min = chunk.min;
          if (chunk.max.Compare(out[c].max) > 0) out[c].max = chunk.max;
        }
      }
    }
  }
  return out;
}

/// Decodes one log payload. `schema` is the table schema *before* this
/// version (needed to decode add-file stats); when the payload carries a
/// metadata action, `*schema_out` receives the new schema and
/// `*schema_changed` is set. Adds/removes append in payload order.
Status DecodeLogPayload(const std::string& bytes, const Schema& schema,
                        bool* schema_changed, Schema* schema_out,
                        std::vector<DeltaFileEntry>* adds,
                        std::vector<std::string>* removes) {
  *schema_changed = false;
  *schema_out = schema;
  BinaryReader reader(bytes);
  while (reader.remaining() > 0) {
    uint8_t action = 0;
    PHOTON_RETURN_NOT_OK(reader.ReadU8(&action));
    switch (action) {
      case kActionMetadata: {
        uint64_t num_fields = 0;
        PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&num_fields));
        Schema next;
        for (uint64_t i = 0; i < num_fields; i++) {
          std::string name;
          uint8_t type_id = 0, precision = 0, scale = 0, nullable = 0;
          PHOTON_RETURN_NOT_OK(reader.ReadString(&name));
          PHOTON_RETURN_NOT_OK(reader.ReadU8(&type_id));
          PHOTON_RETURN_NOT_OK(reader.ReadU8(&precision));
          PHOTON_RETURN_NOT_OK(reader.ReadU8(&scale));
          PHOTON_RETURN_NOT_OK(reader.ReadU8(&nullable));
          DataType type =
              static_cast<TypeId>(type_id) == TypeId::kDecimal128
                  ? DataType::Decimal(precision, scale)
                  : DataType(static_cast<TypeId>(type_id));
          next.AddField(Field(name, type, nullable != 0));
        }
        *schema_out = std::move(next);
        *schema_changed = true;
        break;
      }
      case kActionAddFile: {
        DeltaFileEntry entry;
        uint64_t rows = 0, num_stats = 0;
        PHOTON_RETURN_NOT_OK(reader.ReadString(&entry.key));
        PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&rows));
        entry.num_rows = static_cast<int64_t>(rows);
        PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&num_stats));
        for (uint64_t c = 0; c < num_stats; c++) {
          ColumnChunkMeta s;
          uint64_t null_count = 0;
          uint8_t has_stats = 0;
          PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&null_count));
          s.null_count = static_cast<int64_t>(null_count);
          PHOTON_RETURN_NOT_OK(reader.ReadU8(&has_stats));
          s.has_min_max = has_stats != 0;
          if (s.has_min_max) {
            const DataType& type =
                schema_out->field(static_cast<int>(c)).type;
            PHOTON_RETURN_NOT_OK(ReadTypedValue(type, &reader, &s.min));
            PHOTON_RETURN_NOT_OK(ReadTypedValue(type, &reader, &s.max));
          }
          PHOTON_RETURN_NOT_OK(NdvSketch::Deserialize(&reader, &s.ndv));
          entry.column_stats.push_back(std::move(s));
        }
        adds->push_back(std::move(entry));
        break;
      }
      case kActionRemoveFile: {
        std::string key;
        PHOTON_RETURN_NOT_OK(reader.ReadString(&key));
        removes->push_back(std::move(key));
        break;
      }
      default:
        return Status::IoError("unknown delta action");
    }
  }
  return Status::OK();
}

}  // namespace

DeltaTable::DeltaTable(ObjectStore* store, std::string path)
    : store_(store),
      path_(std::move(path)),
      instance_nonce_(
          g_table_instance_counter.fetch_add(1, std::memory_order_relaxed)) {}

std::string DeltaTable::LogKey(int64_t version) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020lld",
                static_cast<long long>(version));
  return path_ + "/_delta_log/" + buf;
}

Result<std::unique_ptr<DeltaTable>> DeltaTable::Create(ObjectStore* store,
                                                       std::string path,
                                                       Schema schema) {
  auto table =
      std::unique_ptr<DeltaTable>(new DeltaTable(store, std::move(path)));
  BinaryWriter log;
  WriteSchemaAction(schema, &log);
  // Atomic claim of version 0: two racing Create calls cannot both succeed
  // (the old List-then-Put check was a TOCTOU — both saw an empty log, and
  // the loser's schema commit was silently overwritten).
  PHOTON_ASSIGN_OR_RETURN(
      bool won, store->PutIfAbsent(table->LogKey(0), log.ToString()));
  if (!won) {
    return Status::InvalidArgument("delta table already exists at '" +
                                   table->path_ + "'");
  }
  return table;
}

Result<std::unique_ptr<DeltaTable>> DeltaTable::Open(ObjectStore* store,
                                                     std::string path) {
  auto table =
      std::unique_ptr<DeltaTable>(new DeltaTable(store, std::move(path)));
  if (store->List(table->path_ + "/_delta_log/").empty()) {
    return Status::KeyError("no delta table at '" + table->path_ + "'");
  }
  return table;
}

Result<int64_t> DeltaTable::LatestVersion() const {
  std::vector<std::string> logs = store_->List(path_ + "/_delta_log/");
  if (logs.empty()) return Status::KeyError("empty delta log");
  const std::string& last = logs.back();
  return static_cast<int64_t>(
      std::stoll(last.substr(last.find_last_of('/') + 1)));
}

void DeltaTable::SetIoCache(io::BlockCache* cache) {
  if (cache == nullptr) {
    io_ = nullptr;
    return;
  }
  io::IoOptions options;
  options.cache = cache;
  io_ = std::make_unique<io::CachingStore>(store_, options);
}

Result<std::shared_ptr<const std::string>> DeltaTable::ReadLog(
    int64_t version) const {
  // Log objects are immutable once committed (append-only log), so caching
  // them is always safe.
  if (io_ != nullptr) return io_->Get(LogKey(version));
  PHOTON_ASSIGN_OR_RETURN(std::string bytes, store_->Get(LogKey(version)));
  return std::make_shared<const std::string>(std::move(bytes));
}

Result<DeltaSnapshot> DeltaTable::Snapshot(int64_t version) const {
  if (version < 0) {
    PHOTON_ASSIGN_OR_RETURN(version, LatestVersion());
  }
  DeltaSnapshot snapshot;
  snapshot.version = version;
  // Replay the log from version 0 (no checkpoints in this implementation).
  std::vector<DeltaFileEntry> files;
  for (int64_t v = 0; v <= version; v++) {
    Result<std::shared_ptr<const std::string>> log = ReadLog(v);
    if (!log.ok()) {
      return Status::KeyError("missing delta log version " +
                              std::to_string(v));
    }
    bool schema_changed = false;
    Schema schema_after;
    std::vector<DeltaFileEntry> adds;
    std::vector<std::string> removes;
    PHOTON_RETURN_NOT_OK(DecodeLogPayload(**log, snapshot.schema,
                                          &schema_changed, &schema_after,
                                          &adds, &removes));
    snapshot.schema = std::move(schema_after);
    for (const std::string& key : removes) {
      files.erase(std::remove_if(
                      files.begin(), files.end(),
                      [&](const DeltaFileEntry& f) { return f.key == key; }),
                  files.end());
    }
    for (DeltaFileEntry& entry : adds) files.push_back(std::move(entry));
  }
  snapshot.files = std::move(files);
  return snapshot;
}

Result<DeltaTable::LogActions> DeltaTable::ReadLogActions(
    int64_t version, const Schema& schema) const {
  Result<std::shared_ptr<const std::string>> log = ReadLog(version);
  if (!log.ok()) {
    return Status::KeyError("missing delta log version " +
                            std::to_string(version));
  }
  LogActions acts;
  Schema ignored;
  PHOTON_RETURN_NOT_OK(DecodeLogPayload(**log, schema, &acts.schema_changed,
                                        &ignored, &acts.adds,
                                        &acts.removes));
  return acts;
}

Status DeltaTable::ValidateAgainst(const DeltaTransaction& tx,
                                   int64_t version) const {
  PHOTON_ASSIGN_OR_RETURN(LogActions acts,
                          ReadLogActions(version, tx.schema));
  auto conflict = [&](const std::string& why) {
    return Status::CommitConflict("concurrent commit " +
                                  std::to_string(version) + " of '" + path_ +
                                  "' " + why);
  };
  if (acts.schema_changed && version > 0) {
    return conflict("changed the table schema");
  }
  if (tx.reads_all_files && (!acts.adds.empty() || !acts.removes.empty())) {
    return conflict(
        "added or removed files under a full-table read set (MERGE "
        "matched/not-matched split)");
  }
  for (const std::string& removed : acts.removes) {
    for (const std::string& mine : tx.remove_keys) {
      if (removed == mine) {
        return conflict("already rewrote file '" + removed +
                        "' (remove/remove)");
      }
    }
    for (const std::string& read : tx.read_files) {
      if (removed == read) {
        return conflict("rewrote file '" + removed +
                        "' this transaction read");
      }
    }
  }
  if (tx.read_predicate != nullptr) {
    for (const DeltaFileEntry& add : acts.adds) {
      if (StatsMayMatch(*tx.read_predicate, tx.schema, add.column_stats)) {
        return conflict("added file '" + add.key +
                        "' whose rows may match this transaction's "
                        "predicate (phantom)");
      }
    }
  }
  return Status::OK();
}

Result<int64_t> DeltaTable::Commit(const DeltaTransaction& tx) {
  BinaryWriter log;
  for (const std::string& remove : tx.remove_keys) {
    log.WriteU8(kActionRemoveFile);
    log.WriteString(remove);
  }
  for (const DeltaFileEntry& add : tx.add_files) {
    WriteAddFileAction(add, tx.schema, &log);
  }
  const std::string payload = log.ToString();

  PHOTON_ASSIGN_OR_RETURN(int64_t latest, LatestVersion());
  int64_t version = std::max(latest, tx.read_version) + 1;
  // Every commit in (read_version, version) must pass read-set validation;
  // `validated` tracks how far we have replayed so a retried claim only
  // validates the commits that landed since the last attempt.
  int64_t validated = tx.read_version;
  constexpr int kMaxClaimAttempts = 64;
  for (int attempt = 0; attempt < kMaxClaimAttempts; attempt++) {
    for (int64_t v = validated + 1; v < version; v++) {
      PHOTON_RETURN_NOT_OK(ValidateAgainst(tx, v));
      validated = v;
    }
    PHOTON_ASSIGN_OR_RETURN(bool won,
                            store_->PutIfAbsent(LogKey(version), payload));
    if (won) return version;
    // Lost the claim — a concurrent writer owns `version`. Capped backoff
    // (every lost claim means someone else committed, so the system as a
    // whole always makes progress), then validate what landed and move to
    // the next free slot.
    std::this_thread::sleep_for(std::chrono::microseconds(
        std::min<int64_t>(int64_t{20} << std::min(attempt, 6), 1000)));
    PHOTON_ASSIGN_OR_RETURN(latest, LatestVersion());
    version = std::max(latest, version) + 1;
  }
  return Status::IoError("delta commit on '" + path_ + "' lost " +
                         std::to_string(kMaxClaimAttempts) +
                         " version claims; giving up");
}

Result<DeltaFileEntry> DeltaTable::WriteDataFile(const Table& data,
                                                 FormatWriteOptions options) {
  std::string key =
      path_ + "/data/file-" + std::to_string(instance_nonce_) + "-" +
      std::to_string(file_seq_.fetch_add(1, std::memory_order_relaxed)) +
      ".pho";
  PHOTON_ASSIGN_OR_RETURN(FileMeta meta,
                          WriteTableToStore(data, store_, key, options));
  DeltaFileEntry entry;
  entry.key = key;
  entry.num_rows = meta.num_rows();
  // Aggregated zone maps + per-column HLL NDV sketches — identical for
  // every write path (Append, DML rewrite, compaction), which is what
  // keeps StatsFromSnapshot honest after copy-on-write churn.
  entry.column_stats = AggregateStats(meta);
  return entry;
}

void DeltaTable::ReleaseDataFile(const std::string& key) {
  Status s = store_->Delete(key);
  (void)s;  // already-gone is fine
}

Result<int64_t> DeltaTable::Append(const Table& data,
                                   FormatWriteOptions options) {
  PHOTON_ASSIGN_OR_RETURN(DeltaSnapshot snapshot, Snapshot());
  if (!(data.schema() == snapshot.schema)) {
    return Status::InvalidArgument(
        "append schema does not match table schema of '" + path_ + "'");
  }
  PHOTON_ASSIGN_OR_RETURN(DeltaFileEntry entry,
                          WriteDataFile(data, options));
  DeltaTransaction tx;
  tx.read_version = snapshot.version;
  tx.schema = snapshot.schema;
  tx.add_files.push_back(std::move(entry));
  // Blind append: empty read set, so Commit can only lose claims (and
  // retry), never conflict.
  Result<int64_t> version = Commit(tx);
  if (!version.ok()) ReleaseDataFile(tx.add_files[0].key);
  return version;
}

Result<int64_t> DeltaTable::Rewrite(const std::vector<std::string>& remove_keys,
                                    const Table& add,
                                    FormatWriteOptions options) {
  PHOTON_ASSIGN_OR_RETURN(DeltaSnapshot snapshot, Snapshot());
  if (!(add.schema() == snapshot.schema)) {
    return Status::InvalidArgument(
        "rewrite schema does not match table schema of '" + path_ + "'");
  }
  // Every removed file must still be live in the snapshot this commit
  // reads. Read-set validation only covers commits AFTER read_version; a
  // file that was already rewritten before we snapshotted would otherwise
  // slip through and duplicate its rows (remove of a dead key is a no-op
  // in replay, but the add is not).
  for (const std::string& key : remove_keys) {
    bool live = false;
    for (const DeltaFileEntry& file : snapshot.files) {
      if (file.key == key) {
        live = true;
        break;
      }
    }
    if (!live) {
      return Status::CommitConflict("concurrent commit already rewrote or "
                                    "deleted file '" +
                                    key + "' (remove/remove)");
    }
  }
  PHOTON_ASSIGN_OR_RETURN(DeltaFileEntry entry, WriteDataFile(add, options));
  DeltaTransaction tx;
  tx.read_version = snapshot.version;
  tx.schema = snapshot.schema;
  tx.read_files = remove_keys;  // a rewrite reads what it replaces
  tx.remove_keys = remove_keys;
  tx.add_files.push_back(std::move(entry));
  Result<int64_t> version = Commit(tx);
  if (!version.ok()) ReleaseDataFile(tx.add_files[0].key);
  return version;
}

// ---------------------------------------------------------------------------
// Data skipping
// ---------------------------------------------------------------------------

namespace {

/// Checks one conjunct of the form (colref cmp literal) — or
/// (colref BETWEEN lit AND lit) — against stats. Returns false only when
/// the conjunct provably matches nothing.
bool ConjunctMayMatch(const Expr& expr,
                      const std::vector<ColumnChunkMeta>& stats) {
  if (const auto* between = dynamic_cast<const BetweenExpr*>(&expr)) {
    std::vector<ExprPtr> kids = between->children();
    const auto* col = dynamic_cast<const ColumnRefExpr*>(kids[0].get());
    const auto* lo = dynamic_cast<const LiteralExpr*>(kids[1].get());
    const auto* hi = dynamic_cast<const LiteralExpr*>(kids[2].get());
    if (col == nullptr || lo == nullptr || hi == nullptr ||
        lo->value().is_null() || hi->value().is_null()) {
      return true;
    }
    if (col->index() < 0 || col->index() >= static_cast<int>(stats.size())) {
      return true;
    }
    const ColumnChunkMeta& s = stats[col->index()];
    if (!s.has_min_max) return true;
    if (lo->value().is_string() != s.min.is_string() ||
        lo->value().is_date() != s.min.is_date()) {
      return true;
    }
    // Overlap test: [lo, hi] vs [min, max].
    return hi->value().Compare(s.min) >= 0 && lo->value().Compare(s.max) <= 0;
  }

  const auto* cmp = dynamic_cast<const ComparisonExpr*>(&expr);
  if (cmp == nullptr) return true;
  std::vector<ExprPtr> children = cmp->children();
  const auto* col = dynamic_cast<const ColumnRefExpr*>(children[0].get());
  const auto* lit = dynamic_cast<const LiteralExpr*>(children[1].get());
  CmpOp op = cmp->op();
  if (col == nullptr || lit == nullptr) {
    // literal OP col  ==  col OP' literal with the operator mirrored.
    col = dynamic_cast<const ColumnRefExpr*>(children[1].get());
    lit = dynamic_cast<const LiteralExpr*>(children[0].get());
    switch (op) {
      case CmpOp::kLt:
        op = CmpOp::kGt;
        break;
      case CmpOp::kLe:
        op = CmpOp::kGe;
        break;
      case CmpOp::kGt:
        op = CmpOp::kLt;
        break;
      case CmpOp::kGe:
        op = CmpOp::kLe;
        break;
      default:
        break;
    }
  }
  if (col == nullptr || lit == nullptr || lit->value().is_null()) return true;
  if (col->index() < 0 || col->index() >= static_cast<int>(stats.size())) {
    return true;
  }
  const ColumnChunkMeta& s = stats[col->index()];
  if (!s.has_min_max) return true;
  // Literal type must match the stats type for Compare to be meaningful.
  const Value& v = lit->value();
  if (v.is_string() != s.min.is_string() || v.is_date() != s.min.is_date()) {
    return true;
  }
  switch (op) {
    case CmpOp::kEq:
      return v.Compare(s.min) >= 0 && v.Compare(s.max) <= 0;
    case CmpOp::kLt:
      return s.min.Compare(v) < 0;
    case CmpOp::kLe:
      return s.min.Compare(v) <= 0;
    case CmpOp::kGt:
      return s.max.Compare(v) > 0;
    case CmpOp::kGe:
      return s.max.Compare(v) >= 0;
    case CmpOp::kNe:
      return true;  // almost never prunable
  }
  return true;
}

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  const auto* boolean = dynamic_cast<const BooleanExpr*>(e);
  if (boolean != nullptr && boolean->op() == BoolOp::kAnd) {
    std::vector<ExprPtr> children = boolean->children();
    CollectConjuncts(children[0].get(), out);
    CollectConjuncts(children[1].get(), out);
    return;
  }
  out->push_back(e);
}

}  // namespace

bool StatsMayMatch(const Expr& predicate, const Schema& schema,
                   const std::vector<ColumnChunkMeta>& stats) {
  (void)schema;
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(&predicate, &conjuncts);
  for (const Expr* conjunct : conjuncts) {
    if (!ConjunctMayMatch(*conjunct, stats)) return false;
  }
  return true;
}

std::vector<DeltaFileEntry> DeltaTable::PruneFiles(
    const DeltaSnapshot& snapshot, const ExprPtr& predicate) {
  if (predicate == nullptr) return snapshot.files;
  std::vector<DeltaFileEntry> out;
  for (const DeltaFileEntry& file : snapshot.files) {
    if (StatsMayMatch(*predicate, snapshot.schema, file.column_stats)) {
      out.push_back(file);
    }
  }
  return out;
}

}  // namespace photon
