#ifndef PHOTON_STORAGE_COMPRESS_H_
#define PHOTON_STORAGE_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace photon {

enum class Codec : uint8_t { kNone = 0, kLz = 1 };

/// Compresses `input` with the given codec, producing a self-describing
/// frame (codec byte + uncompressed size + payload).
///
/// The kLz codec is an LZ4-style byte-oriented LZ77 compressor (greedy
/// hash-table matching, 64 KiB window, literal/match token stream). It
/// stands in for LZ4 in the paper's shuffle experiments (Table 1): what
/// matters there is that compression cost scales with input bytes, so
/// shrinking the pre-compression data with adaptive encodings shrinks both
/// time and output size.
std::string Compress(std::string_view input, Codec codec);

/// Inverse of Compress; rejects corrupt frames.
Result<std::string> Decompress(std::string_view frame);

}  // namespace photon

#endif  // PHOTON_STORAGE_COMPRESS_H_
