#ifndef PHOTON_STORAGE_NDV_SKETCH_H_
#define PHOTON_STORAGE_NDV_SKETCH_H_

#include <array>
#include <cstdint>

#include "common/byte_buffer.h"
#include "common/result.h"

namespace photon {

/// A small HyperLogLog distinct-count sketch carried per column chunk and
/// persisted in the Delta transaction log's add-file actions, so the
/// optimizer can estimate per-column NDV at planning time without touching
/// data files (the lakehouse analogue of Delta's per-file stats, §2.1).
///
/// 256 six-bit-capable registers give ~6.5% standard error at 256 bytes per
/// column per file — cheap enough to collect on every write. Sketches are
/// mergeable (register-wise max), so per-chunk sketches fold into per-file
/// stats and per-file stats fold into a table-level estimate.
class NdvSketch {
 public:
  static constexpr int kRegisterBits = 8;
  static constexpr int kNumRegisters = 1 << kRegisterBits;  // 256

  /// Observes one value by its 64-bit hash.
  void Add(uint64_t hash);

  /// Union with another sketch (register-wise max). Merging the sketches of
  /// two row sets yields the sketch of their union.
  void Merge(const NdvSketch& other);

  /// Estimated number of distinct values, with the standard linear-counting
  /// correction for the small-cardinality range. Returns 0 for an empty
  /// sketch.
  double Estimate() const;

  /// True when no value has ever been added.
  bool empty() const;

  void Serialize(BinaryWriter* out) const;
  static Status Deserialize(BinaryReader* in, NdvSketch* out);

  bool operator==(const NdvSketch& other) const {
    return regs_ == other.regs_;
  }

 private:
  std::array<uint8_t, kNumRegisters> regs_{};
};

}  // namespace photon

#endif  // PHOTON_STORAGE_NDV_SKETCH_H_
