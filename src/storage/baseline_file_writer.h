#ifndef PHOTON_STORAGE_BASELINE_FILE_WRITER_H_
#define PHOTON_STORAGE_BASELINE_FILE_WRITER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/format.h"

namespace photon {

/// Row-at-a-time columnar file writer modeled on the Java Parquet-MR
/// library DBR uses (§6.1 "Parquet Writes", Figure 7). Produces files in
/// exactly the same format as FileWriter, but via deliberately generic
/// code paths:
///   - values arrive boxed, one row at a time;
///   - dictionaries are std::unordered_map keyed by a per-value serialized
///     string (an allocation per value, like boxing into a Binary key);
///   - bit-packing runs bit by bit (BitPackSlow);
///   - min/max statistics use boxed comparisons per value.
/// The performance delta against FileWriter is the paper's encoder speedup.
class BaselineFileWriter {
 public:
  BaselineFileWriter(Schema schema, FormatWriteOptions options = {});

  Status WriteRow(const std::vector<Value>& row);
  Result<std::string> Finish();

  const WriteStats& stats() const { return stats_; }
  const FileMeta& meta() const { return meta_; }

 private:
  Status FlushRowGroup();

  Schema schema_;
  FormatWriteOptions options_;
  // Buffered row group, column-major boxed values.
  std::vector<std::vector<Value>> columns_;
  int64_t pending_rows_ = 0;
  BinaryWriter file_;
  FileMeta meta_;
  WriteStats stats_;
  bool finished_ = false;
};

/// Convenience mirror of WriteTableToStore for the baseline writer.
Result<FileMeta> BaselineWriteTableToStore(const Table& table,
                                           ObjectStore* store,
                                           const std::string& key,
                                           FormatWriteOptions options = {},
                                           WriteStats* stats = nullptr);

}  // namespace photon

#endif  // PHOTON_STORAGE_BASELINE_FILE_WRITER_H_
