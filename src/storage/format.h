#ifndef PHOTON_STORAGE_FORMAT_H_
#define PHOTON_STORAGE_FORMAT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/byte_buffer.h"
#include "storage/compress.h"
#include "storage/ndv_sketch.h"
#include "storage/object_store.h"
#include "types/value.h"
#include "vector/table.h"

namespace photon {

/// A self-contained columnar file format playing the role of Apache
/// Parquet (see DESIGN.md substitutions). It implements the same family of
/// encodings Parquet uses — PLAIN, dictionary + bit-packed indices,
/// bit-packed booleans — plus per-chunk min/max statistics and per-chunk
/// compression, which is everything the paper's experiments exercise.
///
/// File layout:
///   [magic][row group 0][row group 1]...[footer][footer_len u32][magic]
/// Each row group stores one compressed chunk per column.

enum class ChunkEncoding : uint8_t { kPlain = 0, kDictionary = 1 };

/// Per-column-chunk metadata, including the zone-map stats used for data
/// skipping by the Delta layer and the scan operator.
struct ColumnChunkMeta {
  ChunkEncoding encoding = ChunkEncoding::kPlain;
  uint64_t offset = 0;            // into the file
  uint64_t compressed_bytes = 0;
  int64_t null_count = 0;
  bool has_min_max = false;
  Value min;
  Value max;
  /// Distinct-value sketch over the chunk's non-null values, collected at
  /// write time and merged per file for the optimizer's cardinality model.
  NdvSketch ndv;
};

struct RowGroupMeta {
  int64_t num_rows = 0;
  std::vector<ColumnChunkMeta> columns;
};

struct FileMeta {
  Schema schema;
  Codec codec = Codec::kLz;
  std::vector<RowGroupMeta> row_groups;

  int64_t num_rows() const {
    int64_t n = 0;
    for (const RowGroupMeta& rg : row_groups) n += rg.num_rows;
    return n;
  }
};

/// Typed scalar serialization used for stats and dictionary pages.
void WriteTypedValue(const DataType& type, const Value& v, BinaryWriter* out);
Status ReadTypedValue(const DataType& type, BinaryReader* in, Value* out);

/// The type's zero value (placeholder payload for NULL slots).
Value ZeroValueForType(const DataType& type);

struct FormatWriteOptions {
  int64_t row_group_rows = 64 * 1024;
  Codec codec = Codec::kLz;
  bool enable_dictionary = true;
  /// Dictionary pages abort above this many distinct values.
  int max_dictionary_size = 64 * 1024;
};

/// Timing breakdown matching Figure 7's stacked bars.
struct WriteStats {
  int64_t encode_ns = 0;
  int64_t compress_ns = 0;
  int64_t io_ns = 0;
  int64_t bytes_written = 0;
  int64_t dictionary_chunks = 0;
  int64_t plain_chunks = 0;
};

/// Photon's vectorized file writer: column-at-a-time encoders, the
/// vectorized hash table for dictionary building, word-wise bit-packing,
/// and tight min/max kernels (§6.1 "Parquet Writes").
class FileWriter {
 public:
  FileWriter(Schema schema, FormatWriteOptions options = {});

  /// Buffers the batch's active rows; flushes full row groups.
  Status WriteBatch(const ColumnBatch& batch);

  /// Flushes the tail row group and returns the complete file bytes.
  Result<std::string> Finish();

  const WriteStats& stats() const { return stats_; }
  /// Valid after Finish().
  const FileMeta& meta() const { return meta_; }

 private:
  Status FlushRowGroup();

  Schema schema_;
  FormatWriteOptions options_;
  std::unique_ptr<ColumnBatch> pending_;
  int64_t pending_rows_ = 0;
  BinaryWriter file_;
  FileMeta meta_;
  WriteStats stats_;
  bool finished_ = false;
};

/// Reads files produced by FileWriter (or the baseline writer — the format
/// is identical).
class FileReader {
 public:
  static Result<std::unique_ptr<FileReader>> Open(std::string file_bytes);
  /// Zero-copy open over shared immutable bytes — the IO block cache hands
  /// out blocks this way, so a reader and the cache share one buffer (and
  /// the reader survives eviction).
  static Result<std::unique_ptr<FileReader>> Open(
      std::shared_ptr<const std::string> file_bytes);
  static Result<std::unique_ptr<FileReader>> OpenFromStore(
      ObjectStore* store, const std::string& key);

  const FileMeta& meta() const { return meta_; }
  const Schema& schema() const { return meta_.schema; }
  int num_row_groups() const {
    return static_cast<int>(meta_.row_groups.size());
  }

  /// Decodes one row group, reading only `columns` (empty = all), into a
  /// single dense batch whose schema is the projected schema.
  Result<std::unique_ptr<ColumnBatch>> ReadRowGroup(
      int row_group, const std::vector<int>& columns) const;

  /// Total size of the underlying file bytes.
  int64_t file_bytes() const { return static_cast<int64_t>(bytes_->size()); }

 private:
  explicit FileReader(std::shared_ptr<const std::string> bytes)
      : bytes_(std::move(bytes)) {}

  std::shared_ptr<const std::string> bytes_;
  FileMeta meta_;
};

/// Serializes file metadata (shared by writer/reader and the Delta log).
void WriteFileMeta(const FileMeta& meta, BinaryWriter* out);
Status ReadFileMeta(BinaryReader* in, FileMeta* out);

/// Convenience: writes a whole table as one file into the object store.
Result<FileMeta> WriteTableToStore(const Table& table, ObjectStore* store,
                                   const std::string& key,
                                   FormatWriteOptions options = {},
                                   WriteStats* stats = nullptr);

}  // namespace photon

#endif  // PHOTON_STORAGE_FORMAT_H_
