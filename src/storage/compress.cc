#include "storage/compress.h"

#include <cstring>
#include <vector>

#include "common/byte_buffer.h"
#include "common/macros.h"

namespace photon {
namespace {

constexpr int kHashLog = 14;
constexpr int kHashSize = 1 << kHashLog;
constexpr int kMinMatch = 4;
constexpr int kMaxOffset = 65535;

PHOTON_ALWAYS_INLINE uint32_t Read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

PHOTON_ALWAYS_INLINE uint32_t Hash4(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashLog);
}

void WriteLength(std::string* out, size_t len) {
  // LZ4-style length extension: 255-run bytes then remainder.
  while (len >= 255) {
    out->push_back(static_cast<char>(255));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

std::string LzCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 64);
  const char* base = input.data();
  const char* end = base + input.size();
  const char* anchor = base;
  const char* p = base;

  std::vector<int32_t> table(kHashSize, -1);

  auto emit_sequence = [&](const char* lit_end, const char* match,
                           int match_len) {
    size_t lit_len = static_cast<size_t>(lit_end - anchor);
    uint8_t token =
        static_cast<uint8_t>((lit_len < 15 ? lit_len : 15) << 4) |
        static_cast<uint8_t>(match_len - kMinMatch < 15
                                 ? match_len - kMinMatch
                                 : 15);
    out.push_back(static_cast<char>(token));
    if (lit_len >= 15) WriteLength(&out, lit_len - 15);
    out.append(anchor, lit_len);
    uint16_t offset = static_cast<uint16_t>(lit_end - match);
    out.push_back(static_cast<char>(offset & 0xFF));
    out.push_back(static_cast<char>(offset >> 8));
    if (match_len - kMinMatch >= 15) {
      WriteLength(&out, static_cast<size_t>(match_len - kMinMatch) - 15);
    }
  };

  if (input.size() >= 13) {
    const char* match_limit = end - 5;  // keep final literals uncompressed
    while (p + kMinMatch <= match_limit) {
      uint32_t h = Hash4(Read32(p));
      int32_t cand = table[h];
      table[h] = static_cast<int32_t>(p - base);
      if (cand >= 0 && (p - base) - cand <= kMaxOffset &&
          Read32(base + cand) == Read32(p)) {
        const char* match = base + cand;
        int match_len = kMinMatch;
        while (p + match_len < match_limit &&
               p[match_len] == match[match_len]) {
          match_len++;
        }
        emit_sequence(p, match, match_len);
        p += match_len;
        anchor = p;
      } else {
        p++;
      }
    }
  }
  // Trailing literals as a final sequence with match_len == 0 marker:
  // token with match nibble 0 and offset 0 means "literals only, end".
  size_t lit_len = static_cast<size_t>(end - anchor);
  uint8_t token = static_cast<uint8_t>((lit_len < 15 ? lit_len : 15) << 4);
  out.push_back(static_cast<char>(token));
  if (lit_len >= 15) WriteLength(&out, lit_len - 15);
  out.append(anchor, lit_len);
  out.push_back(0);
  out.push_back(0);
  return out;
}

Status ReadLength(const char*& p, const char* end, size_t base_len,
                  size_t* out_len) {
  size_t len = base_len;
  if (base_len == 15) {
    while (true) {
      if (p >= end) return Status::IoError("lz: truncated length");
      uint8_t b = static_cast<uint8_t>(*p++);
      len += b;
      if (b != 255) break;
    }
  }
  *out_len = len;
  return Status::OK();
}

Status LzDecompress(std::string_view payload, size_t expected_size,
                    std::string* out) {
  out->clear();
  out->reserve(expected_size);
  const char* p = payload.data();
  const char* end = p + payload.size();
  while (p < end) {
    uint8_t token = static_cast<uint8_t>(*p++);
    size_t lit_len;
    PHOTON_RETURN_NOT_OK(ReadLength(p, end, token >> 4, &lit_len));
    if (p + lit_len > end) return Status::IoError("lz: truncated literals");
    out->append(p, lit_len);
    p += lit_len;
    if (p + 2 > end) return Status::IoError("lz: truncated offset");
    uint16_t offset = static_cast<uint8_t>(p[0]) |
                      (static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8);
    p += 2;
    if (offset == 0) break;  // end marker
    size_t match_len;
    PHOTON_RETURN_NOT_OK(ReadLength(p, end, token & 0xF, &match_len));
    match_len += kMinMatch;
    if (offset > out->size()) return Status::IoError("lz: bad offset");
    size_t match_pos = out->size() - offset;
    // Byte-by-byte: overlapping matches (RLE) are valid.
    for (size_t i = 0; i < match_len; i++) {
      out->push_back((*out)[match_pos + i]);
    }
  }
  if (out->size() != expected_size) {
    return Status::IoError("lz: size mismatch");
  }
  return Status::OK();
}

}  // namespace

std::string Compress(std::string_view input, Codec codec) {
  BinaryWriter header;
  header.WriteU8(static_cast<uint8_t>(codec));
  header.WriteVarU64(input.size());
  std::string out = header.ToString();
  if (codec == Codec::kNone) {
    out.append(input);
    return out;
  }
  out += LzCompress(input);
  return out;
}

Result<std::string> Decompress(std::string_view frame) {
  BinaryReader reader(frame);
  uint8_t codec_byte = 0;
  PHOTON_RETURN_NOT_OK(reader.ReadU8(&codec_byte));
  uint64_t size = 0;
  PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&size));
  std::string_view payload = frame.substr(reader.position());
  if (static_cast<Codec>(codec_byte) == Codec::kNone) {
    if (payload.size() != size) return Status::IoError("bad frame size");
    return std::string(payload);
  }
  std::string out;
  PHOTON_RETURN_NOT_OK(LzDecompress(payload, size, &out));
  return out;
}

}  // namespace photon
