#include "storage/baseline_file_writer.h"

#include <chrono>
#include <cstring>

#include "storage/bitpack.h"

namespace photon {
namespace {

constexpr char kMagic[4] = {'P', 'H', 'O', '1'};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Serialized-key dictionary: each value is rendered to a std::string key
/// (one allocation per value, the boxing cost).
std::string BoxedKey(const DataType& type, const Value& v) {
  BinaryWriter w;
  WriteTypedValue(type, v, &w);
  return w.ToString();
}

}  // namespace

BaselineFileWriter::BaselineFileWriter(Schema schema,
                                       FormatWriteOptions options)
    : schema_(std::move(schema)), options_(options) {
  file_.Append(kMagic, 4);
  meta_.schema = schema_;
  meta_.codec = options_.codec;
  columns_.resize(schema_.num_fields());
}

Status BaselineFileWriter::WriteRow(const std::vector<Value>& row) {
  PHOTON_CHECK(!finished_);
  PHOTON_CHECK(static_cast<int>(row.size()) == schema_.num_fields());
  for (int c = 0; c < schema_.num_fields(); c++) {
    columns_[c].push_back(row[c]);
  }
  pending_rows_++;
  if (pending_rows_ >= options_.row_group_rows) {
    PHOTON_RETURN_NOT_OK(FlushRowGroup());
  }
  return Status::OK();
}

Status BaselineFileWriter::FlushRowGroup() {
  int n = static_cast<int>(pending_rows_);
  if (n == 0) return Status::OK();

  RowGroupMeta rg;
  rg.num_rows = n;
  for (int c = 0; c < schema_.num_fields(); c++) {
    const DataType& type = schema_.field(c).type;
    std::vector<Value>& col = columns_[c];
    ColumnChunkMeta chunk;

    int64_t t0 = NowNs();
    BinaryWriter payload;
    payload.WriteVarU64(static_cast<uint64_t>(n));
    // Null bytes + boxed stats, value by value.
    bool has = false;
    for (int i = 0; i < n; i++) {
      bool is_null = col[i].is_null();
      payload.WriteU8(is_null ? 1 : 0);
      if (is_null) {
        chunk.null_count++;
        continue;
      }
      if (!has) {
        chunk.min = col[i];
        chunk.max = col[i];
        has = true;
      } else {
        if (col[i].Compare(chunk.min) < 0) chunk.min = col[i];
        if (col[i].Compare(chunk.max) > 0) chunk.max = col[i];
      }
    }
    chunk.has_min_max = has;

    // Dictionary attempt with a serialized-key hash map.
    BinaryWriter values;
    bool used_dict = false;
    if (options_.enable_dictionary) {
      std::unordered_map<std::string, uint32_t> dict;
      std::vector<Value> dict_values;
      std::vector<uint32_t> indices(n);
      bool aborted = false;
      int64_t dict_value_bytes = 0;
      for (int i = 0; i < n; i++) {
        const Value& v = col[i];
        std::string key =
            v.is_null() ? std::string("\x00N", 2) : BoxedKey(type, v);
        auto [it, inserted] =
            dict.emplace(std::move(key),
                         static_cast<uint32_t>(dict_values.size()));
        if (inserted) {
          if (static_cast<int>(dict_values.size()) >=
              options_.max_dictionary_size) {
            aborted = true;
            break;
          }
          dict_values.push_back(v);
          dict_value_bytes +=
              v.is_null()
                  ? type.byte_width()
                  : (type.is_string()
                         ? static_cast<int64_t>(v.str().size())
                         : type.byte_width());
        }
        indices[i] = it->second;
      }
      if (!aborted) {
        int bit_width = BitWidthFor(
            dict_values.empty() ? 1 : dict_values.size() - 1);
        int64_t plain_bytes = 0;
        if (type.is_string()) {
          for (int i = 0; i < n; i++) {
            plain_bytes += col[i].is_null()
                               ? 1
                               : static_cast<int64_t>(col[i].str().size()) + 1;
          }
        } else {
          plain_bytes = static_cast<int64_t>(n) * type.byte_width();
        }
        int64_t dict_bytes = dict_value_bytes +
                             static_cast<int64_t>(n) * bit_width / 8 + 64;
        if (dict_bytes < plain_bytes) {
          values.WriteVarU64(dict_values.size());
          for (const Value& v : dict_values) {
            BinaryWriter one;
            WriteTypedValue(type, v.is_null() ? ZeroValueForType(type) : v,
                            &one);
            // NULL entries of non-string fixed types must still be the
            // right width; re-serialize with a typed zero.
            values.Append(one.data().data(), one.size());
          }
          values.WriteU8(static_cast<uint8_t>(bit_width));
          BitPackSlow(indices.data(), n, bit_width, &values);
          used_dict = true;
          stats_.dictionary_chunks++;
        }
      }
    }
    if (!used_dict) {
      stats_.plain_chunks++;
      switch (type.id()) {
        case TypeId::kBoolean: {
          std::vector<uint32_t> bits(n);
          for (int i = 0; i < n; i++) {
            bits[i] = (!col[i].is_null() && col[i].boolean()) ? 1 : 0;
          }
          BitPackSlow(bits.data(), n, 1, &values);
          break;
        }
        case TypeId::kString: {
          for (int i = 0; i < n; i++) {
            if (col[i].is_null()) {
              values.WriteVarU64(0);
            } else {
              values.WriteString(col[i].str());
            }
          }
          break;
        }
        default: {
          // One boxed serialization call per value.
          for (int i = 0; i < n; i++) {
            WriteTypedValue(
                type, col[i].is_null() ? ZeroValueForType(type) : col[i],
                &values);
          }
          break;
        }
      }
    }
    payload.WriteU8(used_dict
                        ? static_cast<uint8_t>(ChunkEncoding::kDictionary)
                        : static_cast<uint8_t>(ChunkEncoding::kPlain));
    payload.Append(values.data().data(), values.size());
    int64_t t1 = NowNs();
    stats_.encode_ns += t1 - t0;

    std::string compressed = Compress(
        std::string_view(reinterpret_cast<const char*>(payload.data().data()),
                         payload.size()),
        options_.codec);
    int64_t t2 = NowNs();
    stats_.compress_ns += t2 - t1;

    chunk.encoding =
        used_dict ? ChunkEncoding::kDictionary : ChunkEncoding::kPlain;
    chunk.offset = file_.size();
    chunk.compressed_bytes = compressed.size();
    file_.Append(compressed.data(), compressed.size());
    rg.columns.push_back(std::move(chunk));
    col.clear();
  }
  meta_.row_groups.push_back(std::move(rg));
  pending_rows_ = 0;
  return Status::OK();
}

Result<std::string> BaselineFileWriter::Finish() {
  PHOTON_CHECK(!finished_);
  PHOTON_RETURN_NOT_OK(FlushRowGroup());
  finished_ = true;
  BinaryWriter footer;
  WriteFileMeta(meta_, &footer);
  file_.Append(footer.data().data(), footer.size());
  file_.WriteU32(static_cast<uint32_t>(footer.size()));
  file_.Append(kMagic, 4);
  stats_.bytes_written = static_cast<int64_t>(file_.size());
  return file_.ToString();
}

Result<FileMeta> BaselineWriteTableToStore(const Table& table,
                                           ObjectStore* store,
                                           const std::string& key,
                                           FormatWriteOptions options,
                                           WriteStats* stats) {
  BaselineFileWriter writer(table.schema(), options);
  for (const auto& row : table.ToRows()) {
    PHOTON_RETURN_NOT_OK(writer.WriteRow(row));
  }
  PHOTON_ASSIGN_OR_RETURN(std::string bytes, writer.Finish());
  int64_t t0 = NowNs();
  PHOTON_RETURN_NOT_OK(store->Put(key, std::move(bytes)));
  int64_t io_ns = NowNs() - t0;
  if (stats != nullptr) {
    *stats = writer.stats();
    stats->io_ns = io_ns;
  }
  return writer.meta();
}

}  // namespace photon
