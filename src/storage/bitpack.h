#ifndef PHOTON_STORAGE_BITPACK_H_
#define PHOTON_STORAGE_BITPACK_H_

#include <cstdint>
#include <vector>

#include "common/byte_buffer.h"

namespace photon {

/// Number of bits needed to represent `max_value` (>= 1 for value 0).
int BitWidthFor(uint64_t max_value);

/// Packs `n` values of `bit_width` bits each, little-endian within a
/// 64-bit word buffer — the word-at-a-time kernel Photon's Parquet writer
/// uses (Figure 7 credits "optimized bit-packing" for part of its 2x).
void BitPack(const uint32_t* values, int n, int bit_width,
             BinaryWriter* out);

/// Inverse of BitPack. `out` must have room for n values.
Status BitUnpack(BinaryReader* in, int n, int bit_width, uint32_t* out);

/// Reference bit-at-a-time implementations, modeling the byte/bit-level
/// loop a generic (Java Parquet-MR-style) writer performs. Produce
/// identical bytes to the fast versions; used by the baseline writer and
/// as test oracles.
void BitPackSlow(const uint32_t* values, int n, int bit_width,
                 BinaryWriter* out);
Status BitUnpackSlow(BinaryReader* in, int n, int bit_width, uint32_t* out);

}  // namespace photon

#endif  // PHOTON_STORAGE_BITPACK_H_
