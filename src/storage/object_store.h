#ifndef PHOTON_STORAGE_OBJECT_STORE_H_
#define PHOTON_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace photon {

/// In-process blob store standing in for S3/ADLS/GCS (see DESIGN.md
/// substitutions). Keys are flat strings with '/' conventions; values are
/// immutable byte strings. Optional latency/bandwidth simulation lets the
/// Parquet-write benchmark exhibit an IO component like the paper's
/// S3-backed Figure 7.
///
/// Thread-safe. Also used as the engine's spill and shuffle target.
class ObjectStore {
 public:
  struct Options {
    /// Fixed per-operation latency in microseconds (0 = in-memory speed).
    int64_t put_latency_us = 0;
    int64_t get_latency_us = 0;
    /// Simulated throughput in bytes/second (0 = unlimited).
    int64_t bandwidth_bytes_per_sec = 0;
  };

  ObjectStore() = default;
  explicit ObjectStore(Options options) : options_(options) {}

  /// Process-wide default instance (no simulated latency).
  static ObjectStore& Default();

  Status Put(const std::string& key, std::string bytes);
  /// Atomic insert-if-missing: stores `bytes` and returns true iff no
  /// object existed at `key`; returns false (and writes nothing) when one
  /// did. This is the primitive the Delta log's optimistic concurrency
  /// stands on — claiming log version v+1 is a single PutIfAbsent, so two
  /// racing committers can never both believe they own the same version
  /// (real object stores expose the same thing as If-None-Match puts).
  /// Injected Put failures (FailNextPuts) apply here too.
  Result<bool> PutIfAbsent(const std::string& key, std::string bytes);
  Result<std::string> Get(const std::string& key) const;
  bool Exists(const std::string& key) const;
  Status Delete(const std::string& key);
  /// Keys with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;
  /// Deletes all keys under a prefix; returns count removed.
  int64_t DeletePrefix(const std::string& prefix);

  int64_t bytes_written() const { return bytes_written_; }
  int64_t bytes_read() const { return bytes_read_; }
  int64_t num_puts() const { return num_puts_; }
  int64_t num_gets() const { return num_gets_; }

  /// Injects a failure on the next `n` Put calls (failure-injection tests).
  void FailNextPuts(int n) { fail_puts_ = n; }
  /// Injects a failure on the next `n` Get calls (read-side fault
  /// injection, exercised by CachingStore's retry path).
  void FailNextGets(int n) { fail_gets_ = n; }

 private:
  void SimulateIo(int64_t latency_us, size_t bytes) const;

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> blobs_;
  mutable int64_t bytes_written_ = 0;
  mutable int64_t bytes_read_ = 0;
  mutable int64_t num_puts_ = 0;
  mutable int64_t num_gets_ = 0;
  int fail_puts_ = 0;
  mutable int fail_gets_ = 0;
};

}  // namespace photon

#endif  // PHOTON_STORAGE_OBJECT_STORE_H_
