#include "storage/object_store.h"

#include <thread>

namespace photon {

ObjectStore& ObjectStore::Default() {
  static ObjectStore* store = new ObjectStore();
  return *store;
}

void ObjectStore::SimulateIo(int64_t latency_us, size_t bytes) const {
  int64_t total_us = latency_us;
  if (options_.bandwidth_bytes_per_sec > 0) {
    total_us += static_cast<int64_t>(bytes) * 1000000 /
                options_.bandwidth_bytes_per_sec;
  }
  if (total_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(total_us));
  }
}

Status ObjectStore::Put(const std::string& key, std::string bytes) {
  SimulateIo(options_.put_latency_us, bytes.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_puts_ > 0) {
    fail_puts_--;
    return Status::IoError("injected failure writing '" + key + "'");
  }
  bytes_written_ += static_cast<int64_t>(bytes.size());
  num_puts_++;
  blobs_[key] = std::move(bytes);
  return Status::OK();
}

Result<bool> ObjectStore::PutIfAbsent(const std::string& key,
                                      std::string bytes) {
  SimulateIo(options_.put_latency_us, bytes.size());
  std::lock_guard<std::mutex> lock(mu_);
  if (fail_puts_ > 0) {
    fail_puts_--;
    return Status::IoError("injected failure writing '" + key + "'");
  }
  auto [it, inserted] = blobs_.try_emplace(key, std::move(bytes));
  if (inserted) {
    bytes_written_ += static_cast<int64_t>(it->second.size());
    num_puts_++;
  }
  return inserted;
}

Result<std::string> ObjectStore::Get(const std::string& key) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (fail_gets_ > 0) {
    fail_gets_--;
    return Status::IoError("injected failure reading '" + key + "'");
  }
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::KeyError("object not found: " + key);
  }
  std::string out = it->second;
  bytes_read_ += static_cast<int64_t>(out.size());
  num_gets_++;
  lock.unlock();
  SimulateIo(options_.get_latency_us, out.size());
  return out;
}

bool ObjectStore::Exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return blobs_.count(key) > 0;
}

Status ObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (blobs_.erase(key) == 0) {
    return Status::KeyError("object not found: " + key);
  }
  return Status::OK();
}

std::vector<std::string> ObjectStore::List(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = blobs_.lower_bound(prefix);
       it != blobs_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

int64_t ObjectStore::DeletePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blobs_.lower_bound(prefix);
  int64_t count = 0;
  while (it != blobs_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0) {
    it = blobs_.erase(it);
    count++;
  }
  return count;
}

}  // namespace photon
