#include "storage/bitpack.h"

#include "common/macros.h"

namespace photon {

int BitWidthFor(uint64_t max_value) {
  int bits = 1;
  while (max_value >> bits) bits++;
  return bits;
}

void BitPack(const uint32_t* values, int n, int bit_width,
             BinaryWriter* out) {
  PHOTON_CHECK(bit_width >= 1 && bit_width <= 32);
  uint64_t word = 0;
  int bits_in_word = 0;
  for (int i = 0; i < n; i++) {
    word |= static_cast<uint64_t>(values[i]) << bits_in_word;
    bits_in_word += bit_width;
    if (bits_in_word >= 64) {
      out->WriteU64(word);
      bits_in_word -= 64;
      // Remaining high bits of the current value.
      word = bits_in_word > 0
                 ? static_cast<uint64_t>(values[i]) >>
                       (bit_width - bits_in_word)
                 : 0;
    }
  }
  if (bits_in_word > 0) out->WriteU64(word);
}

Status BitUnpack(BinaryReader* in, int n, int bit_width, uint32_t* out) {
  PHOTON_CHECK(bit_width >= 1 && bit_width <= 32);
  uint64_t word = 0;
  int bits_in_word = 0;
  uint64_t mask = bit_width == 64 ? ~0ULL : ((1ULL << bit_width) - 1);
  for (int i = 0; i < n; i++) {
    if (bits_in_word >= bit_width) {
      out[i] = static_cast<uint32_t>(word & mask);
      word >>= bit_width;
      bits_in_word -= bit_width;
      continue;
    }
    uint64_t next = 0;
    PHOTON_RETURN_NOT_OK(in->ReadU64(&next));
    uint64_t value = word | (next << bits_in_word);
    out[i] = static_cast<uint32_t>(value & mask);
    int consumed_from_next = bit_width - bits_in_word;
    word = next >> consumed_from_next;
    bits_in_word = 64 - consumed_from_next;
  }
  return Status::OK();
}

void BitPackSlow(const uint32_t* values, int n, int bit_width,
                 BinaryWriter* out) {
  // Bit-at-a-time into a byte stream padded to whole 64-bit words, so the
  // output is byte-identical to BitPack.
  std::vector<uint8_t> bits;
  bits.reserve(static_cast<size_t>(n) * bit_width);
  for (int i = 0; i < n; i++) {
    for (int b = 0; b < bit_width; b++) {
      bits.push_back((values[i] >> b) & 1);
    }
  }
  while (bits.size() % 64 != 0) bits.push_back(0);
  for (size_t w = 0; w < bits.size(); w += 64) {
    uint64_t word = 0;
    for (int b = 0; b < 64; b++) {
      word |= static_cast<uint64_t>(bits[w + b]) << b;
    }
    out->WriteU64(word);
  }
}

Status BitUnpackSlow(BinaryReader* in, int n, int bit_width, uint32_t* out) {
  int total_bits = n * bit_width;
  int words = (total_bits + 63) / 64;
  std::vector<uint64_t> data(words);
  for (int w = 0; w < words; w++) {
    PHOTON_RETURN_NOT_OK(in->ReadU64(&data[w]));
  }
  for (int i = 0; i < n; i++) {
    uint32_t v = 0;
    for (int b = 0; b < bit_width; b++) {
      int64_t bit = static_cast<int64_t>(i) * bit_width + b;
      uint64_t word = data[bit / 64];
      v |= static_cast<uint32_t>((word >> (bit % 64)) & 1) << b;
    }
    out[i] = v;
  }
  return Status::OK();
}

}  // namespace photon
