#ifndef PHOTON_STORAGE_DELTA_H_
#define PHOTON_STORAGE_DELTA_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "io/caching_store.h"
#include "storage/format.h"
#include "storage/object_store.h"

namespace photon {

/// Per-data-file entry in the transaction log, carrying the zone-map stats
/// the scanner uses for data skipping (the paper's Lakehouse stack gets
/// this from Delta Lake + Parquet footers; §2.1).
struct DeltaFileEntry {
  std::string key;  // object-store key of the data file
  int64_t num_rows = 0;
  /// Per-column min/max/null-count, aggregated over the file's row groups.
  std::vector<ColumnChunkMeta> column_stats;
};

/// A consistent view of the table at one log version.
struct DeltaSnapshot {
  int64_t version = -1;
  Schema schema;
  std::vector<DeltaFileEntry> files;

  int64_t num_rows() const {
    int64_t n = 0;
    for (const DeltaFileEntry& f : files) n += f.num_rows;
    return n;
  }
};

/// A minimal Delta-Lake-style transactional table layer over the object
/// store (see DESIGN.md substitutions): an append-only log of versioned
/// commits under `<path>/_delta_log/`, each holding metadata / add-file /
/// remove-file actions. Provides snapshots (time travel), optimistic
/// version allocation, and stats-based file skipping.
class DeltaTable {
 public:
  /// Creates a new table (commits version 0 with the schema).
  static Result<std::unique_ptr<DeltaTable>> Create(ObjectStore* store,
                                                    std::string path,
                                                    Schema schema);
  /// Opens an existing table.
  static Result<std::unique_ptr<DeltaTable>> Open(ObjectStore* store,
                                                  std::string path);

  const std::string& path() const { return path_; }

  /// Latest committed version.
  Result<int64_t> LatestVersion() const;

  /// Snapshot at `version` (-1 = latest). This is Delta's time travel.
  Result<DeltaSnapshot> Snapshot(int64_t version = -1) const;

  /// Writes `table` as one or more data files and commits an add-file
  /// transaction. Returns the new version.
  Result<int64_t> Append(const Table& data, FormatWriteOptions options = {});

  /// Commits a transaction that removes `remove_keys` and adds the data
  /// files of `add` (used by compaction/ETL rewrites). Returns version.
  Result<int64_t> Rewrite(const std::vector<std::string>& remove_keys,
                          const Table& add,
                          FormatWriteOptions options = {});

  /// Routes log replay (Snapshot/LatestVersion reads) through an IO block
  /// cache: replaying version v re-reads every log object 0..v, so a warm
  /// cache turns repeated snapshots into memory reads. The cache is
  /// borrowed and may be shared with scans.
  void SetIoCache(io::BlockCache* cache);

  /// Files of `snapshot` that may contain rows matching `predicate`,
  /// using per-column min/max stats (data skipping / file pruning). A null
  /// predicate returns all files.
  static std::vector<DeltaFileEntry> PruneFiles(
      const DeltaSnapshot& snapshot, const ExprPtr& predicate);

 private:
  DeltaTable(ObjectStore* store, std::string path)
      : store_(store), path_(std::move(path)) {}

  std::string LogKey(int64_t version) const;
  Result<int64_t> CommitActions(const std::string& payload);

  /// Reads one log object, through the cache when one is attached.
  Result<std::shared_ptr<const std::string>> ReadLog(int64_t version) const;

  ObjectStore* store_;
  std::string path_;
  int64_t file_seq_ = 0;
  /// Cached read path for log replay; null = direct store reads.
  std::unique_ptr<io::CachingStore> io_;
};

/// True when a conjunct of the form `col <op> literal` could match any row
/// given [min, max] column stats. Exposed for testing.
bool StatsMayMatch(const Expr& predicate, const Schema& schema,
                   const std::vector<ColumnChunkMeta>& stats);

}  // namespace photon

#endif  // PHOTON_STORAGE_DELTA_H_
