#ifndef PHOTON_STORAGE_DELTA_H_
#define PHOTON_STORAGE_DELTA_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "io/caching_store.h"
#include "storage/format.h"
#include "storage/object_store.h"

namespace photon {

/// Per-data-file entry in the transaction log, carrying the zone-map stats
/// the scanner uses for data skipping (the paper's Lakehouse stack gets
/// this from Delta Lake + Parquet footers; §2.1).
struct DeltaFileEntry {
  std::string key;  // object-store key of the data file
  int64_t num_rows = 0;
  /// Per-column min/max/null-count, aggregated over the file's row groups.
  std::vector<ColumnChunkMeta> column_stats;
};

/// A consistent view of the table at one log version.
struct DeltaSnapshot {
  int64_t version = -1;
  Schema schema;
  std::vector<DeltaFileEntry> files;

  int64_t num_rows() const {
    int64_t n = 0;
    for (const DeltaFileEntry& f : files) n += f.num_rows;
    return n;
  }
};

/// One optimistic transaction against the log (DESIGN.md §15). The writer
/// stages its data files first (WriteDataFile), then describes what it
/// read and what it changes; Commit claims the next log version atomically
/// and re-validates this read set against every commit that landed after
/// `read_version` before retrying a lost claim.
///
/// Conflict rules (conservative, always sound):
///   - a concurrent commit REMOVED a file in `remove_keys` (remove/remove:
///     both transactions rewrote or deleted the same file), or
///   - a concurrent commit REMOVED a file in `read_files` (a file whose
///     content this transaction's writes were derived from), or
///   - `reads_all_files` and the concurrent commit added or removed any
///     file (e.g. MERGE, whose matched/not-matched split reads the whole
///     table), or
///   - `read_predicate` is set and a concurrently ADDED file's zone-map
///     stats may contain matching rows (a phantom for this DELETE/UPDATE),
///   - or the concurrent commit changed the schema.
/// Any of these aborts with Status::CommitConflict; blind appends have an
/// empty read set and therefore never conflict, they only retry the claim.
struct DeltaTransaction {
  /// Snapshot version the transaction read (validation starts after it).
  int64_t read_version = -1;
  /// Schema at read time (used to decode stats of concurrent commits).
  Schema schema;
  /// Keys whose *content* this transaction depends on. Usually a superset
  /// of remove_keys (you read what you rewrite).
  std::vector<std::string> read_files;
  /// The transaction's matched/not-matched logic read every file (MERGE).
  bool reads_all_files = false;
  /// When set, files added concurrently whose stats may match this
  /// predicate conflict (phantom protection for predicate-scoped DML).
  ExprPtr read_predicate;

  std::vector<std::string> remove_keys;
  std::vector<DeltaFileEntry> add_files;
};

/// A minimal Delta-Lake-style transactional table layer over the object
/// store (see DESIGN.md substitutions): an append-only log of versioned
/// commits under `<path>/_delta_log/`, each holding metadata / add-file /
/// remove-file actions. Provides snapshots (time travel), optimistic
/// concurrent commits with read-set validation (DESIGN.md §15), and
/// stats-based file skipping.
class DeltaTable {
 public:
  /// Creates a new table (commits version 0 with the schema).
  static Result<std::unique_ptr<DeltaTable>> Create(ObjectStore* store,
                                                    std::string path,
                                                    Schema schema);
  /// Opens an existing table.
  static Result<std::unique_ptr<DeltaTable>> Open(ObjectStore* store,
                                                  std::string path);

  const std::string& path() const { return path_; }
  ObjectStore* store() const { return store_; }

  /// Latest committed version.
  Result<int64_t> LatestVersion() const;

  /// Snapshot at `version` (-1 = latest). This is Delta's time travel.
  Result<DeltaSnapshot> Snapshot(int64_t version = -1) const;

  /// Writes `table` as a data file and commits an add-file transaction.
  /// Blind appends never conflict; the commit retries a lost version claim
  /// internally. Returns the new version, or InvalidArgument on a schema
  /// mismatch (user-supplied DML reaches this path via the service).
  Result<int64_t> Append(const Table& data, FormatWriteOptions options = {});

  /// Commits a transaction that removes `remove_keys` and adds the data
  /// files of `add` (compaction/ETL rewrites). The removed files form the
  /// read set, so a concurrent rewrite of any of them aborts with
  /// CommitConflict — the caller re-reads and retries. Returns version.
  Result<int64_t> Rewrite(const std::vector<std::string>& remove_keys,
                          const Table& add,
                          FormatWriteOptions options = {});

  /// Stages `data` as a new data file (unique key, zone-map + NDV stats
  /// aggregated exactly as Append persists them) WITHOUT committing. The
  /// caller owns the staged object until a Commit carrying the entry wins;
  /// on abort/cancel it must ReleaseDataFile the key.
  Result<DeltaFileEntry> WriteDataFile(const Table& data,
                                       FormatWriteOptions options = {});

  /// Deletes a staged (never-committed) data file. Safe to call on a key
  /// that is already gone.
  void ReleaseDataFile(const std::string& key);

  /// Optimistic-concurrency commit (the tentpole protocol): claims version
  /// read_version+1.. with PutIfAbsent; on losing a claim, replays every
  /// intervening commit and validates `tx`'s read set (see
  /// DeltaTransaction), then retries with capped backoff. Returns the
  /// committed version, CommitConflict on a real conflict, or the store's
  /// error. On CommitConflict the transaction's staged files are NOT
  /// released — the caller decides whether to reuse or release them.
  Result<int64_t> Commit(const DeltaTransaction& tx);

  /// Routes log replay (Snapshot/LatestVersion reads) through an IO block
  /// cache: replaying version v re-reads every log object 0..v, so a warm
  /// cache turns repeated snapshots into memory reads. The cache is
  /// borrowed and may be shared with scans.
  void SetIoCache(io::BlockCache* cache);

  /// Files of `snapshot` that may contain rows matching `predicate`,
  /// using per-column min/max stats (data skipping / file pruning). A null
  /// predicate returns all files.
  static std::vector<DeltaFileEntry> PruneFiles(
      const DeltaSnapshot& snapshot, const ExprPtr& predicate);

 private:
  DeltaTable(ObjectStore* store, std::string path);

  std::string LogKey(int64_t version) const;
  /// One committed log version, decoded for read-set validation.
  struct LogActions {
    bool schema_changed = false;
    std::vector<DeltaFileEntry> adds;
    std::vector<std::string> removes;
  };
  Result<LogActions> ReadLogActions(int64_t version,
                                    const Schema& schema) const;
  /// CommitConflict iff the commit at `version` invalidates `tx`'s reads.
  Status ValidateAgainst(const DeltaTransaction& tx, int64_t version) const;

  /// Reads one log object, through the cache when one is attached.
  Result<std::shared_ptr<const std::string>> ReadLog(int64_t version) const;

  ObjectStore* store_;
  std::string path_;
  /// Data-file keys are `file-<instance nonce>-<seq>.pho`: the nonce is
  /// process-unique per DeltaTable handle and the sequence atomic, so
  /// concurrent writers — including two handles onto the same table —
  /// can never stage to the same key.
  const int64_t instance_nonce_;
  std::atomic<int64_t> file_seq_{0};
  /// Cached read path for log replay; null = direct store reads.
  std::unique_ptr<io::CachingStore> io_;
};

/// True when a conjunct of the form `col <op> literal` could match any row
/// given [min, max] column stats. Exposed for testing.
bool StatsMayMatch(const Expr& predicate, const Schema& schema,
                   const std::vector<ColumnChunkMeta>& stats);

}  // namespace photon

#endif  // PHOTON_STORAGE_DELTA_H_
