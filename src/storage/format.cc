#include "storage/format.h"

#include <chrono>
#include <cstring>

#include "ht/vectorized_hash_table.h"
#include "ops/scan.h"
#include "storage/bitpack.h"

namespace photon {
namespace {

constexpr char kMagic[4] = {'P', 'H', 'O', '1'};

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void WriteTypedValue(const DataType& type, const Value& v,
                     BinaryWriter* out) {
  switch (type.id()) {
    case TypeId::kBoolean:
      out->WriteU8(v.boolean() ? 1 : 0);
      break;
    case TypeId::kInt32:
    case TypeId::kDate32:
      out->WriteI32(v.i32());
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      out->WriteI64(v.i64());
      break;
    case TypeId::kFloat64:
      out->WriteF64(v.f64());
      break;
    case TypeId::kDecimal128: {
      uint128_t u = static_cast<uint128_t>(v.decimal().value());
      out->WriteU64(static_cast<uint64_t>(u));
      out->WriteU64(static_cast<uint64_t>(u >> 64));
      break;
    }
    case TypeId::kString:
      out->WriteString(v.str());
      break;
  }
}

Status ReadTypedValue(const DataType& type, BinaryReader* in, Value* out) {
  switch (type.id()) {
    case TypeId::kBoolean: {
      uint8_t b = 0;
      PHOTON_RETURN_NOT_OK(in->ReadU8(&b));
      *out = Value::Boolean(b != 0);
      return Status::OK();
    }
    case TypeId::kInt32: {
      int32_t v = 0;
      PHOTON_RETURN_NOT_OK(in->ReadI32(&v));
      *out = Value::Int32(v);
      return Status::OK();
    }
    case TypeId::kDate32: {
      int32_t v = 0;
      PHOTON_RETURN_NOT_OK(in->ReadI32(&v));
      *out = Value::Date32(v);
      return Status::OK();
    }
    case TypeId::kInt64: {
      int64_t v = 0;
      PHOTON_RETURN_NOT_OK(in->ReadI64(&v));
      *out = Value::Int64(v);
      return Status::OK();
    }
    case TypeId::kTimestamp: {
      int64_t v = 0;
      PHOTON_RETURN_NOT_OK(in->ReadI64(&v));
      *out = Value::Timestamp(v);
      return Status::OK();
    }
    case TypeId::kFloat64: {
      double v = 0;
      PHOTON_RETURN_NOT_OK(in->ReadF64(&v));
      *out = Value::Float64(v);
      return Status::OK();
    }
    case TypeId::kDecimal128: {
      uint64_t lo = 0, hi = 0;
      PHOTON_RETURN_NOT_OK(in->ReadU64(&lo));
      PHOTON_RETURN_NOT_OK(in->ReadU64(&hi));
      *out = Value::Decimal(Decimal128(
          static_cast<int128_t>((static_cast<uint128_t>(hi) << 64) | lo)));
      return Status::OK();
    }
    case TypeId::kString: {
      std::string s;
      PHOTON_RETURN_NOT_OK(in->ReadString(&s));
      *out = Value::String(std::move(s));
      return Status::OK();
    }
  }
  return Status::Internal("bad type");
}

Value ZeroValueForType(const DataType& type) {
  switch (type.id()) {
    case TypeId::kBoolean:
      return Value::Boolean(false);
    case TypeId::kInt32:
      return Value::Int32(0);
    case TypeId::kDate32:
      return Value::Date32(0);
    case TypeId::kInt64:
      return Value::Int64(0);
    case TypeId::kTimestamp:
      return Value::Timestamp(0);
    case TypeId::kFloat64:
      return Value::Float64(0);
    case TypeId::kDecimal128:
      return Value::Decimal(Decimal128(static_cast<int128_t>(0)));
    case TypeId::kString:
      return Value::String("");
  }
  return Value();
}

void WriteFileMeta(const FileMeta& meta, BinaryWriter* out) {
  out->WriteU8(static_cast<uint8_t>(meta.codec));
  out->WriteVarU64(meta.schema.num_fields());
  for (const Field& f : meta.schema.fields()) {
    out->WriteString(f.name);
    out->WriteU8(static_cast<uint8_t>(f.type.id()));
    out->WriteU8(static_cast<uint8_t>(f.type.precision()));
    out->WriteU8(static_cast<uint8_t>(f.type.scale()));
    out->WriteU8(f.nullable ? 1 : 0);
  }
  out->WriteVarU64(meta.row_groups.size());
  for (const RowGroupMeta& rg : meta.row_groups) {
    out->WriteVarU64(static_cast<uint64_t>(rg.num_rows));
    for (size_t c = 0; c < rg.columns.size(); c++) {
      const ColumnChunkMeta& chunk = rg.columns[c];
      out->WriteU8(static_cast<uint8_t>(chunk.encoding));
      out->WriteU64(chunk.offset);
      out->WriteU64(chunk.compressed_bytes);
      out->WriteVarU64(static_cast<uint64_t>(chunk.null_count));
      out->WriteU8(chunk.has_min_max ? 1 : 0);
      if (chunk.has_min_max) {
        const DataType& type = meta.schema.field(static_cast<int>(c)).type;
        WriteTypedValue(type, chunk.min, out);
        WriteTypedValue(type, chunk.max, out);
      }
      chunk.ndv.Serialize(out);
    }
  }
}

Status ReadFileMeta(BinaryReader* in, FileMeta* out) {
  uint8_t codec = 0;
  PHOTON_RETURN_NOT_OK(in->ReadU8(&codec));
  out->codec = static_cast<Codec>(codec);
  uint64_t num_fields = 0;
  PHOTON_RETURN_NOT_OK(in->ReadVarU64(&num_fields));
  Schema schema;
  for (uint64_t i = 0; i < num_fields; i++) {
    std::string name;
    uint8_t type_id = 0, precision = 0, scale = 0, nullable = 0;
    PHOTON_RETURN_NOT_OK(in->ReadString(&name));
    PHOTON_RETURN_NOT_OK(in->ReadU8(&type_id));
    PHOTON_RETURN_NOT_OK(in->ReadU8(&precision));
    PHOTON_RETURN_NOT_OK(in->ReadU8(&scale));
    PHOTON_RETURN_NOT_OK(in->ReadU8(&nullable));
    DataType type = static_cast<TypeId>(type_id) == TypeId::kDecimal128
                        ? DataType::Decimal(precision, scale)
                        : DataType(static_cast<TypeId>(type_id));
    schema.AddField(Field(name, type, nullable != 0));
  }
  out->schema = schema;
  uint64_t num_groups = 0;
  PHOTON_RETURN_NOT_OK(in->ReadVarU64(&num_groups));
  out->row_groups.clear();
  for (uint64_t g = 0; g < num_groups; g++) {
    RowGroupMeta rg;
    uint64_t rows = 0;
    PHOTON_RETURN_NOT_OK(in->ReadVarU64(&rows));
    rg.num_rows = static_cast<int64_t>(rows);
    for (int c = 0; c < schema.num_fields(); c++) {
      ColumnChunkMeta chunk;
      uint8_t enc = 0, has_stats = 0;
      uint64_t null_count = 0;
      PHOTON_RETURN_NOT_OK(in->ReadU8(&enc));
      chunk.encoding = static_cast<ChunkEncoding>(enc);
      PHOTON_RETURN_NOT_OK(in->ReadU64(&chunk.offset));
      PHOTON_RETURN_NOT_OK(in->ReadU64(&chunk.compressed_bytes));
      PHOTON_RETURN_NOT_OK(in->ReadVarU64(&null_count));
      chunk.null_count = static_cast<int64_t>(null_count);
      PHOTON_RETURN_NOT_OK(in->ReadU8(&has_stats));
      chunk.has_min_max = has_stats != 0;
      if (chunk.has_min_max) {
        PHOTON_RETURN_NOT_OK(
            ReadTypedValue(schema.field(c).type, in, &chunk.min));
        PHOTON_RETURN_NOT_OK(
            ReadTypedValue(schema.field(c).type, in, &chunk.max));
      }
      PHOTON_RETURN_NOT_OK(NdvSketch::Deserialize(in, &chunk.ndv));
      rg.columns.push_back(std::move(chunk));
    }
    out->row_groups.push_back(std::move(rg));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Chunk encoding (Photon fast path)
// ---------------------------------------------------------------------------

namespace {

/// Computes min/max/null_count over a dense column with tight typed loops.
void ComputeStats(const ColumnVector& col, int n, ColumnChunkMeta* meta) {
  const uint8_t* nulls = col.nulls();
  int64_t null_count = 0;
  bool has = false;
  Value min, max;
  auto update = [&](const Value& v) {
    if (!has) {
      min = v;
      max = v;
      has = true;
      return;
    }
    if (v.Compare(min) < 0) min = v;
    if (v.Compare(max) > 0) max = v;
  };
  // Typed fast paths for the common numeric cases; boxed for the rest.
  switch (col.type().id()) {
    case TypeId::kInt32:
    case TypeId::kDate32: {
      const int32_t* vals = col.data<int32_t>();
      int32_t lo = 0, hi = 0;
      for (int i = 0; i < n; i++) {
        if (nulls[i]) {
          null_count++;
          continue;
        }
        if (!has) {
          lo = hi = vals[i];
          has = true;
        } else {
          lo = std::min(lo, vals[i]);
          hi = std::max(hi, vals[i]);
        }
      }
      if (has) {
        min = col.type().id() == TypeId::kDate32 ? Value::Date32(lo)
                                                 : Value::Int32(lo);
        max = col.type().id() == TypeId::kDate32 ? Value::Date32(hi)
                                                 : Value::Int32(hi);
      }
      break;
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      const int64_t* vals = col.data<int64_t>();
      int64_t lo = 0, hi = 0;
      for (int i = 0; i < n; i++) {
        if (nulls[i]) {
          null_count++;
          continue;
        }
        if (!has) {
          lo = hi = vals[i];
          has = true;
        } else {
          lo = std::min(lo, vals[i]);
          hi = std::max(hi, vals[i]);
        }
      }
      if (has) {
        min = col.type().id() == TypeId::kTimestamp ? Value::Timestamp(lo)
                                                    : Value::Int64(lo);
        max = col.type().id() == TypeId::kTimestamp ? Value::Timestamp(hi)
                                                    : Value::Int64(hi);
      }
      break;
    }
    default: {
      for (int i = 0; i < n; i++) {
        if (nulls[i]) {
          null_count++;
          continue;
        }
        update(col.GetValue(i));
      }
      break;
    }
  }
  meta->null_count = null_count;
  meta->has_min_max = has;
  if (has) {
    meta->min = min;
    meta->max = max;
  }
  // Distinct-value sketch over the non-null values. Boxed hashing is fine
  // here: this runs once per chunk at write time, off the query path.
  for (int i = 0; i < n; i++) {
    if (nulls[i]) continue;
    meta->ndv.Add(col.GetValue(i).HashCode());
  }
}

void EncodePlain(const ColumnVector& col, int n, BinaryWriter* out) {
  switch (col.type().id()) {
    case TypeId::kBoolean: {
      std::vector<uint32_t> bits(n);
      const uint8_t* vals = col.data<uint8_t>();
      for (int i = 0; i < n; i++) bits[i] = vals[i] ? 1 : 0;
      BitPack(bits.data(), n, 1, out);
      break;
    }
    case TypeId::kString: {
      const StringRef* vals = col.data<StringRef>();
      const uint8_t* nulls = col.nulls();
      for (int i = 0; i < n; i++) {
        if (nulls[i]) {
          out->WriteVarU64(0);
          continue;
        }
        out->WriteVarU64(static_cast<uint64_t>(vals[i].len));
        out->Append(vals[i].data, vals[i].len);
      }
      break;
    }
    default:
      out->Append(col.data<uint8_t>(),
                  static_cast<size_t>(n) * col.type().byte_width());
      break;
  }
}

/// Attempts dictionary encoding using the vectorized hash table for the
/// distinct scan; returns false when the column isn't a good candidate.
bool TryEncodeDictionary(const ColumnBatch& batch, int col_idx, int n,
                         const FormatWriteOptions& options,
                         BinaryWriter* out) {
  const ColumnVector& col = *batch.column(col_idx);
  // Dictionary pays off for strings and low-cardinality fixed types.
  VectorizedHashTable ht({col.type()}, sizeof(int32_t),
                         /*match_null_keys=*/true);
  std::vector<uint64_t> hashes(n);
  std::vector<uint8_t*> entries(n);
  auto inserted = std::make_unique<bool[]>(n);
  std::vector<const ColumnVector*> keys = {&col};
  VectorizedHashTable::HashKeys(keys, batch, hashes.data());
  if (!ht.LookupOrInsert(keys, batch, hashes.data(), entries.data(),
                         inserted.get())
           .ok()) {
    return false;
  }

  // Assign dictionary ids in first-occurrence order; bail on blowup.
  std::vector<const uint8_t*> dict_entries;
  std::vector<uint32_t> indices(n);
  int64_t dict_value_bytes = 0;
  for (int i = 0; i < n; i++) {
    if (inserted[i]) {
      if (static_cast<int>(dict_entries.size()) >=
          options.max_dictionary_size) {
        return false;
      }
      *reinterpret_cast<int32_t*>(ht.payload(entries[i])) =
          static_cast<int32_t>(dict_entries.size());
      dict_entries.push_back(entries[i]);
      if (col.type().is_string() && !col.IsNull(i)) {
        dict_value_bytes += col.GetString(i).len;
      } else {
        dict_value_bytes += col.type().byte_width();
      }
    }
    indices[i] = static_cast<uint32_t>(
        *reinterpret_cast<const int32_t*>(ht.payload(entries[i])));
  }

  int bit_width = BitWidthFor(
      dict_entries.empty() ? 1 : dict_entries.size() - 1);
  // Size heuristic: dictionary + packed indices must beat plain.
  int64_t plain_bytes;
  if (col.type().is_string()) {
    plain_bytes = 0;
    const StringRef* vals = col.data<StringRef>();
    const uint8_t* nulls = col.nulls();
    for (int i = 0; i < n; i++) plain_bytes += nulls[i] ? 1 : vals[i].len + 1;
  } else {
    plain_bytes = static_cast<int64_t>(n) * col.type().byte_width();
  }
  int64_t dict_bytes =
      dict_value_bytes + static_cast<int64_t>(n) * bit_width / 8 + 64;
  if (dict_bytes >= plain_bytes) return false;

  out->WriteVarU64(dict_entries.size());
  for (const uint8_t* entry : dict_entries) {
    // NULL dictionary entries are encoded as the type's zero value; the
    // null byte vector restores NULL-ness on read.
    WriteTypedValue(col.type(),
                    ht.KeyIsNull(entry, 0) ? ZeroValueForType(col.type())
                                           : ht.GetKeyValue(entry, 0),
                    out);
  }
  out->WriteU8(static_cast<uint8_t>(bit_width));
  BitPack(indices.data(), n, bit_width, out);
  return true;
}

}  // namespace

FileWriter::FileWriter(Schema schema, FormatWriteOptions options)
    : schema_(std::move(schema)), options_(options) {
  file_.Append(kMagic, 4);
  meta_.schema = schema_;
  meta_.codec = options_.codec;
  pending_ = std::make_unique<ColumnBatch>(
      schema_, static_cast<int>(options_.row_group_rows));
}

Status FileWriter::WriteBatch(const ColumnBatch& batch) {
  PHOTON_CHECK(!finished_);
  for (int i = 0; i < batch.num_active(); i++) {
    CopyRow(batch, batch.ActiveRow(i), pending_.get(),
            static_cast<int>(pending_rows_));
    pending_rows_++;
    if (pending_rows_ == options_.row_group_rows) {
      pending_->set_num_rows(static_cast<int>(pending_rows_));
      pending_->SetAllActive();
      PHOTON_RETURN_NOT_OK(FlushRowGroup());
    }
  }
  return Status::OK();
}

Status FileWriter::FlushRowGroup() {
  int n = static_cast<int>(pending_rows_);
  if (n == 0) return Status::OK();
  pending_->set_num_rows(n);
  pending_->SetAllActive();

  RowGroupMeta rg;
  rg.num_rows = n;
  for (int c = 0; c < schema_.num_fields(); c++) {
    const ColumnVector& col = *pending_->column(c);
    ColumnChunkMeta chunk;

    int64_t t0 = NowNs();
    BinaryWriter payload;
    payload.WriteVarU64(static_cast<uint64_t>(n));
    payload.Append(col.nulls(), n);
    BinaryWriter values;
    bool dict_ok =
        options_.enable_dictionary &&
        TryEncodeDictionary(*pending_, c, n, options_, &values);
    if (dict_ok) {
      chunk.encoding = ChunkEncoding::kDictionary;
      stats_.dictionary_chunks++;
    } else {
      values = BinaryWriter();
      EncodePlain(col, n, &values);
      chunk.encoding = ChunkEncoding::kPlain;
      stats_.plain_chunks++;
    }
    payload.WriteU8(static_cast<uint8_t>(chunk.encoding));
    payload.Append(values.data().data(), values.size());
    ComputeStats(col, n, &chunk);
    int64_t t1 = NowNs();
    stats_.encode_ns += t1 - t0;

    std::string compressed = Compress(
        std::string_view(reinterpret_cast<const char*>(payload.data().data()),
                         payload.size()),
        options_.codec);
    int64_t t2 = NowNs();
    stats_.compress_ns += t2 - t1;

    chunk.offset = file_.size();
    chunk.compressed_bytes = compressed.size();
    file_.Append(compressed.data(), compressed.size());
    rg.columns.push_back(std::move(chunk));
  }
  meta_.row_groups.push_back(std::move(rg));
  pending_->Reset();
  pending_rows_ = 0;
  return Status::OK();
}

Result<std::string> FileWriter::Finish() {
  PHOTON_CHECK(!finished_);
  pending_->set_num_rows(static_cast<int>(pending_rows_));
  pending_->SetAllActive();
  PHOTON_RETURN_NOT_OK(FlushRowGroup());
  finished_ = true;

  BinaryWriter footer;
  WriteFileMeta(meta_, &footer);
  file_.Append(footer.data().data(), footer.size());
  file_.WriteU32(static_cast<uint32_t>(footer.size()));
  file_.Append(kMagic, 4);
  stats_.bytes_written = static_cast<int64_t>(file_.size());
  return file_.ToString();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Result<std::unique_ptr<FileReader>> FileReader::Open(std::string file_bytes) {
  return Open(std::make_shared<const std::string>(std::move(file_bytes)));
}

Result<std::unique_ptr<FileReader>> FileReader::Open(
    std::shared_ptr<const std::string> file_bytes) {
  PHOTON_CHECK(file_bytes != nullptr);
  auto reader = std::unique_ptr<FileReader>(
      new FileReader(std::move(file_bytes)));
  const std::string& bytes = *reader->bytes_;
  if (bytes.size() < 12 || std::memcmp(bytes.data(), kMagic, 4) != 0 ||
      std::memcmp(bytes.data() + bytes.size() - 4, kMagic, 4) != 0) {
    return Status::IoError("not a photon columnar file");
  }
  uint32_t footer_len;
  std::memcpy(&footer_len, bytes.data() + bytes.size() - 8, 4);
  if (footer_len + 12 > bytes.size()) {
    return Status::IoError("corrupt footer length");
  }
  BinaryReader footer(bytes.data() + bytes.size() - 8 - footer_len,
                      footer_len);
  PHOTON_RETURN_NOT_OK(ReadFileMeta(&footer, &reader->meta_));
  return reader;
}

Result<std::unique_ptr<FileReader>> FileReader::OpenFromStore(
    ObjectStore* store, const std::string& key) {
  PHOTON_ASSIGN_OR_RETURN(std::string bytes, store->Get(key));
  return Open(std::move(bytes));
}

Result<std::unique_ptr<ColumnBatch>> FileReader::ReadRowGroup(
    int row_group, const std::vector<int>& columns) const {
  PHOTON_CHECK(row_group >= 0 && row_group < num_row_groups());
  const RowGroupMeta& rg = meta_.row_groups[row_group];
  std::vector<int> cols = columns;
  if (cols.empty()) {
    for (int c = 0; c < meta_.schema.num_fields(); c++) cols.push_back(c);
  }
  Schema projected;
  for (int c : cols) projected.AddField(meta_.schema.field(c));
  int n = static_cast<int>(rg.num_rows);
  auto batch = std::make_unique<ColumnBatch>(projected,
                                             std::max(n, kDefaultBatchSize));

  for (size_t out_c = 0; out_c < cols.size(); out_c++) {
    const ColumnChunkMeta& chunk = rg.columns[cols[out_c]];
    const DataType& type = meta_.schema.field(cols[out_c]).type;
    ColumnVector* out = batch->column(static_cast<int>(out_c));

    if (chunk.offset + chunk.compressed_bytes > bytes_->size()) {
      return Status::IoError("chunk out of bounds");
    }
    PHOTON_ASSIGN_OR_RETURN(
        std::string payload,
        Decompress(std::string_view(bytes_->data() + chunk.offset,
                                    chunk.compressed_bytes)));
    BinaryReader reader(payload);
    uint64_t stored_n = 0;
    PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&stored_n));
    if (static_cast<int>(stored_n) != n) {
      return Status::IoError("row count mismatch in chunk");
    }
    const uint8_t* nulls_span = nullptr;
    PHOTON_RETURN_NOT_OK(reader.ReadSpan(n, &nulls_span));
    std::memcpy(out->nulls(), nulls_span, n);
    bool any_null = chunk.null_count > 0;
    out->set_has_nulls(any_null ? TriState::kYes : TriState::kNo);

    uint8_t enc = 0;
    PHOTON_RETURN_NOT_OK(reader.ReadU8(&enc));
    if (static_cast<ChunkEncoding>(enc) == ChunkEncoding::kPlain) {
      switch (type.id()) {
        case TypeId::kBoolean: {
          std::vector<uint32_t> bits(n);
          PHOTON_RETURN_NOT_OK(BitUnpack(&reader, n, 1, bits.data()));
          for (int i = 0; i < n; i++) {
            out->data<uint8_t>()[i] = static_cast<uint8_t>(bits[i]);
          }
          break;
        }
        case TypeId::kString: {
          for (int i = 0; i < n; i++) {
            uint64_t len = 0;
            PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&len));
            const uint8_t* span = nullptr;
            PHOTON_RETURN_NOT_OK(reader.ReadSpan(len, &span));
            out->SetString(i, reinterpret_cast<const char*>(span),
                           static_cast<int32_t>(len));
          }
          break;
        }
        default: {
          const uint8_t* span = nullptr;
          size_t bytes = static_cast<size_t>(n) * type.byte_width();
          PHOTON_RETURN_NOT_OK(reader.ReadSpan(bytes, &span));
          std::memcpy(out->data<uint8_t>(), span, bytes);
          break;
        }
      }
    } else {
      // Dictionary chunk.
      uint64_t dict_size = 0;
      PHOTON_RETURN_NOT_OK(reader.ReadVarU64(&dict_size));
      std::vector<Value> dict(dict_size);
      for (uint64_t d = 0; d < dict_size; d++) {
        PHOTON_RETURN_NOT_OK(ReadTypedValue(type, &reader, &dict[d]));
      }
      uint8_t bit_width = 0;
      PHOTON_RETURN_NOT_OK(reader.ReadU8(&bit_width));
      std::vector<uint32_t> indices(n);
      PHOTON_RETURN_NOT_OK(BitUnpack(&reader, n, bit_width, indices.data()));
      for (int i = 0; i < n; i++) {
        if (out->nulls()[i]) continue;
        if (indices[i] >= dict_size) {
          return Status::IoError("dictionary index out of range");
        }
        out->SetValue(i, dict[indices[i]]);
      }
    }
  }
  batch->set_num_rows(n);
  batch->SetAllActive();
  return batch;
}

Result<FileMeta> WriteTableToStore(const Table& table, ObjectStore* store,
                                   const std::string& key,
                                   FormatWriteOptions options,
                                   WriteStats* stats) {
  FileWriter writer(table.schema(), options);
  for (int b = 0; b < table.num_batches(); b++) {
    PHOTON_RETURN_NOT_OK(writer.WriteBatch(table.batch(b)));
  }
  PHOTON_ASSIGN_OR_RETURN(std::string bytes, writer.Finish());
  int64_t t0 = NowNs();
  PHOTON_RETURN_NOT_OK(store->Put(key, std::move(bytes)));
  int64_t io_ns = NowNs() - t0;
  if (stats != nullptr) {
    *stats = writer.stats();
    stats->io_ns = io_ns;
  }
  return writer.meta();
}

}  // namespace photon
