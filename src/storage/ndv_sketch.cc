#include "storage/ndv_sketch.h"

#include <cmath>

namespace photon {

void NdvSketch::Add(uint64_t hash) {
  // High bits pick the register; the rank is the position of the first set
  // bit in the remaining stream (1-based), capped by the stream width.
  uint32_t idx = static_cast<uint32_t>(hash >> (64 - kRegisterBits));
  uint64_t rest = hash << kRegisterBits;
  uint8_t rank = rest == 0
                     ? static_cast<uint8_t>(64 - kRegisterBits + 1)
                     : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  if (rank > regs_[idx]) regs_[idx] = rank;
}

void NdvSketch::Merge(const NdvSketch& other) {
  for (int i = 0; i < kNumRegisters; i++) {
    if (other.regs_[i] > regs_[i]) regs_[i] = other.regs_[i];
  }
}

bool NdvSketch::empty() const {
  for (int i = 0; i < kNumRegisters; i++) {
    if (regs_[i] != 0) return false;
  }
  return true;
}

double NdvSketch::Estimate() const {
  constexpr double m = kNumRegisters;
  // alpha_m for m >= 128.
  constexpr double alpha = 0.7213 / (1.0 + 1.079 / m);
  double inv_sum = 0;
  int zeros = 0;
  for (int i = 0; i < kNumRegisters; i++) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(regs_[i]));
    if (regs_[i] == 0) zeros++;
  }
  if (zeros == kNumRegisters) return 0;
  double estimate = alpha * m * m / inv_sum;
  // Linear counting handles the small range where raw HLL is biased.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void NdvSketch::Serialize(BinaryWriter* out) const {
  if (empty()) {
    out->WriteU8(0);
    return;
  }
  out->WriteU8(1);
  out->Append(regs_.data(), regs_.size());
}

Status NdvSketch::Deserialize(BinaryReader* in, NdvSketch* out) {
  uint8_t has = 0;
  PHOTON_RETURN_NOT_OK(in->ReadU8(&has));
  *out = NdvSketch();
  if (has == 0) return Status::OK();
  const uint8_t* span = nullptr;
  PHOTON_RETURN_NOT_OK(in->ReadSpan(kNumRegisters, &span));
  for (int i = 0; i < kNumRegisters; i++) out->regs_[i] = span[i];
  return Status::OK();
}

}  // namespace photon
