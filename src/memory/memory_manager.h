#ifndef PHOTON_MEMORY_MEMORY_MANAGER_H_
#define PHOTON_MEMORY_MEMORY_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace photon {

/// A participant in unified memory management (§5.3): anything that holds
/// large persistent allocations (hash join builds, aggregation tables,
/// sorts) registers as a consumer so the manager can ask it to spill on
/// behalf of other consumers.
class MemoryConsumer {
 public:
  explicit MemoryConsumer(std::string name) : name_(std::move(name)) {}
  virtual ~MemoryConsumer() = default;

  /// Asks the consumer to free up to `requested` bytes by spilling to disk.
  /// Returns the number of bytes actually released back to the manager.
  /// May be called while some *other* consumer is reserving ("recursive
  /// spill" in the paper's terms).
  virtual int64_t Spill(int64_t requested) = 0;

  const std::string& name() const { return name_; }
  int64_t reserved_bytes() const { return reserved_; }

 private:
  friend class MemoryManager;
  std::string name_;
  int64_t reserved_ = 0;
};

/// Unified memory manager mirroring Apache Spark's, as Photon integrates
/// with it (§5.3): reservations are separated from allocations. An operator
/// first *reserves* memory (which may force spilling — of itself or of any
/// other consumer), and only then allocates, so allocation never fails
/// mid-operation.
///
/// Spill policy (same as open-source Spark, per the paper): sort consumers
/// from least to most allocated and spill the first one holding at least
/// the requested amount; this minimizes the number of spills without
/// spilling more data than necessary. If no single consumer suffices, spill
/// from largest down until satisfied.
class MemoryManager {
 public:
  explicit MemoryManager(int64_t limit_bytes) : limit_(limit_bytes) {}

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  void RegisterConsumer(MemoryConsumer* consumer);
  void UnregisterConsumer(MemoryConsumer* consumer);

  /// Reserves `bytes` for `consumer`, spilling other consumers (or the
  /// requester itself) if needed. Returns OutOfMemory only if spilling
  /// everything still cannot satisfy the request.
  Status Reserve(MemoryConsumer* consumer, int64_t bytes);

  /// Returns previously reserved bytes to the pool.
  void Release(MemoryConsumer* consumer, int64_t bytes);

  int64_t limit() const { return limit_; }
  int64_t reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_reserved_;
  }
  int64_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return limit_ - total_reserved_;
  }
  int64_t spill_count() const { return spill_count_; }
  int64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  int64_t limit_;
  mutable std::mutex mu_;
  int64_t total_reserved_ = 0;
  std::vector<MemoryConsumer*> consumers_;
  int64_t spill_count_ = 0;
  int64_t spilled_bytes_ = 0;
};

/// RAII helper tying a consumer's lifetime to its manager registration.
class ScopedConsumerRegistration {
 public:
  ScopedConsumerRegistration(MemoryManager* mgr, MemoryConsumer* consumer)
      : mgr_(mgr), consumer_(consumer) {
    mgr_->RegisterConsumer(consumer_);
  }
  ~ScopedConsumerRegistration() {
    mgr_->Release(consumer_, consumer_->reserved_bytes());
    mgr_->UnregisterConsumer(consumer_);
  }
  ScopedConsumerRegistration(const ScopedConsumerRegistration&) = delete;
  ScopedConsumerRegistration& operator=(const ScopedConsumerRegistration&) =
      delete;

 private:
  MemoryManager* mgr_;
  MemoryConsumer* consumer_;
};

}  // namespace photon

#endif  // PHOTON_MEMORY_MEMORY_MANAGER_H_
