#ifndef PHOTON_MEMORY_MEMORY_MANAGER_H_
#define PHOTON_MEMORY_MEMORY_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace photon {

/// A participant in unified memory management (§5.3): anything that holds
/// large persistent allocations (hash join builds, aggregation tables,
/// sorts) registers as a consumer so the manager can ask it to spill on
/// behalf of other consumers.
class MemoryConsumer {
 public:
  explicit MemoryConsumer(std::string name) : name_(std::move(name)) {}
  virtual ~MemoryConsumer() = default;

  /// Asks the consumer to free up to `requested` bytes by spilling to disk.
  /// Returns the number of bytes actually released back to the manager.
  /// May be called while some *other* consumer is reserving ("recursive
  /// spill" in the paper's terms).
  virtual int64_t Spill(int64_t requested) = 0;

  const std::string& name() const { return name_; }
  int64_t reserved_bytes() const { return reserved_; }

  /// Observability counters, updated by the manager (under its lock) and
  /// read by operators when publishing metrics after their work completes.
  /// High-water reservation.
  int64_t peak_reserved_bytes() const { return peak_reserved_; }
  /// Time this consumer's reservations spent blocked on other task
  /// groups' releases (§5.3 backpressure), and how often.
  int64_t reserve_wait_ns() const { return reserve_wait_ns_; }
  int64_t reserve_waits() const { return reserve_waits_; }
  /// Bytes/count spilled from this consumer when picked as a victim.
  int64_t spilled_bytes_total() const { return spilled_bytes_total_; }
  int64_t spill_count_total() const { return spill_count_total_; }

  /// Task group this consumer belongs to. Under parallel execution each
  /// driver task gets a distinct group; a reservation only spills victims
  /// in the *same* group (plus spill-safe consumers), because per-task
  /// consumers are driven by a single thread and a cross-group Spill()
  /// would race with the owning task. Group 0 is the default
  /// (single-threaded) group. Set before registering with the manager.
  int64_t task_group() const { return task_group_; }
  void set_task_group(int64_t group) { task_group_ = group; }

  /// Spill-safe consumers have an internally thread-safe Spill() (e.g. the
  /// IO BlockCache) and stay eligible as victims for *any* group's
  /// reservation. Set before registering with the manager.
  bool spill_safe() const { return spill_safe_; }
  void set_spill_safe(bool safe) { spill_safe_ = safe; }

  /// Per-query override of the manager's reserve timeout (see
  /// MemoryManager::set_reserve_timeout_ms). Negative = use the manager's
  /// global default. Carried from ExecContext so one tenant's spill
  /// tuning never changes another query's backpressure behavior. Set
  /// before registering with the manager.
  int64_t reserve_timeout_ms() const { return reserve_timeout_ms_; }
  void set_reserve_timeout_ms(int64_t ms) { reserve_timeout_ms_ = ms; }

  /// Optional cancellation token (the owning query's). A Reserve blocked
  /// on other task groups' releases polls it so a cancelled query stops
  /// waiting promptly instead of holding its thread until the timeout.
  QueryControl* control() const { return control_; }
  void set_control(QueryControl* control) { control_ = control; }

 private:
  friend class MemoryManager;
  std::string name_;
  int64_t reserved_ = 0;
  int64_t peak_reserved_ = 0;
  int64_t reserve_wait_ns_ = 0;
  int64_t reserve_waits_ = 0;
  int64_t spilled_bytes_total_ = 0;
  int64_t spill_count_total_ = 0;
  int64_t task_group_ = 0;
  bool spill_safe_ = false;
  int64_t reserve_timeout_ms_ = -1;
  QueryControl* control_ = nullptr;
};

/// Unified memory manager mirroring Apache Spark's, as Photon integrates
/// with it (§5.3): reservations are separated from allocations. An operator
/// first *reserves* memory (which may force spilling — of itself or of any
/// other consumer), and only then allocates, so allocation never fails
/// mid-operation.
///
/// Spill policy (same as open-source Spark, per the paper): sort consumers
/// from least to most allocated and spill the first one holding at least
/// the requested amount; this minimizes the number of spills without
/// spilling more data than necessary. If no single consumer suffices, spill
/// from largest down until satisfied.
class MemoryManager {
 public:
  explicit MemoryManager(int64_t limit_bytes) : limit_(limit_bytes) {}

  /// Caps how long Reserve blocks waiting for *other* task groups to
  /// release memory before declaring a real OOM. The default (10s) suits
  /// production backpressure; tests that drive the manager into genuine
  /// OOM on purpose lower it so every doomed reservation fails fast.
  /// This is the process-wide default; a consumer whose
  /// reserve_timeout_ms() is non-negative (set per query via ExecContext)
  /// overrides it for its own reservations only.
  void set_reserve_timeout_ms(int64_t ms) { reserve_timeout_ms_ = ms; }
  int64_t reserve_timeout_ms() const { return reserve_timeout_ms_; }

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  void RegisterConsumer(MemoryConsumer* consumer);
  void UnregisterConsumer(MemoryConsumer* consumer);

  /// Reserves `bytes` for `consumer`, spilling other consumers (or the
  /// requester itself) if needed. When the requester's own task group has
  /// nothing left to spill but *other* groups still hold memory, the call
  /// blocks (bounded) until a Release frees capacity — backpressure
  /// between concurrent tasks instead of a spurious OOM. Returns
  /// OutOfMemory only if spilling everything reachable still cannot
  /// satisfy the request.
  Status Reserve(MemoryConsumer* consumer, int64_t bytes);

  /// Returns previously reserved bytes to the pool.
  void Release(MemoryConsumer* consumer, int64_t bytes);

  int64_t limit() const { return limit_; }
  int64_t reserved() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_reserved_;
  }
  int64_t available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return limit_ - total_reserved_;
  }
  int64_t spill_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spill_count_;
  }
  int64_t spilled_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spilled_bytes_;
  }

 private:
  int64_t limit_;
  int64_t reserve_timeout_ms_ = 10000;
  mutable std::mutex mu_;
  /// Signalled by Release(); reservations blocked on other task groups'
  /// memory wait here.
  std::condition_variable cv_;
  int64_t total_reserved_ = 0;
  std::vector<MemoryConsumer*> consumers_;
  int64_t spill_count_ = 0;
  int64_t spilled_bytes_ = 0;
};

/// RAII helper tying a consumer's lifetime to its manager registration.
class ScopedConsumerRegistration {
 public:
  ScopedConsumerRegistration(MemoryManager* mgr, MemoryConsumer* consumer)
      : mgr_(mgr), consumer_(consumer) {
    mgr_->RegisterConsumer(consumer_);
  }
  ~ScopedConsumerRegistration() {
    mgr_->Release(consumer_, consumer_->reserved_bytes());
    mgr_->UnregisterConsumer(consumer_);
  }
  ScopedConsumerRegistration(const ScopedConsumerRegistration&) = delete;
  ScopedConsumerRegistration& operator=(const ScopedConsumerRegistration&) =
      delete;

 private:
  MemoryManager* mgr_;
  MemoryConsumer* consumer_;
};

}  // namespace photon

#endif  // PHOTON_MEMORY_MEMORY_MANAGER_H_
