#include "memory/memory_manager.h"

#include <algorithm>

#include "common/logging.h"
#include "common/macros.h"

namespace photon {

void MemoryManager::RegisterConsumer(MemoryConsumer* consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  consumers_.push_back(consumer);
}

void MemoryManager::UnregisterConsumer(MemoryConsumer* consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  PHOTON_CHECK(consumer->reserved_ == 0);
  consumers_.erase(
      std::remove(consumers_.begin(), consumers_.end(), consumer),
      consumers_.end());
}

Status MemoryManager::Reserve(MemoryConsumer* consumer, int64_t bytes) {
  PHOTON_CHECK(bytes >= 0);
  std::unique_lock<std::mutex> lock(mu_);
  while (total_reserved_ + bytes > limit_) {
    int64_t need = total_reserved_ + bytes - limit_;

    // Spark's policy: ascending by reservation, spill the first consumer
    // that can cover the whole deficit by itself.
    std::vector<MemoryConsumer*> sorted = consumers_;
    std::sort(sorted.begin(), sorted.end(),
              [](MemoryConsumer* a, MemoryConsumer* b) {
                return a->reserved_ < b->reserved_;
              });
    MemoryConsumer* victim = nullptr;
    for (MemoryConsumer* c : sorted) {
      if (c->reserved_ >= need) {
        victim = c;
        break;
      }
    }
    if (victim == nullptr) {
      // No single consumer suffices: take the largest (it frees the most).
      for (MemoryConsumer* c : sorted) {
        if (victim == nullptr || c->reserved_ > victim->reserved_) victim = c;
      }
    }
    if (victim == nullptr || victim->reserved_ == 0) {
      return Status::OutOfMemory(
          "cannot reserve " + std::to_string(bytes) + " bytes for '" +
          consumer->name() + "': limit " + std::to_string(limit_) +
          ", reserved " + std::to_string(total_reserved_) +
          " and nothing left to spill");
    }

    // Release the lock while the victim spills: spilling re-enters the
    // manager via Release(). This also allows the recursive-spill case
    // where the requester itself is chosen.
    lock.unlock();
    int64_t freed = victim->Spill(need);
    lock.lock();
    spill_count_++;
    spilled_bytes_ += freed;
    if (freed <= 0) {
      // The victim could not actually free memory (e.g. mid-batch); avoid
      // an infinite loop by failing the reservation.
      return Status::OutOfMemory("spill of '" + victim->name() +
                                 "' freed no memory");
    }
  }
  total_reserved_ += bytes;
  consumer->reserved_ += bytes;
  return Status::OK();
}

void MemoryManager::Release(MemoryConsumer* consumer, int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  PHOTON_CHECK(consumer->reserved_ >= bytes);
  consumer->reserved_ -= bytes;
  total_reserved_ -= bytes;
}

}  // namespace photon
