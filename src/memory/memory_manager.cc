#include "memory/memory_manager.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/macros.h"
#include "obs/trace.h"

namespace photon {

void MemoryManager::RegisterConsumer(MemoryConsumer* consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  consumers_.push_back(consumer);
}

void MemoryManager::UnregisterConsumer(MemoryConsumer* consumer) {
  std::lock_guard<std::mutex> lock(mu_);
  PHOTON_CHECK(consumer->reserved_ == 0);
  consumers_.erase(
      std::remove(consumers_.begin(), consumers_.end(), consumer),
      consumers_.end());
}

Status MemoryManager::Reserve(MemoryConsumer* consumer, int64_t bytes) {
  PHOTON_CHECK(bytes >= 0);
  std::unique_lock<std::mutex> lock(mu_);
  // Per-query timeout override (ExecContext-carried) beats the process
  // default, so one tenant's fail-fast spill tuning cannot change another
  // query's backpressure window.
  const int64_t timeout_ms = consumer->reserve_timeout_ms_ >= 0
                                 ? consumer->reserve_timeout_ms_
                                 : reserve_timeout_ms_;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  // Blocks until a Release frees capacity, as long as consumers *outside*
  // the requester's victim set still hold memory (they cannot be spilled
  // from this thread, but they will release). Returns false once nothing
  // outside the group holds memory or the deadline passes — then OOM is
  // real, not transient pressure from a concurrent task.
  auto wait_for_other_groups = [&]() -> bool {
    if (consumer->control_ != nullptr && consumer->control_->cancelled()) {
      return false;  // cancelled queries must not wait out the timeout
    }
    int64_t outside = 0;
    for (MemoryConsumer* c : consumers_) {
      if (!(c->spill_safe_ || c->task_group_ == consumer->task_group_)) {
        outside += c->reserved_;
      }
    }
    if (outside <= 0) return false;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    int64_t t0 = obs::WallNowNs();
    cv_.wait_for(lock, std::chrono::milliseconds(50));
    int64_t waited = obs::WallNowNs() - t0;
    consumer->reserve_wait_ns_ += waited;
    consumer->reserve_waits_++;
    obs::Tracer::Record("mem.reserve_wait", consumer->task_group_, t0,
                        waited);
    return true;
  };
  while (total_reserved_ + bytes > limit_) {
    if (consumer->control_ != nullptr) {
      // A cancelled (or deadline-expired) query under memory pressure
      // aborts its reservation instead of spilling peers or blocking.
      Status alive = consumer->control_->Check();
      if (!alive.ok()) return alive;
    }
    int64_t need = total_reserved_ + bytes - limit_;

    // Spark's policy: ascending by reservation, spill the first consumer
    // that can cover the whole deficit by itself. Victims are restricted
    // to the requester's task group (single-threaded ownership) plus
    // spill-safe consumers whose Spill() is internally thread-safe.
    std::vector<MemoryConsumer*> sorted;
    sorted.reserve(consumers_.size());
    for (MemoryConsumer* c : consumers_) {
      if (c->spill_safe_ || c->task_group_ == consumer->task_group_) {
        sorted.push_back(c);
      }
    }
    std::sort(sorted.begin(), sorted.end(),
              [](MemoryConsumer* a, MemoryConsumer* b) {
                return a->reserved_ < b->reserved_;
              });
    MemoryConsumer* victim = nullptr;
    for (MemoryConsumer* c : sorted) {
      if (c->reserved_ >= need) {
        victim = c;
        break;
      }
    }
    if (victim == nullptr) {
      // No single consumer suffices: take the largest (it frees the most).
      for (MemoryConsumer* c : sorted) {
        if (victim == nullptr || c->reserved_ > victim->reserved_) victim = c;
      }
    }
    if (victim == nullptr || victim->reserved_ == 0) {
      if (wait_for_other_groups()) continue;
      return Status::OutOfMemory(
          "cannot reserve " + std::to_string(bytes) + " bytes for '" +
          consumer->name() + "': limit " + std::to_string(limit_) +
          ", reserved " + std::to_string(total_reserved_) +
          " and nothing left to spill");
    }

    // Release the lock while the victim spills: spilling re-enters the
    // manager via Release(). This also allows the recursive-spill case
    // where the requester itself is chosen.
    lock.unlock();
    int64_t freed;
    {
      obs::TraceSpan span("mem.spill", victim->task_group_);
      freed = victim->Spill(need);
    }
    lock.lock();
    spill_count_++;
    spilled_bytes_ += freed;
    victim->spill_count_total_++;
    if (freed > 0) victim->spilled_bytes_total_ += freed;
    if (freed <= 0) {
      // The victim could not actually free memory (e.g. mid-batch); avoid
      // an infinite loop by failing the reservation — unless other task
      // groups still hold memory, in which case wait for their releases.
      if (wait_for_other_groups()) continue;
      return Status::OutOfMemory("spill of '" + victim->name() +
                                 "' freed no memory");
    }
  }
  total_reserved_ += bytes;
  consumer->reserved_ += bytes;
  if (consumer->reserved_ > consumer->peak_reserved_) {
    consumer->peak_reserved_ = consumer->reserved_;
  }
  return Status::OK();
}

void MemoryManager::Release(MemoryConsumer* consumer, int64_t bytes) {
  if (bytes <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  PHOTON_CHECK(consumer->reserved_ >= bytes);
  consumer->reserved_ -= bytes;
  total_reserved_ -= bytes;
  cv_.notify_all();
}

}  // namespace photon
