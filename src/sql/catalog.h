#ifndef PHOTON_SQL_CATALOG_H_
#define PHOTON_SQL_CATALOG_H_

#include <string>
#include <utility>
#include <vector>

#include "io/caching_store.h"
#include "plan/logical_plan.h"
#include "storage/delta.h"

namespace photon {
namespace sql {

/// Writable-table binding: the live DeltaTable behind a registered name,
/// so the analyzer can lower DML against it and `VERSION AS OF n` can
/// build a pinned snapshot scan. Plain reads still go through the
/// registered leaf (a DeltaScan of the snapshot current at registration —
/// re-register after commits to advance it).
struct DeltaBinding {
  DeltaTable* table = nullptr;
  io::IoOptions io;
};

/// Name → leaf-plan binding used by the analyzer to resolve FROM clauses
/// and by the pretty-printer to name leaves. A "table" here is any leaf
/// PlanNode (kScan over an in-memory Table, or kDeltaScan over a lakehouse
/// snapshot with pruning/IO options baked in) — registering the exact leaf
/// node is what lets a round-tripped query reference the identical Table* /
/// snapshot as a hand-built plan.
class Catalog {
 public:
  /// Registers `leaf` (must be kScan or kDeltaScan) under `name`. Re-using
  /// a name replaces the previous binding.
  void Register(const std::string& name, plan::PlanPtr leaf);

  /// Sugar: Register(name, plan::Scan(table)).
  void RegisterTable(const std::string& name, const Table* table);

  /// Registers a writable delta table: binds `name` to a DeltaScan of the
  /// table's latest snapshot (for plain reads and NameOf identity) and
  /// records the DeltaBinding so DML and VERSION AS OF resolve to the live
  /// table. Call again after commits to advance the read snapshot.
  /// Returns the snapshot registration failed on (e.g. IO error).
  Status RegisterDeltaTable(const std::string& name, DeltaTable* table,
                            io::IoOptions io = {});

  /// The delta binding, or nullptr when `name` is unknown or read-only.
  const DeltaBinding* LookupDelta(const std::string& name) const;

  /// The registered leaf, or nullptr when the name is unknown.
  const plan::PlanPtr* Lookup(const std::string& name) const;

  /// Reverse lookup by node identity, for the pretty-printer. Returns ""
  /// when the node was not registered.
  std::string NameOf(const plan::PlanNode* leaf) const;

  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, plan::PlanPtr>> entries_;
  std::vector<std::pair<std::string, DeltaBinding>> delta_entries_;
};

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_CATALOG_H_
