#ifndef PHOTON_SQL_CATALOG_H_
#define PHOTON_SQL_CATALOG_H_

#include <string>
#include <utility>
#include <vector>

#include "plan/logical_plan.h"

namespace photon {
namespace sql {

/// Name → leaf-plan binding used by the analyzer to resolve FROM clauses
/// and by the pretty-printer to name leaves. A "table" here is any leaf
/// PlanNode (kScan over an in-memory Table, or kDeltaScan over a lakehouse
/// snapshot with pruning/IO options baked in) — registering the exact leaf
/// node is what lets a round-tripped query reference the identical Table* /
/// snapshot as a hand-built plan.
class Catalog {
 public:
  /// Registers `leaf` (must be kScan or kDeltaScan) under `name`. Re-using
  /// a name replaces the previous binding.
  void Register(const std::string& name, plan::PlanPtr leaf);

  /// Sugar: Register(name, plan::Scan(table)).
  void RegisterTable(const std::string& name, const Table* table);

  /// The registered leaf, or nullptr when the name is unknown.
  const plan::PlanPtr* Lookup(const std::string& name) const;

  /// Reverse lookup by node identity, for the pretty-printer. Returns ""
  /// when the node was not registered.
  std::string NameOf(const plan::PlanNode* leaf) const;

  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, plan::PlanPtr>> entries_;
};

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_CATALOG_H_
