#ifndef PHOTON_SQL_PRINTER_H_
#define PHOTON_SQL_PRINTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "plan/logical_plan.h"
#include "sql/catalog.h"

namespace photon {
namespace sql {

/// Renders a logical plan back to executable SQL (DESIGN.md §13.5). Every
/// leaf of the plan must be registered in `catalog` (the printed FROM
/// clauses reference leaves by catalog name). The output is designed to
/// round-trip: CompileSql(PlanToSql(p)) produces a plan with the same
/// PlanFingerprint as `p`, which is what differ mode 7 checks on every
/// fuzzed plan.
Result<std::string> PlanToSql(const plan::PlanPtr& plan,
                              const Catalog& catalog);

/// Renders one expression as SQL. `col_names[i]` is the name to print for
/// ColumnRefExpr index i (positional aliases like "c3"). Parentheses are
/// emitted from operator precedence so the parse tree is unambiguous.
std::string ExprToSql(const Expr& expr,
                      const std::vector<std::string>& col_names);

/// Canonical structural fingerprint of a plan, insensitive to the one
/// rewrite the SQL round trip may apply: a hash-join key pair and a
/// residual equality conjunct are interchangeable forms of the same join
/// condition, so join conditions are fingerprinted as a unified conjunct
/// list. Column identity is positional; names are ignored. Scan leaves
/// fingerprint by Table* / node identity, so two plans compare equal only
/// when they read the same data.
std::string PlanFingerprint(const plan::PlanPtr& plan);

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_PRINTER_H_
