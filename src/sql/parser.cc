#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "sql/lexer.h"

namespace photon {
namespace sql {
namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Recursive-descent statement parser + Pratt expression parser over the
/// pre-lexed token stream. Every recursive production threads an explicit
/// depth so pathological nesting fails with a located error instead of
/// exhausting the stack.
class Parser {
 public:
  Parser(const std::string& source, std::vector<Token> tokens)
      : source_(source), tokens_(std::move(tokens)) {}

  Result<SelectStmtPtr> ParseStatement() {
    Result<SelectStmtPtr> stmt = ParseSelectStmt(0);
    if (!stmt.ok()) return stmt.status();
    Status s = ExpectStatementEnd();
    if (!s.ok()) return s;
    return stmt;
  }

  /// Top-level dispatcher: SELECT/WITH take the existing query path,
  /// DELETE/UPDATE/MERGE take the DML productions.
  Result<Statement> ParseTopLevel() {
    Statement out;
    if (Peek().IsKeyword("DELETE")) {
      Result<std::shared_ptr<DeleteStmt>> d = ParseDeleteStmt();
      if (!d.ok()) return d.status();
      out.kind = StatementKind::kDelete;
      out.delete_stmt = *d;
    } else if (Peek().IsKeyword("UPDATE")) {
      Result<std::shared_ptr<UpdateStmt>> u = ParseUpdateStmt();
      if (!u.ok()) return u.status();
      out.kind = StatementKind::kUpdate;
      out.update_stmt = *u;
    } else if (Peek().IsKeyword("MERGE")) {
      Result<std::shared_ptr<MergeStmt>> m = ParseMergeStmt();
      if (!m.ok()) return m.status();
      out.kind = StatementKind::kMerge;
      out.merge_stmt = *m;
    } else {
      Result<SelectStmtPtr> stmt = ParseSelectStmt(0);
      if (!stmt.ok()) return stmt.status();
      out.kind = StatementKind::kSelect;
      out.select = *stmt;
    }
    Status s = ExpectStatementEnd();
    if (!s.ok()) return s;
    return out;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    if (i >= tokens_.size()) return tokens_.back();
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(int offset, const std::string& msg) const {
    return Status::InvalidArgument(ErrorAt(source_, offset, msg));
  }
  static std::string Describe(const Token& t) {
    if (t.kind == TokenKind::kEnd) return "end of input";
    return std::string(TokenKindName(t.kind)) + " '" + t.text + "'";
  }
  Status Expect(const char* what, bool keyword) {
    const Token& t = Peek();
    if (keyword ? t.IsKeyword(what) : t.IsSymbol(what)) {
      Advance();
      return Status::OK();
    }
    return Error(t.offset, std::string("expected '") + what + "', got " +
                               Describe(t));
  }
  Status ExpectKeyword(const char* kw) { return Expect(kw, true); }
  Status ExpectSymbol(const char* sym) { return Expect(sym, false); }

  SqlExprPtr MakeExpr(SqlExprKind kind, int offset) {
    auto e = std::make_shared<SqlExpr>();
    e->kind = kind;
    e->offset = offset;
    return e;
  }

  // ---- statements ------------------------------------------------------

  Result<SelectStmtPtr> ParseSelectStmt(int query_depth) {
    if (query_depth > kMaxSqlQueryDepth) {
      return Error(Peek().offset, "query nesting exceeds depth limit " +
                                      std::to_string(kMaxSqlQueryDepth));
    }
    auto stmt = std::make_shared<SelectStmt>();
    stmt->offset = Peek().offset;

    if (AcceptKeyword("WITH")) {
      do {
        CteDef cte;
        cte.offset = Peek().offset;
        if (Peek().kind != TokenKind::kIdent) {
          return Error(Peek().offset, "expected CTE name, got " +
                                          Describe(Peek()));
        }
        cte.name = Advance().text;
        Status s = ExpectKeyword("AS");
        if (!s.ok()) return s;
        s = ExpectSymbol("(");
        if (!s.ok()) return s;
        Result<SelectStmtPtr> body = ParseSelectStmt(query_depth + 1);
        if (!body.ok()) return body.status();
        cte.query = *body;
        s = ExpectSymbol(")");
        if (!s.ok()) return s;
        stmt->ctes.push_back(std::move(cte));
      } while (AcceptSymbol(","));
    }

    Status s = ExpectKeyword("SELECT");
    if (!s.ok()) return s;
    if (AcceptKeyword("DISTINCT")) {
      stmt->distinct = true;
    } else {
      AcceptKeyword("ALL");
    }

    do {
      SelectItem item;
      item.offset = Peek().offset;
      if (AcceptSymbol("*")) {
        // item.expr stays null: SELECT *.
      } else {
        Result<SqlExprPtr> e = ParseExpr(0, query_depth);
        if (!e.ok()) return e.status();
        item.expr = *e;
        if (AcceptKeyword("AS")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Error(Peek().offset, "expected alias after AS, got " +
                                            Describe(Peek()));
          }
          item.alias = Advance().text;
        } else if (Peek().kind == TokenKind::kIdent) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("FROM")) {
      Result<TableRefPtr> from = ParseTableRef(query_depth);
      if (!from.ok()) return from.status();
      stmt->from = *from;
    }
    if (AcceptKeyword("WHERE")) {
      Result<SqlExprPtr> e = ParseExpr(0, query_depth);
      if (!e.ok()) return e.status();
      stmt->where = *e;
    }
    if (AcceptKeyword("GROUP")) {
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      do {
        Result<SqlExprPtr> e = ParseExpr(0, query_depth);
        if (!e.ok()) return e.status();
        stmt->group_by.push_back(*e);
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("HAVING")) {
      Result<SqlExprPtr> e = ParseExpr(0, query_depth);
      if (!e.ok()) return e.status();
      stmt->having = *e;
    }
    if (AcceptKeyword("ORDER")) {
      s = ExpectKeyword("BY");
      if (!s.ok()) return s;
      do {
        OrderItem item;
        Result<SqlExprPtr> e = ParseExpr(0, query_depth);
        if (!e.ok()) return e.status();
        item.expr = *e;
        if (AcceptKeyword("DESC")) {
          item.ascending = false;
        } else {
          AcceptKeyword("ASC");
        }
        if (AcceptKeyword("NULLS")) {
          if (AcceptKeyword("FIRST")) {
            item.nulls_first = true;
          } else if (AcceptKeyword("LAST")) {
            item.nulls_first = false;
          } else {
            return Error(Peek().offset,
                         "expected FIRST or LAST after NULLS");
          }
        }
        stmt->order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kIntLit) {
        return Error(Peek().offset, "expected integer after LIMIT, got " +
                                        Describe(Peek()));
      }
      stmt->limit = std::atoll(Advance().text.c_str());
    }
    if (Peek().IsKeyword("UNION") || Peek().IsKeyword("EXCEPT") ||
        Peek().IsKeyword("INTERSECT")) {
      return Error(Peek().offset,
                   "set operation " + Peek().text + " is not supported");
    }
    return stmt;
  }

  // ---- DML statements --------------------------------------------------

  Status ExpectStatementEnd() {
    if (Peek().IsSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error(Peek().offset,
                   "unexpected " + Describe(Peek()) + " after statement");
    }
    return Status::OK();
  }

  Result<std::string> ExpectTableName() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error(Peek().offset,
                   "expected table name, got " + Describe(Peek()));
    }
    return Advance().text;
  }

  /// `col = expr [, col = expr ...]` — shared by UPDATE and MERGE.
  Result<std::vector<SetClause>> ParseSetClauses() {
    std::vector<SetClause> set;
    do {
      SetClause clause;
      clause.offset = Peek().offset;
      if (Peek().kind != TokenKind::kIdent) {
        return Error(Peek().offset,
                     "expected column name in SET, got " + Describe(Peek()));
      }
      clause.column = Advance().text;
      Status s = ExpectSymbol("=");
      if (!s.ok()) return s;
      Result<SqlExprPtr> value = ParseExpr(0, 0);
      if (!value.ok()) return value.status();
      clause.value = *value;
      set.push_back(std::move(clause));
    } while (AcceptSymbol(","));
    return set;
  }

  /// DELETE FROM t [WHERE pred]
  Result<std::shared_ptr<DeleteStmt>> ParseDeleteStmt() {
    auto stmt = std::make_shared<DeleteStmt>();
    stmt->offset = Peek().offset;
    Advance();  // DELETE
    Status s = ExpectKeyword("FROM");
    if (!s.ok()) return s;
    stmt->table_offset = Peek().offset;
    Result<std::string> name = ExpectTableName();
    if (!name.ok()) return name.status();
    stmt->table_name = *name;
    if (AcceptKeyword("WHERE")) {
      Result<SqlExprPtr> where = ParseExpr(0, 0);
      if (!where.ok()) return where.status();
      stmt->where = *where;
    }
    return stmt;
  }

  /// UPDATE t SET c = e [, ...] [WHERE pred]
  Result<std::shared_ptr<UpdateStmt>> ParseUpdateStmt() {
    auto stmt = std::make_shared<UpdateStmt>();
    stmt->offset = Peek().offset;
    Advance();  // UPDATE
    stmt->table_offset = Peek().offset;
    Result<std::string> name = ExpectTableName();
    if (!name.ok()) return name.status();
    stmt->table_name = *name;
    Status s = ExpectKeyword("SET");
    if (!s.ok()) return s;
    Result<std::vector<SetClause>> set = ParseSetClauses();
    if (!set.ok()) return set.status();
    stmt->set = *std::move(set);
    if (AcceptKeyword("WHERE")) {
      Result<SqlExprPtr> where = ParseExpr(0, 0);
      if (!where.ok()) return where.status();
      stmt->where = *where;
    }
    return stmt;
  }

  /// MERGE INTO t [AS a] USING <table or (subquery)> ON cond
  ///   [WHEN MATCHED THEN UPDATE SET ...]
  ///   [WHEN NOT MATCHED THEN INSERT [(cols)] VALUES (...)]
  Result<std::shared_ptr<MergeStmt>> ParseMergeStmt() {
    auto stmt = std::make_shared<MergeStmt>();
    stmt->offset = Peek().offset;
    Advance();  // MERGE
    Status s = ExpectKeyword("INTO");
    if (!s.ok()) return s;
    stmt->table_offset = Peek().offset;
    Result<std::string> name = ExpectTableName();
    if (!name.ok()) return name.status();
    stmt->table_name = *name;
    bool saw_as = AcceptKeyword("AS");
    if (Peek().kind == TokenKind::kIdent) {
      stmt->target_alias = Advance().text;
    } else if (saw_as) {
      return Error(Peek().offset,
                   "expected alias after AS, got " + Describe(Peek()));
    }
    s = ExpectKeyword("USING");
    if (!s.ok()) return s;
    Result<TableRefPtr> source = ParsePrimaryTableRef(0);
    if (!source.ok()) return source.status();
    stmt->source = *source;
    s = ExpectKeyword("ON");
    if (!s.ok()) return s;
    Result<SqlExprPtr> on = ParseExpr(0, 0);
    if (!on.ok()) return on.status();
    stmt->on = *on;
    while (Peek().IsKeyword("WHEN")) {
      int when_offset = Peek().offset;
      Advance();  // WHEN
      if (AcceptKeyword("MATCHED")) {
        if (stmt->when_matched) {
          return Error(when_offset, "duplicate WHEN MATCHED clause");
        }
        s = ExpectKeyword("THEN");
        if (!s.ok()) return s;
        s = ExpectKeyword("UPDATE");
        if (!s.ok()) return s;
        s = ExpectKeyword("SET");
        if (!s.ok()) return s;
        Result<std::vector<SetClause>> set = ParseSetClauses();
        if (!set.ok()) return set.status();
        stmt->when_matched = true;
        stmt->matched_set = *std::move(set);
      } else if (AcceptKeyword("NOT")) {
        if (stmt->when_not_matched) {
          return Error(when_offset, "duplicate WHEN NOT MATCHED clause");
        }
        s = ExpectKeyword("MATCHED");
        if (!s.ok()) return s;
        s = ExpectKeyword("THEN");
        if (!s.ok()) return s;
        s = ExpectKeyword("INSERT");
        if (!s.ok()) return s;
        stmt->insert_offset = Peek().offset;
        if (AcceptSymbol("(")) {
          do {
            if (Peek().kind != TokenKind::kIdent) {
              return Error(Peek().offset, "expected column name, got " +
                                              Describe(Peek()));
            }
            stmt->insert_columns.push_back(Advance().text);
          } while (AcceptSymbol(","));
          s = ExpectSymbol(")");
          if (!s.ok()) return s;
        }
        s = ExpectKeyword("VALUES");
        if (!s.ok()) return s;
        s = ExpectSymbol("(");
        if (!s.ok()) return s;
        do {
          Result<SqlExprPtr> value = ParseExpr(0, 0);
          if (!value.ok()) return value.status();
          stmt->insert_values.push_back(*value);
        } while (AcceptSymbol(","));
        s = ExpectSymbol(")");
        if (!s.ok()) return s;
        stmt->when_not_matched = true;
      } else {
        return Error(Peek().offset,
                     "expected MATCHED or NOT MATCHED after WHEN, got " +
                         Describe(Peek()));
      }
    }
    if (!stmt->when_matched && !stmt->when_not_matched) {
      return Error(stmt->offset,
                   "MERGE requires at least one WHEN clause");
    }
    return stmt;
  }

  // ---- FROM clause -----------------------------------------------------

  Result<TableRefPtr> ParseTableRef(int query_depth) {
    Result<TableRefPtr> left = ParsePrimaryTableRef(query_depth);
    if (!left.ok()) return left;
    TableRefPtr ref = *left;
    for (;;) {
      SqlJoinKind kind;
      int offset = Peek().offset;
      if (AcceptKeyword("JOIN")) {
        kind = SqlJoinKind::kInner;
      } else if (AcceptKeyword("INNER")) {
        kind = SqlJoinKind::kInner;
        Status s = ExpectKeyword("JOIN");
        if (!s.ok()) return s;
      } else if (Peek().IsKeyword("LEFT")) {
        Advance();
        AcceptKeyword("OUTER");
        if (AcceptKeyword("SEMI")) {
          kind = SqlJoinKind::kSemi;  // LEFT SEMI JOIN (Spark spelling)
        } else if (AcceptKeyword("ANTI")) {
          kind = SqlJoinKind::kAnti;
        } else {
          kind = SqlJoinKind::kLeftOuter;
        }
        Status s = ExpectKeyword("JOIN");
        if (!s.ok()) return s;
      } else if (AcceptKeyword("SEMI")) {
        kind = SqlJoinKind::kSemi;
        Status s = ExpectKeyword("JOIN");
        if (!s.ok()) return s;
      } else if (AcceptKeyword("ANTI")) {
        kind = SqlJoinKind::kAnti;
        Status s = ExpectKeyword("JOIN");
        if (!s.ok()) return s;
      } else if (AcceptKeyword("CROSS")) {
        kind = SqlJoinKind::kCross;
        Status s = ExpectKeyword("JOIN");
        if (!s.ok()) return s;
      } else if (Peek().IsKeyword("RIGHT") || Peek().IsKeyword("FULL")) {
        return Error(Peek().offset,
                     Peek().text + " joins are not supported (rewrite with "
                                   "the build side on the right)");
      } else if (AcceptSymbol(",")) {
        // Comma join = CROSS JOIN (filters in WHERE).
        kind = SqlJoinKind::kCross;
      } else {
        break;
      }
      Result<TableRefPtr> right = ParsePrimaryTableRef(query_depth);
      if (!right.ok()) return right;
      auto join = std::make_shared<TableRef>();
      join->kind = TableRefKind::kJoin;
      join->offset = offset;
      join->join_kind = kind;
      join->left = ref;
      join->right = *right;
      if (kind != SqlJoinKind::kCross) {
        Status s = ExpectKeyword("ON");
        if (!s.ok()) return s;
        Result<SqlExprPtr> cond = ParseExpr(0, query_depth);
        if (!cond.ok()) return cond.status();
        join->condition = *cond;
      }
      ref = join;
    }
    return ref;
  }

  Result<TableRefPtr> ParsePrimaryTableRef(int query_depth) {
    auto ref = std::make_shared<TableRef>();
    ref->offset = Peek().offset;
    if (AcceptSymbol("(")) {
      if (!Peek().IsKeyword("SELECT") && !Peek().IsKeyword("WITH")) {
        return Error(Peek().offset,
                     "expected SELECT in parenthesized table reference");
      }
      Result<SelectStmtPtr> sub = ParseSelectStmt(query_depth + 1);
      if (!sub.ok()) return sub.status();
      Status s = ExpectSymbol(")");
      if (!s.ok()) return s;
      ref->kind = TableRefKind::kSubquery;
      ref->subquery = *sub;
    } else if (Peek().kind == TokenKind::kIdent) {
      ref->kind = TableRefKind::kTable;
      ref->table_name = Advance().text;
      // Time travel: `name VERSION AS OF <int>`. VERSION is reserved, so
      // this cannot collide with an alias (which must lex as an ident).
      if (AcceptKeyword("VERSION")) {
        Status s = ExpectKeyword("AS");
        if (!s.ok()) return s;
        s = ExpectKeyword("OF");
        if (!s.ok()) return s;
        if (Peek().kind != TokenKind::kIntLit) {
          return Error(Peek().offset,
                       "expected integer version after VERSION AS OF, got " +
                           Describe(Peek()));
        }
        ref->version = std::atoll(Advance().text.c_str());
      }
    } else {
      return Error(Peek().offset,
                   "expected table name or subquery, got " + Describe(Peek()));
    }
    // Optional [AS] alias [(column aliases)].
    bool saw_as = AcceptKeyword("AS");
    if (Peek().kind == TokenKind::kIdent) {
      ref->alias = Advance().text;
    } else if (saw_as) {
      return Error(Peek().offset, "expected alias after AS, got " +
                                      Describe(Peek()));
    }
    if (!ref->alias.empty() && AcceptSymbol("(")) {
      do {
        if (Peek().kind != TokenKind::kIdent) {
          return Error(Peek().offset, "expected column alias, got " +
                                          Describe(Peek()));
        }
        ref->column_aliases.push_back(Advance().text);
      } while (AcceptSymbol(","));
      Status s = ExpectSymbol(")");
      if (!s.ok()) return s;
    }
    if (ref->kind == TableRefKind::kSubquery && ref->alias.empty()) {
      return Error(ref->offset, "derived table requires an alias");
    }
    return ref;
  }

  // ---- types -----------------------------------------------------------

  /// Parses a type name. Returns false (without consuming) when the
  /// current token does not start a type.
  bool PeekType() const {
    const Token& t = Peek();
    return t.IsKeyword("INT") || t.IsKeyword("INTEGER") ||
           t.IsKeyword("BIGINT") || t.IsKeyword("DOUBLE") ||
           t.IsKeyword("BOOLEAN") || t.IsKeyword("DATE") ||
           t.IsKeyword("TIMESTAMP") || t.IsKeyword("VARCHAR") ||
           t.IsKeyword("STRING") || t.IsKeyword("DECIMAL");
  }

  Result<DataType> ParseType() {
    const Token& t = Peek();
    if (t.IsKeyword("INT") || t.IsKeyword("INTEGER")) {
      Advance();
      return DataType::Int32();
    }
    if (t.IsKeyword("BIGINT")) {
      Advance();
      return DataType::Int64();
    }
    if (t.IsKeyword("DOUBLE")) {
      Advance();
      return DataType::Float64();
    }
    if (t.IsKeyword("BOOLEAN")) {
      Advance();
      return DataType::Boolean();
    }
    if (t.IsKeyword("DATE")) {
      Advance();
      return DataType::Date32();
    }
    if (t.IsKeyword("TIMESTAMP")) {
      Advance();
      return DataType::Timestamp();
    }
    if (t.IsKeyword("VARCHAR") || t.IsKeyword("STRING")) {
      Advance();
      // VARCHAR(n) length is accepted and ignored (no length semantics).
      if (AcceptSymbol("(")) {
        if (Peek().kind != TokenKind::kIntLit) {
          return Error(Peek().offset, "expected length in VARCHAR(n)");
        }
        Advance();
        Status s = ExpectSymbol(")");
        if (!s.ok()) return s;
      }
      return DataType::String();
    }
    if (t.IsKeyword("DECIMAL")) {
      int offset = t.offset;
      Advance();
      Status s = ExpectSymbol("(");
      if (!s.ok()) return s;
      if (Peek().kind != TokenKind::kIntLit) {
        return Error(Peek().offset, "expected precision in DECIMAL(p,s)");
      }
      int precision = std::atoi(Advance().text.c_str());
      s = ExpectSymbol(",");
      if (!s.ok()) return s;
      if (Peek().kind != TokenKind::kIntLit) {
        return Error(Peek().offset, "expected scale in DECIMAL(p,s)");
      }
      int scale = std::atoi(Advance().text.c_str());
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      if (precision < 1 || precision > 38 || scale < 0 || scale > precision) {
        return Error(offset, "invalid DECIMAL(" + std::to_string(precision) +
                                 "," + std::to_string(scale) +
                                 "): need 1 <= p <= 38, 0 <= s <= p");
      }
      return DataType::Decimal(precision, scale);
    }
    return Error(t.offset, "expected type name, got " + Describe(t));
  }

  // ---- expressions (Pratt) ---------------------------------------------
  //
  // Binding powers, loosest to tightest:
  //   1 OR | 2 AND | 3 NOT (prefix) | 4 predicates (=, <>, <, <=, >, >=,
  //   IS [NOT] NULL, [NOT] BETWEEN/IN/LIKE) | 5 + - | 6 * / % | 7 unary -

  Result<SqlExprPtr> ParseExpr(int min_bp, int query_depth, int depth = 0) {
    if (depth > kMaxSqlExprDepth) {
      return Error(Peek().offset, "expression exceeds depth limit " +
                                      std::to_string(kMaxSqlExprDepth));
    }
    Result<SqlExprPtr> lhs = ParsePrefix(query_depth, depth);
    if (!lhs.ok()) return lhs;
    SqlExprPtr e = *lhs;
    for (;;) {
      const Token& t = Peek();
      // OR / AND.
      if (t.IsKeyword("OR") && min_bp < 1) {
        Advance();
        Result<SqlExprPtr> rhs = ParseExpr(1, query_depth, depth + 1);
        if (!rhs.ok()) return rhs;
        SqlExprPtr node = MakeExpr(SqlExprKind::kOr, t.offset);
        node->args = {e, *rhs};
        e = node;
        continue;
      }
      if (t.IsKeyword("AND") && min_bp < 2) {
        Advance();
        Result<SqlExprPtr> rhs = ParseExpr(2, query_depth, depth + 1);
        if (!rhs.ok()) return rhs;
        SqlExprPtr node = MakeExpr(SqlExprKind::kAnd, t.offset);
        node->args = {e, *rhs};
        e = node;
        continue;
      }
      // Predicates (non-chaining: a = b = c is a parse error by design).
      if (min_bp < 4) {
        bool negated = false;
        size_t save = pos_;
        if (t.IsKeyword("NOT") &&
            (Peek(1).IsKeyword("BETWEEN") || Peek(1).IsKeyword("IN") ||
             Peek(1).IsKeyword("LIKE"))) {
          Advance();
          negated = true;
        }
        const Token& p = Peek();
        if (p.kind == TokenKind::kSymbol &&
            (p.text == "=" || p.text == "<>" || p.text == "!=" ||
             p.text == "<" || p.text == "<=" || p.text == ">" ||
             p.text == ">=")) {
          Advance();
          Result<SqlExprPtr> rhs = ParseExpr(4, query_depth, depth + 1);
          if (!rhs.ok()) return rhs;
          SqlExprPtr node = MakeExpr(SqlExprKind::kCompare, p.offset);
          node->text = p.text == "!=" ? "<>" : p.text;
          node->args = {e, *rhs};
          e = node;
          continue;
        }
        if (p.IsKeyword("IS")) {
          Advance();
          bool is_not = AcceptKeyword("NOT");
          Status s = ExpectKeyword("NULL");
          if (!s.ok()) return s;
          SqlExprPtr node = MakeExpr(SqlExprKind::kIsNull, p.offset);
          node->negated = is_not;
          node->args = {e};
          e = node;
          continue;
        }
        if (p.IsKeyword("BETWEEN")) {
          Advance();
          // Bounds bind at additive level so AND separates them.
          Result<SqlExprPtr> lo = ParseExpr(4, query_depth, depth + 1);
          if (!lo.ok()) return lo;
          Status s = ExpectKeyword("AND");
          if (!s.ok()) return s;
          Result<SqlExprPtr> hi = ParseExpr(4, query_depth, depth + 1);
          if (!hi.ok()) return hi;
          SqlExprPtr node = MakeExpr(SqlExprKind::kBetween, p.offset);
          node->negated = negated;
          node->args = {e, *lo, *hi};
          e = node;
          continue;
        }
        if (p.IsKeyword("IN")) {
          Advance();
          Status s = ExpectSymbol("(");
          if (!s.ok()) return s;
          SqlExprPtr node;
          if (Peek().IsKeyword("SELECT") || Peek().IsKeyword("WITH")) {
            Result<SelectStmtPtr> sub = ParseSelectStmt(query_depth + 1);
            if (!sub.ok()) return sub.status();
            node = MakeExpr(SqlExprKind::kInSubquery, p.offset);
            node->subquery = *sub;
            node->args = {e};
          } else {
            node = MakeExpr(SqlExprKind::kInList, p.offset);
            node->args = {e};
            do {
              Result<SqlExprPtr> item = ParseExpr(0, query_depth, depth + 1);
              if (!item.ok()) return item;
              node->args.push_back(*item);
            } while (AcceptSymbol(","));
          }
          s = ExpectSymbol(")");
          if (!s.ok()) return s;
          node->negated = negated;
          e = node;
          continue;
        }
        if (p.IsKeyword("LIKE")) {
          Advance();
          if (Peek().kind != TokenKind::kStringLit) {
            return Error(Peek().offset,
                         "LIKE pattern must be a string literal");
          }
          SqlExprPtr node = MakeExpr(SqlExprKind::kLike, p.offset);
          node->negated = negated;
          node->text = Advance().text;
          node->args = {e};
          e = node;
          continue;
        }
        if (negated) pos_ = save;  // NOT belonged to something else
      }
      // Additive.
      if (min_bp < 5 && t.kind == TokenKind::kSymbol &&
          (t.text == "+" || t.text == "-")) {
        Advance();
        Result<SqlExprPtr> rhs = ParseExpr(5, query_depth, depth + 1);
        if (!rhs.ok()) return rhs;
        SqlExprPtr node = MakeExpr(SqlExprKind::kArith, t.offset);
        node->text = t.text;
        node->args = {e, *rhs};
        e = node;
        continue;
      }
      // Multiplicative.
      if (min_bp < 6 && t.kind == TokenKind::kSymbol &&
          (t.text == "*" || t.text == "/" || t.text == "%")) {
        Advance();
        Result<SqlExprPtr> rhs = ParseExpr(6, query_depth, depth + 1);
        if (!rhs.ok()) return rhs;
        SqlExprPtr node = MakeExpr(SqlExprKind::kArith, t.offset);
        node->text = t.text;
        node->args = {e, *rhs};
        e = node;
        continue;
      }
      if (t.IsSymbol("||")) {
        return Error(t.offset, "use concat(a, b) instead of ||");
      }
      break;
    }
    return e;
  }

  Result<SqlExprPtr> ParsePrefix(int query_depth, int depth) {
    if (depth > kMaxSqlExprDepth) {
      return Error(Peek().offset, "expression exceeds depth limit " +
                                      std::to_string(kMaxSqlExprDepth));
    }
    const Token& t = Peek();
    if (t.IsKeyword("NOT")) {
      Advance();
      Result<SqlExprPtr> operand = ParseExpr(2, query_depth, depth + 1);
      if (!operand.ok()) return operand;
      SqlExprPtr node = MakeExpr(SqlExprKind::kNot, t.offset);
      node->args = {*operand};
      return node;
    }
    if (t.IsSymbol("-")) {
      Advance();
      Result<SqlExprPtr> operand = ParseExpr(6, query_depth, depth + 1);
      if (!operand.ok()) return operand;
      SqlExprPtr node = MakeExpr(SqlExprKind::kUnaryMinus, t.offset);
      node->args = {*operand};
      return node;
    }
    if (t.IsSymbol("+")) {
      Advance();
      return ParseExpr(6, query_depth, depth + 1);
    }
    return ParsePrimary(query_depth, depth);
  }

  Result<SqlExprPtr> ParsePrimary(int query_depth, int depth) {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLit: {
        SqlExprPtr node = MakeExpr(SqlExprKind::kIntLit, t.offset);
        node->text = Advance().text;
        return node;
      }
      case TokenKind::kDecimalLit: {
        SqlExprPtr node = MakeExpr(SqlExprKind::kDecimalLit, t.offset);
        node->text = Advance().text;
        return node;
      }
      case TokenKind::kFloatLit: {
        SqlExprPtr node = MakeExpr(SqlExprKind::kFloatLit, t.offset);
        node->text = Advance().text;
        return node;
      }
      case TokenKind::kStringLit: {
        SqlExprPtr node = MakeExpr(SqlExprKind::kStringLit, t.offset);
        node->text = Advance().text;
        return node;
      }
      default:
        break;
    }
    if (t.IsKeyword("TRUE") || t.IsKeyword("FALSE")) {
      SqlExprPtr node = MakeExpr(SqlExprKind::kBoolLit, t.offset);
      node->bool_val = t.IsKeyword("TRUE");
      Advance();
      return node;
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return MakeExpr(SqlExprKind::kNullLit, t.offset);
    }
    // Typed literal: TYPE 'text' (the printer's unambiguous round-trip
    // spelling — a bare 7 is INT, but BIGINT '7' pins int64).
    if (PeekType()) {
      int offset = t.offset;
      Result<DataType> type = ParseType();
      if (!type.ok()) return type.status();
      if (Peek().kind != TokenKind::kStringLit) {
        return Error(Peek().offset,
                     "expected string literal after type name " +
                         type->ToString());
      }
      SqlExprPtr node = MakeExpr(SqlExprKind::kTypedLit, offset);
      node->cast_type = *type;
      node->text = Advance().text;
      return node;
    }
    if (t.IsKeyword("CAST")) {
      Advance();
      Status s = ExpectSymbol("(");
      if (!s.ok()) return s;
      Result<SqlExprPtr> operand = ParseExpr(0, query_depth, depth + 1);
      if (!operand.ok()) return operand;
      s = ExpectKeyword("AS");
      if (!s.ok()) return s;
      Result<DataType> type = ParseType();
      if (!type.ok()) return type.status();
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      SqlExprPtr node = MakeExpr(SqlExprKind::kCast, t.offset);
      node->cast_type = *type;
      node->args = {*operand};
      return node;
    }
    if (t.IsKeyword("CASE")) {
      Advance();
      SqlExprPtr node = MakeExpr(SqlExprKind::kCase, t.offset);
      if (!Peek().IsKeyword("WHEN")) {
        return Error(Peek().offset,
                     "only searched CASE (CASE WHEN cond ...) is supported");
      }
      while (AcceptKeyword("WHEN")) {
        Result<SqlExprPtr> cond = ParseExpr(0, query_depth, depth + 1);
        if (!cond.ok()) return cond;
        Status s = ExpectKeyword("THEN");
        if (!s.ok()) return s;
        Result<SqlExprPtr> then = ParseExpr(0, query_depth, depth + 1);
        if (!then.ok()) return then;
        node->branches.emplace_back(*cond, *then);
      }
      if (AcceptKeyword("ELSE")) {
        Result<SqlExprPtr> els = ParseExpr(0, query_depth, depth + 1);
        if (!els.ok()) return els;
        node->else_expr = *els;
      }
      Status s = ExpectKeyword("END");
      if (!s.ok()) return s;
      return node;
    }
    if (t.IsKeyword("EXISTS")) {
      Advance();
      Status s = ExpectSymbol("(");
      if (!s.ok()) return s;
      Result<SelectStmtPtr> sub = ParseSelectStmt(query_depth + 1);
      if (!sub.ok()) return sub.status();
      s = ExpectSymbol(")");
      if (!s.ok()) return s;
      SqlExprPtr node = MakeExpr(SqlExprKind::kExists, t.offset);
      node->subquery = *sub;
      return node;
    }
    if (t.IsSymbol("(")) {
      Advance();
      if (Peek().IsKeyword("SELECT") || Peek().IsKeyword("WITH")) {
        Result<SelectStmtPtr> sub = ParseSelectStmt(query_depth + 1);
        if (!sub.ok()) return sub.status();
        Status s = ExpectSymbol(")");
        if (!s.ok()) return s;
        SqlExprPtr node = MakeExpr(SqlExprKind::kScalarSubquery, t.offset);
        node->subquery = *sub;
        return node;
      }
      Result<SqlExprPtr> inner = ParseExpr(0, query_depth, depth + 1);
      if (!inner.ok()) return inner;
      Status s = ExpectSymbol(")");
      if (!s.ok()) return s;
      SqlExprPtr node = MakeExpr(SqlExprKind::kParen, t.offset);
      node->args = {*inner};
      return node;
    }
    if (t.kind == TokenKind::kIdent) {
      // Function call?
      if (Peek(1).IsSymbol("(")) {
        SqlExprPtr node = MakeExpr(SqlExprKind::kCall, t.offset);
        node->text = ToLower(Advance().text);
        Advance();  // '('
        if (AcceptSymbol("*")) {
          node->star = true;
        } else if (!Peek().IsSymbol(")")) {
          if (Peek().IsKeyword("DISTINCT")) {
            return Error(Peek().offset,
                         "DISTINCT aggregates are not supported; rewrite "
                         "with a nested GROUP BY");
          }
          do {
            Result<SqlExprPtr> arg = ParseExpr(0, query_depth, depth + 1);
            if (!arg.ok()) return arg;
            node->args.push_back(*arg);
          } while (AcceptSymbol(","));
        }
        Status s = ExpectSymbol(")");
        if (!s.ok()) return s;
        return node;
      }
      // Plain or qualified identifier.
      SqlExprPtr node = MakeExpr(SqlExprKind::kIdent, t.offset);
      node->parts.push_back(Advance().text);
      if (AcceptSymbol(".")) {
        if (Peek().kind != TokenKind::kIdent) {
          return Error(Peek().offset,
                       "expected column name after '.', got " +
                           Describe(Peek()));
        }
        node->parts.push_back(Advance().text);
      }
      return node;
    }
    return Error(t.offset, "expected expression, got " + Describe(t));
  }

  const std::string& source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmtPtr> ParseSelect(const std::string& source) {
  Result<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(source, *std::move(tokens));
  return parser.ParseStatement();
}

Result<Statement> ParseStatement(const std::string& source) {
  Result<std::vector<Token>> tokens = Lex(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(source, *std::move(tokens));
  return parser.ParseTopLevel();
}

}  // namespace sql
}  // namespace photon
