#include "sql/catalog.h"

#include "common/macros.h"

namespace photon {
namespace sql {

void Catalog::Register(const std::string& name, plan::PlanPtr leaf) {
  PHOTON_CHECK(leaf != nullptr);
  PHOTON_CHECK(leaf->kind == plan::PlanKind::kScan ||
               leaf->kind == plan::PlanKind::kDeltaScan);
  for (auto& entry : entries_) {
    if (entry.first == name) {
      entry.second = std::move(leaf);
      return;
    }
  }
  entries_.emplace_back(name, std::move(leaf));
}

void Catalog::RegisterTable(const std::string& name, const Table* table) {
  Register(name, plan::Scan(table));
}

Status Catalog::RegisterDeltaTable(const std::string& name, DeltaTable* table,
                                   io::IoOptions io) {
  PHOTON_CHECK(table != nullptr);
  Result<DeltaSnapshot> snapshot = table->Snapshot();
  if (!snapshot.ok()) return snapshot.status();
  Register(name, plan::DeltaScan(table->store(), *std::move(snapshot), {},
                                 nullptr, io));
  for (auto& entry : delta_entries_) {
    if (entry.first == name) {
      entry.second = DeltaBinding{table, io};
      return Status::OK();
    }
  }
  delta_entries_.emplace_back(name, DeltaBinding{table, io});
  return Status::OK();
}

const DeltaBinding* Catalog::LookupDelta(const std::string& name) const {
  for (const auto& entry : delta_entries_) {
    if (entry.first == name) return &entry.second;
  }
  return nullptr;
}

const plan::PlanPtr* Catalog::Lookup(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.first == name) return &entry.second;
  }
  return nullptr;
}

std::string Catalog::NameOf(const plan::PlanNode* leaf) const {
  for (const auto& entry : entries_) {
    if (entry.second.get() == leaf) return entry.first;
  }
  return "";
}

std::vector<std::string> Catalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.first);
  return out;
}

}  // namespace sql
}  // namespace photon
