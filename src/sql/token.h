#ifndef PHOTON_SQL_TOKEN_H_
#define PHOTON_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace photon {
namespace sql {

/// Lexical token kinds. Keywords are folded into kKeyword with the
/// upper-cased text in `text` — the parser matches them by spelling, which
/// keeps the enum small and the keyword table in one place (lexer.cc).
enum class TokenKind : uint8_t {
  kEnd,        // end of input
  kIdent,      // bare identifier (case preserved)
  kKeyword,    // reserved word (text upper-cased)
  kIntLit,     // [0-9]+
  kDecimalLit, // digits '.' digits (no exponent)
  kFloatLit,   // digits with exponent, e.g. 1e9, 1.5E-3
  kStringLit,  // '...' with '' escaping (text holds the unescaped value)
  kSymbol,     // operator/punctuation: ( ) , . ; + - * / % = <> != < <= > >=
};

const char* TokenKindName(TokenKind kind);

/// One token plus its byte offset into the source text. Offsets — not
/// line/column pairs — are what the AST carries around; they convert to
/// line:column lazily when an error message is rendered (LineColumn).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int offset = 0;

  bool IsKeyword(const char* kw) const;
  bool IsSymbol(const char* sym) const;
};

/// 1-based line/column of a byte offset in `source`.
struct LineColumn {
  int line = 1;
  int column = 1;
};
LineColumn OffsetToLineColumn(const std::string& source, int offset);

/// Renders "line L column C: msg" — the uniform prefix every SQL error
/// carries so failures in multi-line queries are attributable.
std::string ErrorAt(const std::string& source, int offset,
                    const std::string& msg);

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_TOKEN_H_
