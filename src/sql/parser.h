#ifndef PHOTON_SQL_PARSER_H_
#define PHOTON_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace photon {
namespace sql {

/// Hard limits on parser recursion (DESIGN.md §13.2). Deeply nested input
/// must produce a clean line:column error, never a stack overflow — the
/// round-trip fuzzer and adversarial queries both lean on this (the
/// exemplar's CheckExpressionDepth, applied at parse time).
inline constexpr int kMaxSqlExprDepth = 200;
inline constexpr int kMaxSqlQueryDepth = 40;

/// Parses one SELECT statement (a trailing ';' is permitted). Errors are
/// InvalidArgument with "line L column C: ..." attribution.
Result<SelectStmtPtr> ParseSelect(const std::string& source);

/// Parses one top-level statement: SELECT/WITH (as ParseSelect), or the
/// DML forms DELETE / UPDATE / MERGE. Same error attribution.
Result<Statement> ParseStatement(const std::string& source);

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_PARSER_H_
