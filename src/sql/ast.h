#ifndef PHOTON_SQL_AST_H_
#define PHOTON_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "types/data_type.h"

namespace photon {
namespace sql {

struct SqlExpr;
struct SelectStmt;
struct TableRef;
using SqlExprPtr = std::shared_ptr<SqlExpr>;
using SelectStmtPtr = std::shared_ptr<SelectStmt>;
using TableRefPtr = std::shared_ptr<TableRef>;

/// Untyped expression AST. Like plan::PlanNode this is one plain struct
/// with a kind tag and per-kind fields (the exemplar splits these into a
/// class per node; a tagged struct keeps the parser/analyzer pattern
/// matches short and the whole AST in one header). Every node carries the
/// byte offset of the token that started it, so the analyzer can attribute
/// type errors to a precise line:column.
enum class SqlExprKind : uint8_t {
  kIdent,        // column reference, optionally qualified: parts = {a,b}
  kIntLit,       // text holds digits
  kDecimalLit,   // text holds digits '.' digits
  kFloatLit,     // text holds a strtod-parseable spelling
  kStringLit,    // text holds the unescaped value
  kBoolLit,      // bool_val
  kNullLit,
  kTypedLit,     // <type> '<text>': INT '7', DATE '1994-01-01', ...
  kUnaryMinus,   // args[0]
  kNot,          // args[0]
  kArith,        // op_text in {+,-,*,/,%}; args[0], args[1]
  kCompare,      // op_text in {=,<>,!=,<,<=,>,>=}; args[0], args[1]
  kAnd,          // args[0], args[1]
  kOr,           // args[0], args[1]
  kIsNull,       // args[0]; negated = IS NOT NULL
  kBetween,      // args[0..2] = value, lo, hi; negated = NOT BETWEEN
  kInList,       // args[0] = value, args[1..] = list items; negated
  kInSubquery,   // args[0] = value; subquery; negated
  kExists,       // subquery; negated
  kScalarSubquery,  // subquery in scalar position
  kLike,         // args[0] = value; text = pattern; negated
  kCase,         // branches (WHEN/THEN pairs), else in else_expr (may be null)
  kCast,         // args[0], cast_type
  kCall,         // text = lower-cased function name; args; star = count(*)
  kParen,        // args[0]; kept explicit so AND-splitting respects parens
};

struct SqlExpr {
  SqlExprKind kind;
  int offset = 0;

  std::vector<std::string> parts;  // kIdent: {name} or {qualifier, name}
  std::string text;       // literal spelling / operator / fn name / pattern
  bool bool_val = false;  // kBoolLit
  bool negated = false;   // NOT IN / NOT BETWEEN / IS NOT NULL / NOT LIKE
  bool star = false;      // kCall: count(*)
  DataType cast_type;     // kCast, kTypedLit
  std::vector<SqlExprPtr> args;
  std::vector<std::pair<SqlExprPtr, SqlExprPtr>> branches;  // kCase
  SqlExprPtr else_expr;                                     // kCase
  SelectStmtPtr subquery;  // kInSubquery / kExists / kScalarSubquery
};

/// FROM-clause item: a named table (or CTE), a parenthesized subquery with
/// alias, or a join of two refs.
enum class TableRefKind : uint8_t { kTable, kSubquery, kJoin };

enum class SqlJoinKind : uint8_t { kInner, kLeftOuter, kSemi, kAnti, kCross };

struct TableRef {
  TableRefKind kind;
  int offset = 0;

  // kTable
  std::string table_name;
  /// `name VERSION AS OF n` — time-travel pin to log version n of a
  /// delta-backed table; -1 = latest (the registered leaf).
  int64_t version = -1;

  // kSubquery
  SelectStmtPtr subquery;

  // kTable / kSubquery
  std::string alias;                        // "" = none
  std::vector<std::string> column_aliases;  // AS t (c0, c1, ...); may be empty

  // kJoin
  SqlJoinKind join_kind = SqlJoinKind::kInner;
  TableRefPtr left;
  TableRefPtr right;
  SqlExprPtr condition;  // ON ...; null for CROSS JOIN
};

struct SelectItem {
  SqlExprPtr expr;    // null for '*'
  std::string alias;  // "" = none
  int offset = 0;
};

struct OrderItem {
  SqlExprPtr expr;
  bool ascending = true;
  /// Engine default (ops/sort.h SortKey) is NULLS FIRST for both
  /// directions; explicit NULLS FIRST/LAST overrides.
  bool nulls_first = true;
};

struct CteDef {
  std::string name;
  SelectStmtPtr query;
  int offset = 0;
};

/// One SELECT statement (subqueries and CTE bodies are SelectStmts too).
struct SelectStmt {
  int offset = 0;
  std::vector<CteDef> ctes;
  bool distinct = false;
  std::vector<SelectItem> items;  // at least one; items[i].expr null = '*'
  TableRefPtr from;               // may be null (SELECT 1+1)
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = none
};

// --- DML statements ----------------------------------------------------------

/// One `col = expr` assignment (UPDATE SET, MERGE WHEN MATCHED SET).
struct SetClause {
  std::string column;
  int offset = 0;
  SqlExprPtr value;
};

/// DELETE FROM t [WHERE pred]
struct DeleteStmt {
  int offset = 0;
  std::string table_name;
  int table_offset = 0;
  SqlExprPtr where;  // null = every row
};

/// UPDATE t SET c = e [, ...] [WHERE pred]
struct UpdateStmt {
  int offset = 0;
  std::string table_name;
  int table_offset = 0;
  std::vector<SetClause> set;  // at least one
  SqlExprPtr where;            // null = every row
};

/// MERGE INTO t [AS a] USING <table or (subquery)> [AS b] ON cond
///   [WHEN MATCHED THEN UPDATE SET c = e, ...]
///   [WHEN NOT MATCHED THEN INSERT [(cols)] VALUES (exprs)]
/// At least one WHEN clause is required (the parser enforces it).
struct MergeStmt {
  int offset = 0;
  std::string table_name;  // target
  int table_offset = 0;
  std::string target_alias;  // "" = the table name
  TableRefPtr source;        // kTable or kSubquery
  SqlExprPtr on;
  bool when_matched = false;
  std::vector<SetClause> matched_set;
  bool when_not_matched = false;
  std::vector<std::string> insert_columns;  // empty = all, schema order
  std::vector<SqlExprPtr> insert_values;    // over the source's columns
  int insert_offset = 0;
};

enum class StatementKind : uint8_t { kSelect, kDelete, kUpdate, kMerge };

/// Tagged top-level statement: exactly the member matching `kind` is set.
/// SELECT round-trips through the existing SelectStmt path untouched.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  SelectStmtPtr select;
  std::shared_ptr<DeleteStmt> delete_stmt;
  std::shared_ptr<UpdateStmt> update_stmt;
  std::shared_ptr<MergeStmt> merge_stmt;
};

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_AST_H_
