#ifndef PHOTON_SQL_LEXER_H_
#define PHOTON_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace photon {
namespace sql {

/// Hand-written SQL lexer (DESIGN.md §13.1). Produces the full token
/// stream up front (queries are small; random access simplifies the
/// parser's lookahead) with a terminating kEnd token. Errors — unknown
/// characters, unterminated strings — come back as InvalidArgument with
/// line:column attribution.
Result<std::vector<Token>> Lex(const std::string& source);

/// True if `word` (case-insensitive) is a reserved keyword.
bool IsReservedWord(const std::string& word);

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_LEXER_H_
