#include "sql/analyzer.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <map>
#include <utility>

#include "common/time_util.h"
#include "expr/agg_function.h"
#include "expr/builder.h"
#include "expr/function_registry.h"
#include "expr/program.h"
#include "sql/parser.h"
#include "sql/token.h"
#include "types/decimal.h"

namespace photon {
namespace sql {
namespace {

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// One resolvable column. `hidden` marks columns appended by subquery joins
/// (scalar-subquery results): they occupy a schema slot but never resolve
/// by name and are always projected away before the query's output.
struct ScopeColumn {
  std::string qualifier;  // table alias, "" = none
  std::string name;
  DataType type;
  bool hidden = false;
};

struct Scope {
  std::vector<ScopeColumn> cols;

  int width() const { return static_cast<int>(cols.size()); }
  bool has_hidden() const {
    for (const auto& c : cols) {
      if (c.hidden) return true;
    }
    return false;
  }
};

struct Lowered {
  plan::PlanPtr plan;
  Scope scope;
};

/// Grouping context: the pre-aggregate scope, typed key expressions with
/// canonical keys for structural matching, and the aggregate specs
/// discovered while scanning SELECT/HAVING.
struct AggInfo {
  Scope input_scope;
  std::vector<ExprPtr> key_exprs;
  std::vector<std::string> key_canons;
  std::vector<std::string> key_names;
  std::vector<AggregateSpec> specs;
  std::vector<std::string> spec_canons;
  std::vector<DataType> spec_types;
};

struct ExprCtx {
  const Scope* scope;
  AggInfo* agg = nullptr;
  const std::map<const SqlExpr*, ExprPtr>* subst = nullptr;
  // >= 0: two-zone resolution for correlated EXISTS conditions — columns at
  // [inner_zone_start, width) are the inner query and take priority for
  // unqualified names (SQL's innermost-scope-first rule).
  int inner_zone_start = -1;
};

// ---------------------------------------------------------------------------
// Small AST utilities
// ---------------------------------------------------------------------------

const SqlExpr* StripParens(const SqlExpr* e) {
  while (e->kind == SqlExprKind::kParen) e = e->args[0].get();
  return e;
}

/// Splits an AND spine into conjuncts. Parenthesized subtrees are atomic:
/// `(a AND b) AND c` yields two conjuncts, preserving the user's (and the
/// pretty-printer's) tree shape exactly.
void FlattenAndAst(const SqlExpr* e, std::vector<const SqlExpr*>* out) {
  if (e->kind == SqlExprKind::kAnd) {
    FlattenAndAst(e->args[0].get(), out);
    FlattenAndAst(e->args[1].get(), out);
    return;
  }
  out->push_back(e);
}

template <typename Fn>
void WalkAst(const SqlExpr& e, const Fn& fn) {
  fn(e);
  for (const auto& a : e.args) WalkAst(*a, fn);
  for (const auto& b : e.branches) {
    WalkAst(*b.first, fn);
    WalkAst(*b.second, fn);
  }
  if (e.else_expr) WalkAst(*e.else_expr, fn);
  // Deliberately does not descend into e.subquery: a subquery's body
  // belongs to its own query, not to the enclosing expression.
}

bool ContainsSubqueryAst(const SqlExpr& e) {
  bool found = false;
  WalkAst(e, [&](const SqlExpr& n) {
    if (n.kind == SqlExprKind::kInSubquery || n.kind == SqlExprKind::kExists ||
        n.kind == SqlExprKind::kScalarSubquery) {
      found = true;
    }
  });
  return found;
}

bool AggKindForName(const std::string& name, AggKind* kind) {
  if (name == "count") {
    *kind = AggKind::kCount;
  } else if (name == "sum") {
    *kind = AggKind::kSum;
  } else if (name == "min") {
    *kind = AggKind::kMin;
  } else if (name == "max") {
    *kind = AggKind::kMax;
  } else if (name == "avg") {
    *kind = AggKind::kAvg;
  } else if (name == "collect_list") {
    *kind = AggKind::kCollectList;
  } else {
    return false;
  }
  return true;
}

bool AnyAggCallAst(const SqlExpr& e) {
  bool found = false;
  WalkAst(e, [&](const SqlExpr& n) {
    AggKind k;
    if (n.kind == SqlExprKind::kCall && AggKindForName(n.text, &k)) {
      found = true;
    }
  });
  return found;
}

bool IsNumericish(const DataType& t) {
  switch (t.id()) {
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kFloat64:
    case TypeId::kDecimal128:
      return true;
    default:
      return false;
  }
}

bool IsIntegral(const DataType& t) {
  return t.id() == TypeId::kInt32 || t.id() == TypeId::kInt64;
}

ExprPtr FoldAnd(std::vector<ExprPtr> conjuncts) {
  ExprPtr acc;
  for (auto& c : conjuncts) {
    acc = acc ? eb::And(std::move(acc), std::move(c)) : std::move(c);
  }
  return acc;
}

std::string QualifiedName(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += ".";
    out += p;
  }
  return out;
}

/// ON-conjunct → hash-join key pair. A lowered conjunct qualifies when it
/// is `col = col` over bare references of the same integral type with the
/// two sides on opposite sides of the join. The fingerprint normalizer in
/// printer.cc treats key pairs and residual equality conjuncts uniformly,
/// so this extraction is a performance choice, never a semantic one.
bool AsJoinKeyPair(const ExprPtr& e, int left_width, ExprPtr* probe_key,
                   ExprPtr* build_key) {
  auto* cmp = dynamic_cast<ComparisonExpr*>(e.get());
  if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
  std::vector<ExprPtr> kids = cmp->children();
  auto* a = dynamic_cast<ColumnRefExpr*>(kids[0].get());
  auto* b = dynamic_cast<ColumnRefExpr*>(kids[1].get());
  if (a == nullptr || b == nullptr) return false;
  if (a->type().id() != b->type().id() || !IsIntegral(a->type())) {
    return false;
  }
  bool a_left = a->index() < left_width;
  bool b_left = b->index() < left_width;
  if (a_left == b_left) return false;
  const ColumnRefExpr* probe = a_left ? a : b;
  const ColumnRefExpr* build = a_left ? b : a;
  *probe_key = eb::Col(probe->index(), probe->type(), probe->name());
  *build_key =
      eb::Col(build->index() - left_width, build->type(), build->name());
  return true;
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  Analyzer(const std::string& source, const Catalog& catalog)
      : source_(source), catalog_(catalog) {}

  Result<Lowered> LowerQuery(const SelectStmt& stmt, int qdepth);

  // DML statements (CompileStatement): type-check against the target's
  // delta binding and produce the executor specs from exec/dml.h.
  Result<CompiledStatement> LowerDelete(const DeleteStmt& stmt);
  Result<CompiledStatement> LowerUpdate(const UpdateStmt& stmt);
  Result<CompiledStatement> LowerMerge(const MergeStmt& stmt);

 private:
  /// Resolved DML target: the live delta binding plus a single-table scope
  /// over its schema (qualifier = alias, or the table name).
  struct DmlTarget {
    const DeltaBinding* binding = nullptr;
    Schema schema;
    Scope scope;
  };
  Result<DmlTarget> ResolveDmlTarget(const std::string& name, int offset,
                                     const std::string& alias);
  /// `col = expr`: resolves the column, types the value against `ctx`,
  /// casts it to the column type. `assigned` guards duplicates.
  Result<dml::UpdateAssignment> LowerSetClause(const SetClause& clause,
                                               const Schema& schema,
                                               const ExprCtx& ctx,
                                               std::vector<bool>* assigned);
  Status Err(int offset, const std::string& msg) const {
    return Status::InvalidArgument(ErrorAt(source_, offset, msg));
  }

  // -- resolution --

  Result<int> ResolveIdent(const std::vector<std::string>& parts,
                           const ExprCtx& ctx, int offset) const;

  // -- expressions --

  Result<ExprPtr> AnalyzeExpr(const SqlExpr& e, const ExprCtx& ctx,
                              int depth);
  Result<ExprPtr> AnalyzePrimaryLiteral(const SqlExpr& e);
  Result<ExprPtr> LowerIntText(const std::string& text, int offset);
  Result<ExprPtr> LowerDecimalText(const std::string& text, int offset);
  Result<ExprPtr> LowerTypedLit(const SqlExpr& e);
  Result<ExprPtr> AnalyzeCall(const SqlExpr& e, const ExprCtx& ctx,
                              int depth);
  Result<ExprPtr> AnalyzeCase(const SqlExpr& e, const ExprCtx& ctx,
                              int depth);
  Result<DataType> CaseCommonType(const DataType& a, const DataType& b,
                                  int offset);
  Status RequireBoolean(const ExprPtr& e, int offset,
                        const char* what) const;
  Status CheckCmpOperands(const ExprPtr& a, const ExprPtr& b,
                          int offset) const;

  // -- aggregation --

  Status CollectAggs(const SqlExpr& e, AggInfo* agg, bool inside_agg);
  Result<int> AggSpecIndex(const SqlExpr& call, AggInfo* agg,
                           bool may_add);

  // -- clauses --

  Result<Lowered> LowerFrom(const TableRef& ref, int qdepth);
  Status ApplyTableAlias(Lowered* lowered, const TableRef& ref) const;
  Status LowerPredicate(Lowered* cur, const SqlExpr& pred, AggInfo* agg,
                        int qdepth);
  Status HandleInSubquery(Lowered* cur, const SqlExpr& e, bool negated,
                          AggInfo* agg, int qdepth);
  Status HandleExists(Lowered* cur, const SqlExpr& e, bool anti, int qdepth);
  Status HandleScalarConjunct(Lowered* cur, const SqlExpr& conjunct,
                              AggInfo* agg, int qdepth);
  Result<Lowered> LowerScalarSubquery(const SqlExpr& sub, int qdepth);

  const std::string& source_;
  const Catalog& catalog_;
  // CTE frames, innermost last. Each frame maps name → definition body.
  std::vector<std::vector<std::pair<std::string, const SelectStmt*>>>
      cte_frames_;
};

// ---------------------------------------------------------------------------
// Name resolution
// ---------------------------------------------------------------------------

Result<int> Analyzer::ResolveIdent(const std::vector<std::string>& parts,
                                   const ExprCtx& ctx, int offset) const {
  const std::vector<ScopeColumn>& cols = ctx.scope->cols;
  const std::string& name = parts.back();
  const std::string* qualifier = parts.size() == 2 ? &parts[0] : nullptr;

  auto match_range = [&](int begin, int end, int* hit) {
    int count = 0;
    for (int i = begin; i < end; i++) {
      const ScopeColumn& c = cols[i];
      if (c.hidden) continue;
      if (c.name != name) continue;
      if (qualifier != nullptr && c.qualifier != *qualifier) continue;
      *hit = i;
      count++;
    }
    return count;
  };

  int n = static_cast<int>(cols.size());
  int hit = -1;
  int count = 0;
  if (ctx.inner_zone_start >= 0) {
    // Correlated condition: the inner query's columns shadow the outer's.
    count = match_range(ctx.inner_zone_start, n, &hit);
    if (count == 0) count = match_range(0, ctx.inner_zone_start, &hit);
  } else {
    count = match_range(0, n, &hit);
  }
  if (count == 1) return hit;
  if (count > 1) {
    return Err(offset, "ambiguous column '" + QualifiedName(parts) + "'");
  }
  std::string msg = "unknown column '" + QualifiedName(parts) + "'";
  if (ctx.agg != nullptr) {
    msg += " (output columns of a grouped query are its GROUP BY keys and "
           "aggregates)";
  }
  return Err(offset, msg);
}

// ---------------------------------------------------------------------------
// Literals
// ---------------------------------------------------------------------------

Result<ExprPtr> Analyzer::LowerIntText(const std::string& text, int offset) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE || end == nullptr || *end != '\0') {
    return Err(offset, "integer literal '" + text + "' out of range");
  }
  if (v >= std::numeric_limits<int32_t>::min() &&
      v <= std::numeric_limits<int32_t>::max()) {
    return eb::Lit(static_cast<int32_t>(v));
  }
  return eb::Lit(static_cast<int64_t>(v));
}

Result<ExprPtr> Analyzer::LowerDecimalText(const std::string& text,
                                           int offset) {
  // Natural precision/scale from the spelling: "0.05" → Decimal(2, 2),
  // "-123.4" → Decimal(4, 1). A different shape needs DECIMAL(p,s) '...'.
  std::string body = text;
  if (!body.empty() && body[0] == '-') body = body.substr(1);
  size_t dot = body.find('.');
  std::string int_part = dot == std::string::npos ? body : body.substr(0, dot);
  std::string frac_part =
      dot == std::string::npos ? "" : body.substr(dot + 1);
  while (int_part.size() > 1 && int_part[0] == '0') int_part.erase(0, 1);
  int int_digits = (int_part.empty() || int_part == "0")
                       ? 0
                       : static_cast<int>(int_part.size());
  int scale = static_cast<int>(frac_part.size());
  int precision = std::max(int_digits + scale, std::max(scale, 1));
  if (precision > 38) {
    return Err(offset, "decimal literal '" + text + "' exceeds 38 digits");
  }
  std::string parse_text = text;
  if (!parse_text.empty() && parse_text.back() == '.') parse_text.pop_back();
  Decimal128 d;
  if (!Decimal128::FromString(parse_text, scale, &d)) {
    return Err(offset, "invalid decimal literal '" + text + "'");
  }
  return eb::DecimalLit(parse_text, precision, scale);
}

Result<ExprPtr> Analyzer::LowerTypedLit(const SqlExpr& e) {
  const DataType& t = e.cast_type;
  const std::string& text = e.text;
  switch (t.id()) {
    case TypeId::kInt32: {
      Result<ExprPtr> r = LowerIntText(text, e.offset);
      if (!r.ok()) return r;
      if ((*r)->type().id() != TypeId::kInt32) {
        return Err(e.offset, "INT literal '" + text + "' out of range");
      }
      return r;
    }
    case TypeId::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == ERANGE || end == nullptr || *end != '\0') {
        return Err(e.offset, "BIGINT literal '" + text + "' out of range");
      }
      return eb::Lit(static_cast<int64_t>(v));
    }
    case TypeId::kFloat64: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0' || end == text.c_str()) {
        return Err(e.offset, "invalid DOUBLE literal '" + text + "'");
      }
      return eb::Lit(v);
    }
    case TypeId::kBoolean: {
      std::string lower = text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lower == "true") return eb::Lit(true);
      if (lower == "false") return eb::Lit(false);
      return Err(e.offset, "invalid BOOLEAN literal '" + text + "'");
    }
    case TypeId::kDate32: {
      int32_t days = 0;
      if (!ParseDate(text, &days)) {
        return Err(e.offset,
                   "invalid DATE literal '" + text + "' (want YYYY-MM-DD)");
      }
      return eb::DateLit(text);
    }
    case TypeId::kTimestamp: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == ERANGE || end == nullptr || *end != '\0') {
        return Err(e.offset, "invalid TIMESTAMP literal '" + text +
                                 "' (want microseconds since epoch)");
      }
      return ExprPtr(std::make_shared<LiteralExpr>(Value::Timestamp(v),
                                                   DataType::Timestamp()));
    }
    case TypeId::kString:
      return eb::Lit(text);
    case TypeId::kDecimal128: {
      Decimal128 d;
      if (!Decimal128::FromString(text, t.scale(), &d)) {
        return Err(e.offset, "invalid DECIMAL literal '" + text + "'");
      }
      return eb::DecimalLit(text, t.precision(), t.scale());
    }
  }
  return Err(e.offset, "unsupported literal type " + t.ToString());
}

Result<ExprPtr> Analyzer::AnalyzePrimaryLiteral(const SqlExpr& e) {
  switch (e.kind) {
    case SqlExprKind::kIntLit:
      return LowerIntText(e.text, e.offset);
    case SqlExprKind::kDecimalLit:
      return LowerDecimalText(e.text, e.offset);
    case SqlExprKind::kFloatLit: {
      char* end = nullptr;
      double v = std::strtod(e.text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Err(e.offset, "invalid float literal '" + e.text + "'");
      }
      return eb::Lit(v);
    }
    case SqlExprKind::kStringLit:
      return eb::Lit(e.text);
    case SqlExprKind::kBoolLit:
      return eb::Lit(e.bool_val);
    case SqlExprKind::kTypedLit:
      return LowerTypedLit(e);
    default:
      return Err(e.offset, "internal: not a literal");
  }
}

// ---------------------------------------------------------------------------
// Type checks mirroring the eb:: builders
// ---------------------------------------------------------------------------

Status Analyzer::RequireBoolean(const ExprPtr& e, int offset,
                                const char* what) const {
  if (e->type().id() != TypeId::kBoolean) {
    return Err(offset, std::string(what) + " must be a boolean, got " +
                           e->type().ToString());
  }
  return Status::OK();
}

Status Analyzer::CheckCmpOperands(const ExprPtr& a, const ExprPtr& b,
                                  int offset) const {
  const DataType& ta = a->type();
  const DataType& tb = b->type();
  if (ta.id() == tb.id()) {
    // Same physical type compares raw. That includes decimals of unequal
    // scale (the kernels compare unscaled 128-bit values) — numerically
    // surprising, but it is exactly what the eb:: builders produce for
    // hand-built plans, and the analyzer's contract is to match them.
    return Status::OK();
  }
  if (IsNumericish(ta) && IsNumericish(tb)) return Status::OK();
  // A string compared against a date parses as a date (eb::MakeCmp).
  if ((ta.id() == TypeId::kDate32 && tb.is_string()) ||
      (tb.id() == TypeId::kDate32 && ta.is_string())) {
    return Status::OK();
  }
  return Err(offset,
             "cannot compare " + ta.ToString() + " with " + tb.ToString());
}

Result<DataType> Analyzer::CaseCommonType(const DataType& a,
                                          const DataType& b, int offset) {
  if (a == b) return a;
  auto widen = [](const DataType& t) {
    if (t.id() == TypeId::kInt32) return DataType::Decimal(10, 0);
    if (t.id() == TypeId::kInt64) return DataType::Decimal(20, 0);
    return t;
  };
  if (a.is_decimal() || b.is_decimal()) {
    if (a.id() == TypeId::kFloat64 || b.id() == TypeId::kFloat64) {
      return DataType::Float64();
    }
    DataType da = widen(a);
    DataType db = widen(b);
    if (!da.is_decimal() || !db.is_decimal()) {
      return Err(offset, "CASE branches have incompatible types " +
                             a.ToString() + " and " + b.ToString());
    }
    int scale = std::max(da.scale(), db.scale());
    int int_digits =
        std::max(da.precision() - da.scale(), db.precision() - db.scale());
    int precision = std::min(38, int_digits + scale);
    if (scale > precision) scale = precision;
    return DataType::Decimal(precision, scale);
  }
  if (IsNumericish(a) && IsNumericish(b)) return eb::CommonType(a, b);
  return Err(offset, "CASE branches have incompatible types " +
                         a.ToString() + " and " + b.ToString());
}

// ---------------------------------------------------------------------------
// Aggregate discovery
// ---------------------------------------------------------------------------

Result<int> Analyzer::AggSpecIndex(const SqlExpr& call, AggInfo* agg,
                                   bool may_add) {
  AggKind kind;
  PHOTON_CHECK(AggKindForName(call.text, &kind));
  ExprPtr arg;
  std::string canon;
  DataType arg_type;
  if (call.star) {
    if (call.text != "count") {
      return Err(call.offset, call.text + "(*) is not a valid aggregate");
    }
    kind = AggKind::kCountStar;
    canon = "*";
  } else {
    if (call.args.size() != 1) {
      return Err(call.offset, "aggregate " + call.text +
                                  " takes exactly one argument");
    }
    ExprCtx arg_ctx;
    arg_ctx.scope = &agg->input_scope;
    Result<ExprPtr> r = AnalyzeExpr(*call.args[0], arg_ctx, 0);
    if (!r.ok()) return r.status();
    arg = *r;
    arg_type = arg->type();
    canon = ExprCanonKey(*arg);
  }
  std::string full = call.text + ":" + canon;
  for (size_t i = 0; i < agg->spec_canons.size(); i++) {
    if (agg->spec_canons[i] == full) return static_cast<int>(i);
  }
  if (!may_add) {
    return Err(call.offset,
               "internal: aggregate call was not collected during the "
               "grouping pre-scan");
  }
  Result<DataType> result_type = AggResultType(kind, arg_type);
  if (!result_type.ok()) {
    return Err(call.offset, "aggregate " + call.text +
                                " does not accept an argument of type " +
                                arg_type.ToString());
  }
  AggregateSpec spec;
  spec.kind = kind;
  spec.arg = std::move(arg);
  spec.name = "_a" + std::to_string(agg->specs.size());
  agg->specs.push_back(std::move(spec));
  agg->spec_canons.push_back(full);
  agg->spec_types.push_back(*result_type);
  return static_cast<int>(agg->specs.size() - 1);
}

Status Analyzer::CollectAggs(const SqlExpr& e, AggInfo* agg,
                             bool inside_agg) {
  AggKind kind;
  if (e.kind == SqlExprKind::kCall && AggKindForName(e.text, &kind)) {
    if (inside_agg) {
      return Err(e.offset, "aggregate functions cannot be nested");
    }
    Result<int> idx = AggSpecIndex(e, agg, /*may_add=*/true);
    if (!idx.ok()) return idx.status();
    for (const auto& a : e.args) {
      Status s = CollectAggs(*a, agg, /*inside_agg=*/true);
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
  for (const auto& a : e.args) {
    Status s = CollectAggs(*a, agg, inside_agg);
    if (!s.ok()) return s;
  }
  for (const auto& b : e.branches) {
    Status s = CollectAggs(*b.first, agg, inside_agg);
    if (!s.ok()) return s;
    s = CollectAggs(*b.second, agg, inside_agg);
    if (!s.ok()) return s;
  }
  if (e.else_expr) {
    Status s = CollectAggs(*e.else_expr, agg, inside_agg);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Expression analysis
// ---------------------------------------------------------------------------

Result<ExprPtr> Analyzer::AnalyzeCall(const SqlExpr& e, const ExprCtx& ctx,
                                      int depth) {
  AggKind kind;
  if (AggKindForName(e.text, &kind)) {
    if (ctx.agg == nullptr) {
      return Err(e.offset, "aggregate function '" + e.text +
                               "' is only allowed in the SELECT list or "
                               "HAVING clause of a grouped query");
    }
    Result<int> idx = AggSpecIndex(e, ctx.agg, /*may_add=*/false);
    if (!idx.ok()) return idx.status();
    int nk = static_cast<int>(ctx.agg->key_exprs.size());
    return eb::Col(nk + *idx, ctx.agg->spec_types[*idx],
                   ctx.agg->specs[*idx].name);
  }
  const FunctionImpl* fn = FunctionRegistry::Instance().Lookup(e.text);
  if (fn == nullptr) {
    return Err(e.offset, "unknown function '" + e.text + "'");
  }
  if (e.star) {
    return Err(e.offset, "'*' argument is only valid in count(*)");
  }
  std::vector<ExprPtr> args;
  std::vector<DataType> arg_types;
  for (const auto& a : e.args) {
    Result<ExprPtr> r = AnalyzeExpr(*a, ctx, depth + 1);
    if (!r.ok()) return r;
    arg_types.push_back((*r)->type());
    args.push_back(*std::move(r));
  }
  Result<DataType> bound = fn->bind(arg_types);
  if (!bound.ok()) {
    std::string types;
    for (const auto& t : arg_types) {
      if (!types.empty()) types += ", ";
      types += t.ToString();
    }
    return Err(e.offset, "no overload of '" + e.text + "' accepts (" +
                             types + "): " + bound.status().message());
  }
  return eb::Call(e.text, std::move(args));
}

Result<ExprPtr> Analyzer::AnalyzeCase(const SqlExpr& e, const ExprCtx& ctx,
                                      int depth) {
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  DataType unified;
  bool have_type = false;
  for (const auto& b : e.branches) {
    Result<ExprPtr> cond = AnalyzeExpr(*b.first, ctx, depth + 1);
    if (!cond.ok()) return cond;
    Status s = RequireBoolean(*cond, b.first->offset, "CASE WHEN condition");
    if (!s.ok()) return s;
    Result<ExprPtr> then = AnalyzeExpr(*b.second, ctx, depth + 1);
    if (!then.ok()) return then;
    if (!have_type) {
      unified = (*then)->type();
      have_type = true;
    } else {
      Result<DataType> u =
          CaseCommonType(unified, (*then)->type(), b.second->offset);
      if (!u.ok()) return u.status();
      unified = *u;
    }
    branches.emplace_back(*cond, *then);
  }
  ExprPtr else_expr;
  if (e.else_expr) {
    Result<ExprPtr> r = AnalyzeExpr(*e.else_expr, ctx, depth + 1);
    if (!r.ok()) return r;
    else_expr = *r;
    Result<DataType> u =
        CaseCommonType(unified, else_expr->type(), e.else_expr->offset);
    if (!u.ok()) return u.status();
    unified = *u;
  }
  // eb::CaseWhen does not coerce: align every branch to the unified type.
  for (auto& b : branches) b.second = eb::Cast(std::move(b.second), unified);
  if (else_expr) else_expr = eb::Cast(std::move(else_expr), unified);
  return eb::CaseWhen(std::move(branches), std::move(else_expr));
}

Result<ExprPtr> Analyzer::AnalyzeExpr(const SqlExpr& e, const ExprCtx& ctx,
                                      int depth) {
  if (depth > kMaxSqlExprDepth) {
    return Err(e.offset, "expression exceeds depth limit " +
                             std::to_string(kMaxSqlExprDepth));
  }
  if (ctx.subst != nullptr) {
    auto it = ctx.subst->find(&e);
    if (it != ctx.subst->end()) return it->second;
  }
  // Grouped queries: any subtree that is structurally one of the GROUP BY
  // keys resolves to that key's output column (matching is over the typed
  // lowering against the pre-aggregate scope, so `p_type` and `t.p_type`
  // match the same key).
  if (ctx.agg != nullptr) {
    ExprCtx silent;
    silent.scope = &ctx.agg->input_scope;
    Result<ExprPtr> k = AnalyzeExpr(e, silent, depth + 1);
    if (k.ok()) {
      std::string canon = ExprCanonKey(**k);
      for (size_t i = 0; i < ctx.agg->key_canons.size(); i++) {
        if (ctx.agg->key_canons[i] == canon) {
          return eb::Col(static_cast<int>(i), ctx.agg->key_exprs[i]->type(),
                         ctx.agg->key_names[i]);
        }
      }
    }
  }
  switch (e.kind) {
    case SqlExprKind::kParen:
      return AnalyzeExpr(*e.args[0], ctx, depth + 1);
    case SqlExprKind::kIdent: {
      Result<int> idx = ResolveIdent(e.parts, ctx, e.offset);
      if (!idx.ok()) return idx.status();
      const ScopeColumn& col = ctx.scope->cols[*idx];
      return eb::Col(*idx, col.type,
                     col.name.empty() ? e.parts.back() : col.name);
    }
    case SqlExprKind::kIntLit:
    case SqlExprKind::kDecimalLit:
    case SqlExprKind::kFloatLit:
    case SqlExprKind::kStringLit:
    case SqlExprKind::kBoolLit:
    case SqlExprKind::kTypedLit:
      return AnalyzePrimaryLiteral(e);
    case SqlExprKind::kNullLit:
      return Err(e.offset,
                 "a bare NULL literal has no type; write CAST(NULL AS type)");
    case SqlExprKind::kUnaryMinus: {
      const SqlExpr& child = *e.args[0];
      if (child.kind == SqlExprKind::kIntLit ||
          child.kind == SqlExprKind::kDecimalLit ||
          child.kind == SqlExprKind::kFloatLit) {
        SqlExpr folded = child;
        folded.offset = e.offset;
        folded.text = "-" + child.text;
        return AnalyzePrimaryLiteral(folded);
      }
      Result<ExprPtr> r = AnalyzeExpr(child, ctx, depth + 1);
      if (!r.ok()) return r;
      ExprPtr x = *r;
      const DataType& t = x->type();
      switch (t.id()) {
        case TypeId::kInt32:
          return eb::Sub(eb::Lit(static_cast<int32_t>(0)), std::move(x));
        case TypeId::kInt64:
          return eb::Sub(eb::Lit(static_cast<int64_t>(0)), std::move(x));
        case TypeId::kFloat64:
          return eb::Sub(eb::Lit(0.0), std::move(x));
        case TypeId::kDecimal128:
          return eb::Sub(eb::DecimalLit("0", t.precision(), t.scale()),
                         std::move(x));
        default:
          return Err(e.offset, "unary minus requires a numeric operand, got " +
                                   t.ToString());
      }
    }
    case SqlExprKind::kNot: {
      Result<ExprPtr> r = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!r.ok()) return r;
      Status s = RequireBoolean(*r, e.args[0]->offset, "NOT operand");
      if (!s.ok()) return s;
      return eb::Not(*std::move(r));
    }
    case SqlExprKind::kArith: {
      Result<ExprPtr> ra = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!ra.ok()) return ra;
      Result<ExprPtr> rb = AnalyzeExpr(*e.args[1], ctx, depth + 1);
      if (!rb.ok()) return rb;
      ExprPtr a = *ra;
      ExprPtr b = *rb;
      if (!IsNumericish(a->type()) || !IsNumericish(b->type())) {
        return Err(e.offset, "operator '" + e.text +
                                 "' requires numeric operands, got " +
                                 a->type().ToString() + " and " +
                                 b->type().ToString() +
                                 (a->type().is_string() ||
                                          b->type().is_string()
                                      ? " (use concat for strings)"
                                      : ""));
      }
      if (e.text == "%") {
        bool ints = IsIntegral(a->type()) && IsIntegral(b->type());
        bool decs = a->type().is_decimal() && b->type().is_decimal();
        if (!ints && !decs) {
          return Err(e.offset,
                     "'%' requires two integer or two decimal operands");
        }
      }
      if (e.text == "+") return eb::Add(std::move(a), std::move(b));
      if (e.text == "-") return eb::Sub(std::move(a), std::move(b));
      if (e.text == "*") return eb::Mul(std::move(a), std::move(b));
      if (e.text == "/") return eb::Div(std::move(a), std::move(b));
      return eb::Mod(std::move(a), std::move(b));
    }
    case SqlExprKind::kCompare: {
      Result<ExprPtr> ra = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!ra.ok()) return ra;
      Result<ExprPtr> rb = AnalyzeExpr(*e.args[1], ctx, depth + 1);
      if (!rb.ok()) return rb;
      Status s = CheckCmpOperands(*ra, *rb, e.offset);
      if (!s.ok()) return s;
      ExprPtr a = *std::move(ra);
      ExprPtr b = *std::move(rb);
      if (e.text == "=") return eb::Eq(std::move(a), std::move(b));
      if (e.text == "<>") return eb::Ne(std::move(a), std::move(b));
      if (e.text == "<") return eb::Lt(std::move(a), std::move(b));
      if (e.text == "<=") return eb::Le(std::move(a), std::move(b));
      if (e.text == ">") return eb::Gt(std::move(a), std::move(b));
      return eb::Ge(std::move(a), std::move(b));
    }
    case SqlExprKind::kAnd:
    case SqlExprKind::kOr: {
      Result<ExprPtr> ra = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!ra.ok()) return ra;
      Result<ExprPtr> rb = AnalyzeExpr(*e.args[1], ctx, depth + 1);
      if (!rb.ok()) return rb;
      Status s = RequireBoolean(*ra, e.args[0]->offset, "AND/OR operand");
      if (!s.ok()) return s;
      s = RequireBoolean(*rb, e.args[1]->offset, "AND/OR operand");
      if (!s.ok()) return s;
      return e.kind == SqlExprKind::kAnd
                 ? eb::And(*std::move(ra), *std::move(rb))
                 : eb::Or(*std::move(ra), *std::move(rb));
    }
    case SqlExprKind::kIsNull: {
      Result<ExprPtr> r = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!r.ok()) return r;
      return e.negated ? eb::IsNotNull(*std::move(r))
                       : eb::IsNull(*std::move(r));
    }
    case SqlExprKind::kBetween: {
      Result<ExprPtr> rv = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!rv.ok()) return rv;
      Result<ExprPtr> rlo = AnalyzeExpr(*e.args[1], ctx, depth + 1);
      if (!rlo.ok()) return rlo;
      Result<ExprPtr> rhi = AnalyzeExpr(*e.args[2], ctx, depth + 1);
      if (!rhi.ok()) return rhi;
      const DataType& tv = (*rv)->type();
      const DataType& tlo = (*rlo)->type();
      const DataType& thi = (*rhi)->type();
      bool ok = false;
      if (IsNumericish(tv) && IsNumericish(tlo) && IsNumericish(thi)) {
        ok = true;
      } else if (tv.id() == TypeId::kDate32 &&
                 (tlo.is_string() || tlo.id() == TypeId::kDate32) &&
                 (thi.is_string() || thi.id() == TypeId::kDate32)) {
        ok = true;
      } else if (tv.id() == tlo.id() && tv.id() == thi.id()) {
        ok = true;
      }
      if (!ok) {
        return Err(e.offset, "BETWEEN operands have incompatible types " +
                                 tv.ToString() + ", " + tlo.ToString() +
                                 ", " + thi.ToString());
      }
      ExprPtr between =
          eb::Between(*std::move(rv), *std::move(rlo), *std::move(rhi));
      return e.negated ? eb::Not(std::move(between)) : std::move(between);
    }
    case SqlExprKind::kInList: {
      Result<ExprPtr> rv = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!rv.ok()) return rv;
      ExprPtr value = *std::move(rv);
      const DataType& vt = value->type();
      std::vector<Value> list;
      for (size_t i = 1; i < e.args.size(); i++) {
        Result<ExprPtr> ri = AnalyzeExpr(*e.args[i], ctx, depth + 1);
        if (!ri.ok()) return ri;
        auto* lit = dynamic_cast<LiteralExpr*>(ri->get());
        if (lit == nullptr) {
          return Err(e.args[i]->offset, "IN list items must be literals");
        }
        const DataType& it = (*ri)->type();
        if (it == vt) {
          list.push_back(lit->value());
        } else if (vt.id() == TypeId::kInt64 && it.id() == TypeId::kInt32) {
          list.push_back(Value::Int64(lit->value().i32()));
        } else if (vt.id() == TypeId::kFloat64 && IsIntegral(it)) {
          list.push_back(Value::Float64(
              it.id() == TypeId::kInt32
                  ? static_cast<double>(lit->value().i32())
                  : static_cast<double>(lit->value().i64())));
        } else if (vt.id() == TypeId::kDate32 && it.is_string()) {
          int32_t days = 0;
          if (!ParseDate(lit->value().str(), &days)) {
            return Err(e.args[i]->offset, "invalid date '" +
                                              lit->value().str() + "'");
          }
          list.push_back(Value::Date32(days));
        } else {
          return Err(e.args[i]->offset,
                     "IN list item type " + it.ToString() +
                         " does not match value type " + vt.ToString());
        }
      }
      ExprPtr in = eb::In(std::move(value), std::move(list));
      return e.negated ? eb::Not(std::move(in)) : std::move(in);
    }
    case SqlExprKind::kLike: {
      Result<ExprPtr> rv = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!rv.ok()) return rv;
      if (!(*rv)->type().is_string()) {
        return Err(e.offset, "LIKE requires a string value, got " +
                                 (*rv)->type().ToString());
      }
      ExprPtr like = eb::Like(*std::move(rv), e.text);
      return e.negated ? eb::Not(std::move(like)) : std::move(like);
    }
    case SqlExprKind::kCase:
      return AnalyzeCase(e, ctx, depth);
    case SqlExprKind::kCast: {
      const SqlExpr* operand = StripParens(e.args[0].get());
      if (operand->kind == SqlExprKind::kNullLit) {
        return eb::NullLit(e.cast_type);
      }
      Result<ExprPtr> r = AnalyzeExpr(*e.args[0], ctx, depth + 1);
      if (!r.ok()) return r;
      // Unsupported source/target pairs surface as a clean runtime Status
      // from the cast kernels; the analyzer stays permissive.
      return eb::Cast(*std::move(r), e.cast_type);
    }
    case SqlExprKind::kCall:
      return AnalyzeCall(e, ctx, depth);
    case SqlExprKind::kInSubquery:
    case SqlExprKind::kExists:
    case SqlExprKind::kScalarSubquery:
      return Err(e.offset,
                 "subqueries are only supported as top-level WHERE/HAVING "
                 "conjuncts (IN/EXISTS) or compared against one side of a "
                 "top-level conjunct (scalar)");
  }
  return Err(e.offset, "internal: unhandled expression kind");
}

// ---------------------------------------------------------------------------
// FROM clause
// ---------------------------------------------------------------------------

Status Analyzer::ApplyTableAlias(Lowered* lowered,
                                 const TableRef& ref) const {
  std::string qualifier = ref.alias;
  if (qualifier.empty() && ref.kind == TableRefKind::kTable) {
    qualifier = ref.table_name;
  }
  for (auto& c : lowered->scope.cols) c.qualifier = qualifier;
  if (!ref.column_aliases.empty()) {
    if (static_cast<int>(ref.column_aliases.size()) !=
        lowered->scope.width()) {
      return Err(ref.offset,
                 "column alias list has " +
                     std::to_string(ref.column_aliases.size()) +
                     " names but the table produces " +
                     std::to_string(lowered->scope.width()) + " columns");
    }
    for (size_t i = 0; i < ref.column_aliases.size(); i++) {
      lowered->scope.cols[i].name = ref.column_aliases[i];
    }
  }
  return Status::OK();
}

Result<Lowered> Analyzer::LowerFrom(const TableRef& ref, int qdepth) {
  switch (ref.kind) {
    case TableRefKind::kTable: {
      // CTEs shadow catalog tables; innermost frame wins. Each reference
      // re-lowers the body (macro semantics), which is exactly how the
      // hand-built plans instantiate shared subplans twice.
      for (auto frame = cte_frames_.rbegin(); frame != cte_frames_.rend();
           ++frame) {
        for (const auto& [name, body] : *frame) {
          if (name == ref.table_name) {
            Result<Lowered> sub = LowerQuery(*body, qdepth + 1);
            if (!sub.ok()) return sub;
            Lowered out = *std::move(sub);
            Status s = ApplyTableAlias(&out, ref);
            if (!s.ok()) return s;
            if (out.scope.cols[0].qualifier.empty()) {
              for (auto& c : out.scope.cols) c.qualifier = name;
            }
            return out;
          }
        }
      }
      const plan::PlanPtr* leaf = catalog_.Lookup(ref.table_name);
      if (leaf == nullptr) {
        return Err(ref.offset, "unknown table '" + ref.table_name + "'");
      }
      Lowered out;
      if (ref.version >= 0) {
        // Time travel: a fresh DeltaScan pinned to the requested log
        // version, independent of the registered (latest) leaf.
        const DeltaBinding* binding = catalog_.LookupDelta(ref.table_name);
        if (binding == nullptr) {
          return Err(ref.offset, "table '" + ref.table_name +
                                     "' is not a delta table; VERSION AS OF "
                                     "requires one");
        }
        Result<DeltaSnapshot> snapshot =
            binding->table->Snapshot(ref.version);
        if (!snapshot.ok()) {
          return Err(ref.offset, "VERSION AS OF " +
                                     std::to_string(ref.version) + ": " +
                                     snapshot.status().message());
        }
        out.plan = plan::DeltaScan(binding->table->store(),
                                   *std::move(snapshot), {}, nullptr,
                                   binding->io);
      } else {
        out.plan = *leaf;
      }
      const Schema& schema = out.plan->output_schema;
      for (int i = 0; i < schema.num_fields(); i++) {
        out.scope.cols.push_back(
            {"", schema.field(i).name, schema.field(i).type, false});
      }
      Status s = ApplyTableAlias(&out, ref);
      if (!s.ok()) return s;
      return out;
    }
    case TableRefKind::kSubquery: {
      Result<Lowered> sub = LowerQuery(*ref.subquery, qdepth + 1);
      if (!sub.ok()) return sub;
      Lowered out = *std::move(sub);
      Status s = ApplyTableAlias(&out, ref);
      if (!s.ok()) return s;
      return out;
    }
    case TableRefKind::kJoin:
      break;
  }

  Result<Lowered> rl = LowerFrom(*ref.left, qdepth);
  if (!rl.ok()) return rl;
  Result<Lowered> rr = LowerFrom(*ref.right, qdepth);
  if (!rr.ok()) return rr;
  Lowered left = *std::move(rl);
  Lowered right = *std::move(rr);

  Scope combined;
  combined.cols = left.scope.cols;
  combined.cols.insert(combined.cols.end(), right.scope.cols.begin(),
                       right.scope.cols.end());
  int left_width = left.scope.width();

  JoinType join_type = JoinType::kInner;
  switch (ref.join_kind) {
    case SqlJoinKind::kInner:
    case SqlJoinKind::kCross:
      join_type = JoinType::kInner;
      break;
    case SqlJoinKind::kLeftOuter:
      join_type = JoinType::kLeftOuter;
      break;
    case SqlJoinKind::kSemi:
      join_type = JoinType::kLeftSemi;
      break;
    case SqlJoinKind::kAnti:
      join_type = JoinType::kLeftAnti;
      break;
  }

  std::vector<ExprPtr> probe_keys;
  std::vector<ExprPtr> build_keys;
  std::vector<ExprPtr> residual_conjuncts;
  if (ref.join_kind != SqlJoinKind::kCross) {
    std::vector<const SqlExpr*> conjuncts;
    FlattenAndAst(ref.condition.get(), &conjuncts);
    ExprCtx ctx;
    ctx.scope = &combined;
    for (const SqlExpr* c : conjuncts) {
      if (ContainsSubqueryAst(*c)) {
        return Err(c->offset, "subqueries are not allowed in JOIN ON "
                              "conditions");
      }
      Result<ExprPtr> r = AnalyzeExpr(*c, ctx, 0);
      if (!r.ok()) return r.status();
      Status s = RequireBoolean(*r, c->offset, "JOIN ON condition");
      if (!s.ok()) return s;
      ExprPtr pk, bk;
      if (AsJoinKeyPair(*r, left_width, &pk, &bk)) {
        probe_keys.push_back(std::move(pk));
        build_keys.push_back(std::move(bk));
      } else {
        residual_conjuncts.push_back(*std::move(r));
      }
    }
  }
  if (probe_keys.empty()) {
    // No equi-keys: hash-join on a constant (every probe row matches the
    // build partition) and evaluate the full condition as a residual.
    probe_keys.push_back(eb::Lit(static_cast<int32_t>(1)));
    build_keys.push_back(eb::Lit(static_cast<int32_t>(1)));
  }

  Lowered out;
  out.plan = plan::Join(left.plan, right.plan, join_type,
                        std::move(probe_keys), std::move(build_keys),
                        FoldAnd(std::move(residual_conjuncts)));
  out.scope = (join_type == JoinType::kLeftSemi ||
               join_type == JoinType::kLeftAnti)
                  ? std::move(left.scope)
                  : std::move(combined);
  return out;
}

// ---------------------------------------------------------------------------
// WHERE/HAVING conjuncts and subqueries
// ---------------------------------------------------------------------------

Result<Lowered> Analyzer::LowerScalarSubquery(const SqlExpr& sub,
                                              int qdepth) {
  Result<Lowered> r = LowerQuery(*sub.subquery, qdepth + 1);
  if (!r.ok()) return r;
  if (r->scope.width() != 1) {
    return Err(sub.offset, "scalar subquery must produce exactly one "
                           "column, got " +
                               std::to_string(r->scope.width()));
  }
  return r;
}

Status Analyzer::HandleInSubquery(Lowered* cur, const SqlExpr& e,
                                  bool negated, AggInfo* agg, int qdepth) {
  ExprCtx ctx;
  ctx.scope = &cur->scope;
  ctx.agg = agg;
  Result<ExprPtr> rv = AnalyzeExpr(*e.args[0], ctx, 0);
  if (!rv.ok()) return rv.status();
  ExprPtr value = *std::move(rv);

  Result<Lowered> rs = LowerQuery(*e.subquery, qdepth + 1);
  if (!rs.ok()) return rs.status();
  Lowered sub = *std::move(rs);
  if (sub.scope.width() != 1) {
    return Err(e.offset, "IN subquery must produce exactly one column, got " +
                             std::to_string(sub.scope.width()));
  }
  const DataType& kt = sub.scope.cols[0].type;
  if (value->type().id() != kt.id() || !IsIntegral(kt)) {
    return Err(e.offset, "IN subquery joins on integer keys; got " +
                             value->type().ToString() + " vs " +
                             kt.ToString() + " (add a CAST)");
  }
  ExprPtr build_key = eb::Col(0, kt, sub.scope.cols[0].name);
  cur->plan = plan::Join(cur->plan, sub.plan,
                         negated ? JoinType::kLeftAnti : JoinType::kLeftSemi,
                         {std::move(value)}, {std::move(build_key)});
  return Status::OK();
}

Status Analyzer::HandleExists(Lowered* cur, const SqlExpr& e, bool anti,
                              int qdepth) {
  const SelectStmt& body = *e.subquery;
  if (!body.group_by.empty() || body.having || body.distinct ||
      !body.order_by.empty() || body.limit >= 0 || !body.ctes.empty()) {
    return Err(e.offset, "EXISTS subquery must be a plain "
                         "SELECT ... FROM ... WHERE ...");
  }
  if (!body.from) {
    return Err(e.offset, "EXISTS subquery requires a FROM clause");
  }
  Result<Lowered> ri = LowerFrom(*body.from, qdepth + 1);
  if (!ri.ok()) return ri.status();
  Lowered inner = *std::move(ri);

  // Split the body's WHERE into conjuncts the inner query can evaluate by
  // itself (pushed below the build side) and correlated conjuncts that
  // become join keys or a join residual.
  std::vector<const SqlExpr*> inner_conjs;
  std::vector<const SqlExpr*> corr_conjs;
  if (body.where) {
    std::vector<const SqlExpr*> conjuncts;
    FlattenAndAst(body.where.get(), &conjuncts);
    ExprCtx inner_ctx;
    inner_ctx.scope = &inner.scope;
    for (const SqlExpr* c : conjuncts) {
      if (ContainsSubqueryAst(*c)) {
        return Err(c->offset,
                   "nested subqueries inside EXISTS are not supported");
      }
      Result<ExprPtr> silent = AnalyzeExpr(*c, inner_ctx, 0);
      if (silent.ok()) {
        inner_conjs.push_back(c);
      } else {
        corr_conjs.push_back(c);
      }
    }
  }
  if (!inner_conjs.empty()) {
    ExprCtx inner_ctx;
    inner_ctx.scope = &inner.scope;
    std::vector<ExprPtr> lowered;
    for (const SqlExpr* c : inner_conjs) {
      Result<ExprPtr> r = AnalyzeExpr(*c, inner_ctx, 0);
      if (!r.ok()) return r.status();
      Status s = RequireBoolean(*r, c->offset, "WHERE conjunct");
      if (!s.ok()) return s;
      lowered.push_back(*std::move(r));
    }
    inner.plan = plan::Filter(inner.plan, FoldAnd(std::move(lowered)));
  }

  // Build side: the body's SELECT list, or the filtered FROM verbatim for
  // `SELECT *` (so the build keeps the inner table's full width, matching
  // hand-built plans that join against the raw table).
  Lowered build;
  bool star = body.items.size() == 1 && body.items[0].expr == nullptr;
  if (star) {
    build = std::move(inner);
  } else {
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    ExprCtx inner_ctx;
    inner_ctx.scope = &inner.scope;
    for (size_t i = 0; i < body.items.size(); i++) {
      const SelectItem& item = body.items[i];
      if (item.expr == nullptr) {
        return Err(item.offset, "'*' must be the only select item");
      }
      Result<ExprPtr> r = AnalyzeExpr(*item.expr, inner_ctx, 0);
      if (!r.ok()) return r.status();
      std::string name = item.alias;
      if (name.empty()) {
        const SqlExpr* stripped = StripParens(item.expr.get());
        name = stripped->kind == SqlExprKind::kIdent
                   ? stripped->parts.back()
                   : "_c" + std::to_string(i);
      }
      build.scope.cols.push_back({"", name, (*r)->type(), false});
      exprs.push_back(*std::move(r));
      names.push_back(std::move(name));
    }
    build.plan = plan::Project(inner.plan, std::move(exprs),
                               std::move(names));
  }

  Scope combined;
  combined.cols = cur->scope.cols;
  combined.cols.insert(combined.cols.end(), build.scope.cols.begin(),
                       build.scope.cols.end());
  int outer_width = cur->scope.width();

  std::vector<ExprPtr> probe_keys;
  std::vector<ExprPtr> build_keys;
  std::vector<ExprPtr> residual_conjuncts;
  ExprCtx corr_ctx;
  corr_ctx.scope = &combined;
  corr_ctx.inner_zone_start = outer_width;
  for (const SqlExpr* c : corr_conjs) {
    Result<ExprPtr> r = AnalyzeExpr(*c, corr_ctx, 0);
    if (!r.ok()) return r.status();
    Status s = RequireBoolean(*r, c->offset, "EXISTS condition");
    if (!s.ok()) return s;
    ExprPtr pk, bk;
    if (AsJoinKeyPair(*r, outer_width, &pk, &bk)) {
      probe_keys.push_back(std::move(pk));
      build_keys.push_back(std::move(bk));
    } else {
      residual_conjuncts.push_back(*std::move(r));
    }
  }
  if (probe_keys.empty()) {
    probe_keys.push_back(eb::Lit(static_cast<int32_t>(1)));
    build_keys.push_back(eb::Lit(static_cast<int32_t>(1)));
  }
  cur->plan = plan::Join(cur->plan, build.plan,
                         anti ? JoinType::kLeftAnti : JoinType::kLeftSemi,
                         std::move(probe_keys), std::move(build_keys),
                         FoldAnd(std::move(residual_conjuncts)));
  return Status::OK();
}

Status Analyzer::HandleScalarConjunct(Lowered* cur, const SqlExpr& conjunct,
                                      AggInfo* agg, int qdepth) {
  std::vector<const SqlExpr*> subs;
  Status collect_status = Status::OK();
  WalkAst(conjunct, [&](const SqlExpr& n) {
    if (n.kind == SqlExprKind::kScalarSubquery) {
      subs.push_back(&n);
    } else if (n.kind == SqlExprKind::kInSubquery ||
               n.kind == SqlExprKind::kExists) {
      if (collect_status.ok()) {
        collect_status = Err(n.offset, "IN/EXISTS subqueries must be "
                                       "top-level WHERE/HAVING conjuncts");
      }
    }
  });
  if (!collect_status.ok()) return collect_status;

  // Each scalar subquery joins in as one appended (hidden) column; a
  // single-row aggregate build side makes the constant-key join a
  // broadcast of that scalar to every probe row.
  std::map<const SqlExpr*, ExprPtr> subst;
  for (const SqlExpr* s : subs) {
    Result<Lowered> rs = LowerScalarSubquery(*s, qdepth);
    if (!rs.ok()) return rs.status();
    Lowered sub = *std::move(rs);
    int at = cur->scope.width();
    cur->plan = plan::Join(cur->plan, sub.plan, JoinType::kInner,
                           {eb::Lit(static_cast<int32_t>(1))},
                           {eb::Lit(static_cast<int32_t>(1))});
    subst[s] = eb::Col(at, sub.scope.cols[0].type, sub.scope.cols[0].name);
    cur->scope.cols.push_back(
        {"", sub.scope.cols[0].name, sub.scope.cols[0].type, true});
  }

  ExprCtx ctx;
  ctx.scope = &cur->scope;
  ctx.agg = agg;
  ctx.subst = &subst;
  Result<ExprPtr> r = AnalyzeExpr(conjunct, ctx, 0);
  if (!r.ok()) return r.status();
  Status s = RequireBoolean(*r, conjunct.offset, "WHERE conjunct");
  if (!s.ok()) return s;
  cur->plan = plan::Filter(cur->plan, *std::move(r));
  return Status::OK();
}

Status Analyzer::LowerPredicate(Lowered* cur, const SqlExpr& pred,
                                AggInfo* agg, int qdepth) {
  std::vector<const SqlExpr*> conjuncts;
  FlattenAndAst(&pred, &conjuncts);

  std::vector<ExprPtr> pending;
  auto flush = [&]() {
    if (!pending.empty()) {
      cur->plan = plan::Filter(cur->plan, FoldAnd(std::move(pending)));
      pending.clear();
    }
  };

  for (const SqlExpr* c : conjuncts) {
    if (!ContainsSubqueryAst(*c)) {
      ExprCtx ctx;
      ctx.scope = &cur->scope;
      ctx.agg = agg;
      Result<ExprPtr> r = AnalyzeExpr(*c, ctx, 0);
      if (!r.ok()) return r.status();
      Status s = RequireBoolean(*r, c->offset, "WHERE conjunct");
      if (!s.ok()) return s;
      pending.push_back(*std::move(r));
      continue;
    }
    flush();
    const SqlExpr* stripped = StripParens(c);
    bool negated = false;
    while (stripped->kind == SqlExprKind::kNot) {
      const SqlExpr* inner = StripParens(stripped->args[0].get());
      if (inner->kind != SqlExprKind::kExists &&
          inner->kind != SqlExprKind::kInSubquery) {
        break;
      }
      negated = !negated;
      stripped = inner;
    }
    Status s;
    if (stripped->kind == SqlExprKind::kInSubquery) {
      s = HandleInSubquery(cur, *stripped, stripped->negated != negated, agg,
                           qdepth);
    } else if (stripped->kind == SqlExprKind::kExists) {
      s = HandleExists(cur, *stripped, stripped->negated != negated, qdepth);
    } else {
      s = HandleScalarConjunct(cur, *c, agg, qdepth);
    }
    if (!s.ok()) return s;
  }
  flush();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SELECT statements
// ---------------------------------------------------------------------------

Result<Lowered> Analyzer::LowerQuery(const SelectStmt& stmt, int qdepth) {
  if (qdepth > kMaxSqlQueryDepth) {
    return Err(stmt.offset, "query nesting exceeds depth limit " +
                                std::to_string(kMaxSqlQueryDepth) +
                                " (recursive CTEs are not supported)");
  }
  // Register CTEs for the duration of this statement.
  std::vector<std::pair<std::string, const SelectStmt*>> frame;
  for (const CteDef& cte : stmt.ctes) {
    for (const auto& [name, body] : frame) {
      if (name == cte.name) {
        return Err(cte.offset, "duplicate CTE name '" + cte.name + "'");
      }
    }
    frame.emplace_back(cte.name, cte.query.get());
  }
  cte_frames_.push_back(std::move(frame));
  Result<Lowered> out = [&]() -> Result<Lowered> {
    if (!stmt.from) {
      return Err(stmt.offset, "SELECT without FROM is not supported");
    }
    Result<Lowered> rf = LowerFrom(*stmt.from, qdepth);
    if (!rf.ok()) return rf;
    Lowered cur = *std::move(rf);

    bool grouped = !stmt.group_by.empty() || stmt.having != nullptr;
    for (const SelectItem& item : stmt.items) {
      if (item.expr != nullptr && AnyAggCallAst(*item.expr)) grouped = true;
    }

    if (stmt.where) {
      Status s = LowerPredicate(&cur, *stmt.where, nullptr, qdepth);
      if (!s.ok()) return s;
    }

    std::vector<ExprPtr> item_exprs;
    std::vector<std::string> item_names;
    auto item_name = [&](const SelectItem& item, size_t i) {
      if (!item.alias.empty()) return item.alias;
      const SqlExpr* stripped = StripParens(item.expr.get());
      if (stripped->kind == SqlExprKind::kIdent) {
        return stripped->parts.back();
      }
      AggKind k;
      if (stripped->kind == SqlExprKind::kCall &&
          AggKindForName(stripped->text, &k)) {
        return stripped->text;
      }
      return std::string("_c") + std::to_string(i);
    };

    if (grouped) {
      if (stmt.distinct) {
        return Err(stmt.offset,
                   "DISTINCT cannot be combined with GROUP BY/aggregates");
      }
      AggInfo agg;
      agg.input_scope = cur.scope;
      // Keys, in GROUP BY order.
      for (size_t i = 0; i < stmt.group_by.size(); i++) {
        const SqlExpr& g = *stmt.group_by[i];
        ExprCtx key_ctx;
        key_ctx.scope = &agg.input_scope;
        Result<ExprPtr> r = AnalyzeExpr(g, key_ctx, 0);
        if (!r.ok()) return r.status();
        const SqlExpr* stripped = StripParens(&g);
        agg.key_names.push_back(stripped->kind == SqlExprKind::kIdent
                                    ? stripped->parts.back()
                                    : "_g" + std::to_string(i));
        agg.key_canons.push_back(ExprCanonKey(**r));
        agg.key_exprs.push_back(*std::move(r));
      }
      // Discover aggregate calls (SELECT first, then HAVING) so the spec
      // list is frozen before any expression lowers against it.
      for (const SelectItem& item : stmt.items) {
        if (item.expr == nullptr) {
          return Err(item.offset,
                     "SELECT * cannot be combined with GROUP BY/aggregates");
        }
        Status s = CollectAggs(*item.expr, &agg, false);
        if (!s.ok()) return s;
      }
      if (stmt.having) {
        Status s = CollectAggs(*stmt.having, &agg, false);
        if (!s.ok()) return s;
      }
      if (agg.specs.empty() && agg.key_exprs.empty()) {
        return Err(stmt.offset,
                   "HAVING requires GROUP BY keys or aggregates");
      }
      // Post-aggregate scope: keys then aggregates.
      Scope post;
      for (size_t i = 0; i < agg.key_exprs.size(); i++) {
        post.cols.push_back(
            {"", agg.key_names[i], agg.key_exprs[i]->type(), false});
      }
      for (size_t i = 0; i < agg.specs.size(); i++) {
        post.cols.push_back({"", agg.specs[i].name, agg.spec_types[i],
                             false});
      }
      int nk = static_cast<int>(agg.key_exprs.size());
      int ns = static_cast<int>(agg.specs.size());
      // Lower the SELECT list against the post-aggregate scope and let
      // item aliases name the aggregate's output columns.
      for (size_t i = 0; i < stmt.items.size(); i++) {
        const SelectItem& item = stmt.items[i];
        ExprCtx ctx;
        ctx.scope = &post;
        ctx.agg = &agg;
        Result<ExprPtr> r = AnalyzeExpr(*item.expr, ctx, 0);
        if (!r.ok()) return r.status();
        std::string name = item_name(item, i);
        if (auto* col = dynamic_cast<ColumnRefExpr*>(r->get())) {
          if (col->index() < nk) {
            agg.key_names[col->index()] = name;
            post.cols[col->index()].name = name;
          } else if (col->index() < nk + ns) {
            agg.specs[col->index() - nk].name = name;
            post.cols[col->index()].name = name;
          }
        }
        item_exprs.push_back(*std::move(r));
        item_names.push_back(std::move(name));
      }
      cur.plan = plan::Aggregate(cur.plan, agg.key_exprs, agg.key_names,
                                 agg.specs);
      cur.scope = std::move(post);
      if (stmt.having) {
        Status s = LowerPredicate(&cur, *stmt.having, &agg, qdepth);
        if (!s.ok()) return s;
      }
      // Skip the post-projection when the SELECT list is exactly the
      // aggregate's own output (the common hand-built shape).
      bool identity = static_cast<int>(item_exprs.size()) == nk + ns &&
                      cur.scope.width() == nk + ns;
      if (identity) {
        for (size_t i = 0; i < item_exprs.size(); i++) {
          auto* col = dynamic_cast<ColumnRefExpr*>(item_exprs[i].get());
          if (col == nullptr || col->index() != static_cast<int>(i)) {
            identity = false;
            break;
          }
        }
      }
      if (!identity) {
        cur.plan = plan::Project(cur.plan, item_exprs, item_names);
        Scope s;
        for (size_t i = 0; i < item_exprs.size(); i++) {
          s.cols.push_back({"", item_names[i], item_exprs[i]->type(), false});
        }
        cur.scope = std::move(s);
      }
    } else {
      bool star = stmt.items.size() == 1 && stmt.items[0].expr == nullptr;
      for (const SelectItem& item : stmt.items) {
        if (item.expr == nullptr && !star) {
          return Err(item.offset, "'*' must be the only select item");
        }
      }
      if (star) {
        if (cur.scope.has_hidden()) {
          // Subquery joins appended working columns; project them away.
          std::vector<ExprPtr> exprs;
          std::vector<std::string> names;
          Scope s;
          for (int i = 0; i < cur.scope.width(); i++) {
            const ScopeColumn& c = cur.scope.cols[i];
            if (c.hidden) continue;
            exprs.push_back(eb::Col(i, c.type, c.name));
            names.push_back(c.name);
            s.cols.push_back({c.qualifier, c.name, c.type, false});
          }
          cur.plan = plan::Project(cur.plan, std::move(exprs), names);
          cur.scope = std::move(s);
        }
      } else {
        ExprCtx ctx;
        ctx.scope = &cur.scope;
        for (size_t i = 0; i < stmt.items.size(); i++) {
          const SelectItem& item = stmt.items[i];
          Result<ExprPtr> r = AnalyzeExpr(*item.expr, ctx, 0);
          if (!r.ok()) return r.status();
          item_exprs.push_back(*std::move(r));
          item_names.push_back(item_name(item, i));
        }
        cur.plan = plan::Project(cur.plan, item_exprs, item_names);
        Scope s;
        for (size_t i = 0; i < item_exprs.size(); i++) {
          s.cols.push_back({"", item_names[i], item_exprs[i]->type(), false});
        }
        cur.scope = std::move(s);
      }
      if (stmt.distinct) {
        std::vector<ExprPtr> keys;
        std::vector<std::string> names;
        for (int i = 0; i < cur.scope.width(); i++) {
          keys.push_back(eb::Col(i, cur.scope.cols[i].type,
                                 cur.scope.cols[i].name));
          names.push_back(cur.scope.cols[i].name);
        }
        cur.plan = plan::Aggregate(cur.plan, std::move(keys),
                                   std::move(names), {});
      }
    }

    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      ExprCtx ctx;
      ctx.scope = &cur.scope;
      for (const OrderItem& o : stmt.order_by) {
        Result<ExprPtr> r = AnalyzeExpr(*o.expr, ctx, 0);
        if (!r.ok()) return r.status();
        SortKey key;
        key.expr = *std::move(r);
        key.ascending = o.ascending;
        key.nulls_first = o.nulls_first;
        keys.push_back(std::move(key));
      }
      cur.plan = plan::Sort(cur.plan, std::move(keys));
    }
    if (stmt.limit >= 0) {
      cur.plan = plan::Limit(cur.plan, stmt.limit);
    }
    return cur;
  }();
  cte_frames_.pop_back();
  return out;
}

// ---------------------------------------------------------------------------
// DML statements
// ---------------------------------------------------------------------------

Result<Analyzer::DmlTarget> Analyzer::ResolveDmlTarget(
    const std::string& name, int offset, const std::string& alias) {
  const DeltaBinding* binding = catalog_.LookupDelta(name);
  if (binding == nullptr) {
    if (catalog_.Lookup(name) == nullptr) {
      return Err(offset, "unknown table '" + name + "'");
    }
    return Err(offset, "table '" + name +
                           "' is read-only; DML requires a delta-backed "
                           "table (Catalog::RegisterDeltaTable)");
  }
  const plan::PlanPtr* leaf = catalog_.Lookup(name);
  DmlTarget out;
  out.binding = binding;
  out.schema = (*leaf)->output_schema;
  const std::string& qual = alias.empty() ? name : alias;
  for (int i = 0; i < out.schema.num_fields(); i++) {
    out.scope.cols.push_back(
        {qual, out.schema.field(i).name, out.schema.field(i).type, false});
  }
  return out;
}

Result<dml::UpdateAssignment> Analyzer::LowerSetClause(
    const SetClause& clause, const Schema& schema, const ExprCtx& ctx,
    std::vector<bool>* assigned) {
  int idx = schema.FieldIndex(clause.column);
  if (idx < 0) {
    return Err(clause.offset, "unknown column '" + clause.column +
                                  "' in SET");
  }
  if ((*assigned)[idx]) {
    return Err(clause.offset,
               "duplicate assignment to column '" + clause.column + "'");
  }
  (*assigned)[idx] = true;
  Result<ExprPtr> v = AnalyzeExpr(*clause.value, ctx, 0);
  if (!v.ok()) return v.status();
  ExprPtr value = *std::move(v);
  const DataType& col_type = schema.field(idx).type;
  if (value->type() != col_type) value = eb::Cast(std::move(value), col_type);
  return dml::UpdateAssignment{idx, std::move(value)};
}

Result<CompiledStatement> Analyzer::LowerDelete(const DeleteStmt& stmt) {
  Result<DmlTarget> t =
      ResolveDmlTarget(stmt.table_name, stmt.table_offset, "");
  if (!t.ok()) return t.status();
  CompiledStatement out;
  out.kind = StatementKind::kDelete;
  out.table = t->binding->table;
  out.io = t->binding->io;
  if (stmt.where != nullptr) {
    ExprCtx ctx{&t->scope};
    Result<ExprPtr> pred = AnalyzeExpr(*stmt.where, ctx, 0);
    if (!pred.ok()) return pred.status();
    Status s = RequireBoolean(*pred, stmt.where->offset, "WHERE clause");
    if (!s.ok()) return s;
    out.predicate = *std::move(pred);
  }
  return out;
}

Result<CompiledStatement> Analyzer::LowerUpdate(const UpdateStmt& stmt) {
  Result<DmlTarget> t =
      ResolveDmlTarget(stmt.table_name, stmt.table_offset, "");
  if (!t.ok()) return t.status();
  CompiledStatement out;
  out.kind = StatementKind::kUpdate;
  out.table = t->binding->table;
  out.io = t->binding->io;
  ExprCtx ctx{&t->scope};
  std::vector<bool> assigned(t->schema.num_fields(), false);
  for (const SetClause& clause : stmt.set) {
    Result<dml::UpdateAssignment> a =
        LowerSetClause(clause, t->schema, ctx, &assigned);
    if (!a.ok()) return a.status();
    out.assignments.push_back(*std::move(a));
  }
  if (stmt.where != nullptr) {
    Result<ExprPtr> pred = AnalyzeExpr(*stmt.where, ctx, 0);
    if (!pred.ok()) return pred.status();
    Status s = RequireBoolean(*pred, stmt.where->offset, "WHERE clause");
    if (!s.ok()) return s;
    out.predicate = *std::move(pred);
  }
  return out;
}

Result<CompiledStatement> Analyzer::LowerMerge(const MergeStmt& stmt) {
  Result<DmlTarget> t = ResolveDmlTarget(stmt.table_name, stmt.table_offset,
                                         stmt.target_alias);
  if (!t.ok()) return t.status();
  CompiledStatement out;
  out.kind = StatementKind::kMerge;
  out.table = t->binding->table;
  out.io = t->binding->io;
  const int target_width = t->scope.width();

  Result<Lowered> src = LowerFrom(*stmt.source, 0);
  if (!src.ok()) return src.status();
  Lowered source = *std::move(src);
  out.merge.source = source.plan;

  // The combined row the ON condition and matched assignments see:
  // [target columns..., source columns...], same layout the executor's
  // per-file left-outer join produces.
  Scope combined;
  combined.cols = t->scope.cols;
  combined.cols.insert(combined.cols.end(), source.scope.cols.begin(),
                       source.scope.cols.end());
  ExprCtx combined_ctx{&combined};

  std::vector<const SqlExpr*> conjuncts;
  FlattenAndAst(StripParens(stmt.on.get()), &conjuncts);
  for (const SqlExpr* conjunct : conjuncts) {
    Result<ExprPtr> e = AnalyzeExpr(*conjunct, combined_ctx, 0);
    if (!e.ok()) return e.status();
    ExprPtr target_key, source_key;
    if (!AsJoinKeyPair(*e, target_width, &target_key, &source_key)) {
      return Err(conjunct->offset,
                 "MERGE ON must be a conjunction of target.col = source.col "
                 "equalities over integral columns of the same type");
    }
    out.merge.target_keys.push_back(
        static_cast<ColumnRefExpr*>(target_key.get())->index());
    out.merge.source_keys.push_back(
        static_cast<ColumnRefExpr*>(source_key.get())->index());
  }

  if (stmt.when_matched) {
    // Identity per target column, then SET overrides.
    for (int i = 0; i < target_width; i++) {
      out.merge.matched_exprs.push_back(eb::Col(i, t->schema.field(i).type,
                                                t->schema.field(i).name));
    }
    std::vector<bool> assigned(target_width, false);
    for (const SetClause& clause : stmt.matched_set) {
      Result<dml::UpdateAssignment> a =
          LowerSetClause(clause, t->schema, combined_ctx, &assigned);
      if (!a.ok()) return a.status();
      out.merge.matched_exprs[a->column] = std::move(a->value);
    }
  }

  if (stmt.when_not_matched) {
    std::vector<int> columns;
    if (stmt.insert_columns.empty()) {
      for (int i = 0; i < target_width; i++) columns.push_back(i);
    } else {
      std::vector<bool> listed(target_width, false);
      for (const std::string& name : stmt.insert_columns) {
        int idx = t->schema.FieldIndex(name);
        if (idx < 0) {
          return Err(stmt.insert_offset,
                     "unknown column '" + name + "' in INSERT");
        }
        if (listed[idx]) {
          return Err(stmt.insert_offset,
                     "duplicate column '" + name + "' in INSERT");
        }
        listed[idx] = true;
        columns.push_back(idx);
      }
    }
    if (columns.size() != stmt.insert_values.size()) {
      return Err(stmt.insert_offset,
                 "INSERT lists " + std::to_string(columns.size()) +
                     " columns but " +
                     std::to_string(stmt.insert_values.size()) + " values");
    }
    // Insert values see only the source row (the executor evaluates them
    // over the anti-join output, which is the source schema).
    ExprCtx source_ctx{&source.scope};
    out.merge.insert_exprs.assign(static_cast<size_t>(target_width),
                                  nullptr);
    for (size_t k = 0; k < columns.size(); k++) {
      Result<ExprPtr> v = AnalyzeExpr(*stmt.insert_values[k], source_ctx, 0);
      if (!v.ok()) return v.status();
      ExprPtr value = *std::move(v);
      const DataType& col_type = t->schema.field(columns[k]).type;
      if (value->type() != col_type) {
        value = eb::Cast(std::move(value), col_type);
      }
      out.merge.insert_exprs[static_cast<size_t>(columns[k])] =
          std::move(value);
    }
    for (int i = 0; i < target_width; i++) {
      if (out.merge.insert_exprs[static_cast<size_t>(i)] == nullptr) {
        out.merge.insert_exprs[static_cast<size_t>(i)] =
            eb::NullLit(t->schema.field(i).type);
      }
    }
  }
  return out;
}

}  // namespace

Result<plan::PlanPtr> Analyze(const std::string& source,
                              const SelectStmt& stmt,
                              const Catalog& catalog) {
  Analyzer analyzer(source, catalog);
  Result<Lowered> r = analyzer.LowerQuery(stmt, 0);
  if (!r.ok()) return r.status();
  return r->plan;
}

Result<plan::PlanPtr> CompileSql(const std::string& source,
                                 const Catalog& catalog) {
  Result<SelectStmtPtr> stmt = ParseSelect(source);
  if (!stmt.ok()) return stmt.status();
  return Analyze(source, **stmt, catalog);
}

Result<CompiledStatement> CompileStatement(const std::string& source,
                                           const Catalog& catalog) {
  Result<Statement> parsed = ParseStatement(source);
  if (!parsed.ok()) return parsed.status();
  Analyzer analyzer(source, catalog);
  switch (parsed->kind) {
    case StatementKind::kSelect: {
      Result<Lowered> r = analyzer.LowerQuery(*parsed->select, 0);
      if (!r.ok()) return r.status();
      CompiledStatement out;
      out.kind = StatementKind::kSelect;
      out.plan = r->plan;
      return out;
    }
    case StatementKind::kDelete:
      return analyzer.LowerDelete(*parsed->delete_stmt);
    case StatementKind::kUpdate:
      return analyzer.LowerUpdate(*parsed->update_stmt);
    case StatementKind::kMerge:
      return analyzer.LowerMerge(*parsed->merge_stmt);
  }
  return Status::InvalidArgument("internal: unhandled statement kind");
}

}  // namespace sql
}  // namespace photon
