#include "sql/printer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/time_util.h"
#include "expr/agg_function.h"
#include "sql/lexer.h"

namespace photon {
namespace sql {
namespace {

// ---------------------------------------------------------------------------
// Literal and type rendering
// ---------------------------------------------------------------------------

std::string SqlTypeName(const DataType& t) {
  switch (t.id()) {
    case TypeId::kBoolean:
      return "BOOLEAN";
    case TypeId::kInt32:
      return "INT";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kFloat64:
      return "DOUBLE";
    case TypeId::kDate32:
      return "DATE";
    case TypeId::kTimestamp:
      return "TIMESTAMP";
    case TypeId::kString:
      return "STRING";
    case TypeId::kDecimal128:
      return "DECIMAL(" + std::to_string(t.precision()) + "," +
             std::to_string(t.scale()) + ")";
  }
  return "?";
}

std::string QuoteString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

/// Renders `v` (of static type `t`) as a literal that re-lowers to exactly
/// LiteralExpr(v, t). Every type except int32 gets an explicit type prefix;
/// untagged forms would lower to a different type (e.g. a bare integer in
/// int64 range still fits int32 → wrong type) or not parse at all.
std::string LiteralToSql(const Value& v, const DataType& t) {
  if (v.is_null()) return "CAST(NULL AS " + SqlTypeName(t) + ")";
  switch (t.id()) {
    case TypeId::kBoolean:
      return v.boolean() ? "TRUE" : "FALSE";
    case TypeId::kInt32:
      return std::to_string(v.i32());
    case TypeId::kInt64:
      return "BIGINT '" + std::to_string(v.i64()) + "'";
    case TypeId::kFloat64: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.f64());
      return "DOUBLE '" + std::string(buf) + "'";
    }
    case TypeId::kDate32:
      return "DATE '" + FormatDate(v.i32()) + "'";
    case TypeId::kTimestamp:
      return "TIMESTAMP '" + std::to_string(v.i64()) + "'";
    case TypeId::kString:
      return QuoteString(v.str());
    case TypeId::kDecimal128:
      return SqlTypeName(t) + " " + QuoteString(v.ToString(t));
  }
  return "?";
}

const char* CmpOpSql(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpSql(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Expression → SQL with precedence-driven parenthesization
// ---------------------------------------------------------------------------

// Binding powers, mirroring the parser: OR=1, AND=2, NOT=3, predicates
// (comparison, BETWEEN, IN, LIKE, IS NULL)=4, +|-=5, *|/|%=6, primary=7.
constexpr int kOr = 1;
constexpr int kAnd = 2;
constexpr int kPred = 4;
constexpr int kAdd = 5;
constexpr int kMul = 6;
constexpr int kPrimary = 7;

/// Renders `e` and wraps it in parentheses when its own precedence is
/// below `min_level` (the binding power the surrounding context requires).
/// Right operands of left-associative binary operators render at
/// level + 1, so right-nested same-precedence trees keep their explicit
/// parentheses and the round trip reproduces the tree shape exactly.
std::string Render(const Expr& e, const std::vector<std::string>& names,
                   int min_level);

std::string RenderAt(int level, std::string text, int min_level) {
  if (level < min_level) return "(" + std::move(text) + ")";
  return text;
}

std::string Render(const Expr& e, const std::vector<std::string>& names,
                   int min_level) {
  if (auto* col = dynamic_cast<const ColumnRefExpr*>(&e)) {
    PHOTON_CHECK(col->index() >= 0 &&
                 col->index() < static_cast<int>(names.size()));
    return names[col->index()];
  }
  if (auto* lit = dynamic_cast<const LiteralExpr*>(&e)) {
    std::string text = LiteralToSql(lit->value(), lit->type());
    // A negative int32 renders as unary minus applied to a positive
    // literal; the analyzer folds that back into one literal. Every other
    // form is a primary.
    bool negative = !text.empty() && text[0] == '-';
    return RenderAt(negative ? kPred : kPrimary, std::move(text),
                    min_level);
  }
  if (auto* arith = dynamic_cast<const ArithmeticExpr*>(&e)) {
    std::vector<ExprPtr> kids = arith->children();
    int level =
        (arith->op() == ArithOp::kAdd || arith->op() == ArithOp::kSub)
            ? kAdd
            : kMul;
    std::string text = Render(*kids[0], names, level) + " " +
                       ArithOpSql(arith->op()) + " " +
                       Render(*kids[1], names, level + 1);
    return RenderAt(level, std::move(text), min_level);
  }
  if (auto* cmp = dynamic_cast<const ComparisonExpr*>(&e)) {
    std::vector<ExprPtr> kids = cmp->children();
    std::string text = Render(*kids[0], names, kPred + 1) + " " +
                       CmpOpSql(cmp->op()) + " " +
                       Render(*kids[1], names, kPred + 1);
    return RenderAt(kPred, std::move(text), min_level);
  }
  if (auto* between = dynamic_cast<const BetweenExpr*>(&e)) {
    std::vector<ExprPtr> kids = between->children();
    std::string text = Render(*kids[0], names, kPred + 1) + " BETWEEN " +
                       Render(*kids[1], names, kPred + 1) + " AND " +
                       Render(*kids[2], names, kPred + 1);
    return RenderAt(kPred, std::move(text), min_level);
  }
  if (auto* boolean = dynamic_cast<const BooleanExpr*>(&e)) {
    std::vector<ExprPtr> kids = boolean->children();
    int level = boolean->op() == BoolOp::kAnd ? kAnd : kOr;
    const char* op = boolean->op() == BoolOp::kAnd ? " AND " : " OR ";
    std::string text = Render(*kids[0], names, level) + op +
                       Render(*kids[1], names, level + 1);
    return RenderAt(level, std::move(text), min_level);
  }
  if (dynamic_cast<const NotExpr*>(&e) != nullptr) {
    // Always parenthesize the operand: NOT binds between AND and the
    // predicates, and the parentheses keep the round trip exact.
    std::string text =
        "NOT (" + Render(*e.children()[0], names, kOr) + ")";
    return RenderAt(3, std::move(text), min_level);
  }
  if (auto* is_null = dynamic_cast<const IsNullExpr*>(&e)) {
    std::string text = Render(*e.children()[0], names, kPred + 1) +
                       (is_null->negated() ? " IS NOT NULL" : " IS NULL");
    return RenderAt(kPred, std::move(text), min_level);
  }
  if (dynamic_cast<const CastExpr*>(&e) != nullptr) {
    return "CAST(" + Render(*e.children()[0], names, kOr) + " AS " +
           SqlTypeName(e.type()) + ")";
  }
  if (auto* cw = dynamic_cast<const CaseWhenExpr*>(&e)) {
    std::string text = "CASE";
    for (const auto& b : cw->branches()) {
      text += " WHEN " + Render(*b.first, names, kOr) + " THEN " +
              Render(*b.second, names, kOr);
    }
    if (cw->else_expr()) {
      text += " ELSE " + Render(*cw->else_expr(), names, kOr);
    }
    text += " END";
    return text;
  }
  if (auto* in = dynamic_cast<const InListExpr*>(&e)) {
    std::string text = Render(*e.children()[0], names, kPred + 1) + " IN (";
    const DataType& vt = e.children()[0]->type();
    for (size_t i = 0; i < in->list().size(); i++) {
      if (i > 0) text += ", ";
      text += LiteralToSql(in->list()[i], vt);
    }
    text += ")";
    return RenderAt(kPred, std::move(text), min_level);
  }
  if (auto* call = dynamic_cast<const CallExpr*>(&e)) {
    if (call->name() == "like" && call->args().size() == 2) {
      auto* pattern = dynamic_cast<const LiteralExpr*>(call->args()[1].get());
      if (pattern != nullptr && pattern->type().is_string() &&
          !pattern->value().is_null()) {
        std::string text = Render(*call->args()[0], names, kPred + 1) +
                           " LIKE " + QuoteString(pattern->value().str());
        return RenderAt(kPred, std::move(text), min_level);
      }
    }
    std::string text = call->name() + "(";
    for (size_t i = 0; i < call->args().size(); i++) {
      if (i > 0) text += ", ";
      text += Render(*call->args()[i], names, kOr);
    }
    text += ")";
    return text;
  }
  PHOTON_CHECK(false);  // unreachable: all Expr subclasses handled
  return "";
}

std::string AggCallSql(const AggregateSpec& spec,
                       const std::vector<std::string>& names) {
  if (spec.kind == AggKind::kCountStar) return "count(*)";
  return std::string(AggKindName(spec.kind)) + "(" +
         Render(*spec.arg, names, kOr) + ")";
}

bool IsPlainIdent(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return !IsReservedWord(s);
}

/// Equal-literal equality conjuncts (the `1 = 1` constant-key device) are
/// semantic no-ops; both the printer and the fingerprint drop them.
bool IsTrivialLiteralPair(const Expr& probe, const Expr& build) {
  auto* a = dynamic_cast<const LiteralExpr*>(&probe);
  auto* b = dynamic_cast<const LiteralExpr*>(&build);
  return a != nullptr && b != nullptr && a->type() == b->type() &&
         a->value() == b->value();
}

// ---------------------------------------------------------------------------
// Plan → SQL
// ---------------------------------------------------------------------------

class PlanPrinter {
 public:
  explicit PlanPrinter(const Catalog& catalog) : catalog_(catalog) {}

  Result<std::string> Print(const plan::PlanNode& node) {
    switch (node.kind) {
      case plan::PlanKind::kScan:
      case plan::PlanKind::kDeltaScan: {
        // A bare leaf at this position only occurs at the top level (or
        // under Sort/Limit); elsewhere it is embedded by ChildRef.
        std::vector<std::string> names;
        Result<std::string> ref = ChildRef(node, "c", &names);
        if (!ref.ok()) return ref;
        return "SELECT * FROM " + *ref;
      }
      case plan::PlanKind::kFilter: {
        std::vector<std::string> names;
        Result<std::string> ref = ChildRef(*node.children[0], "c", &names);
        if (!ref.ok()) return ref;
        return "SELECT * FROM " + *ref + " WHERE " +
               Render(*node.predicate, names, kOr);
      }
      case plan::PlanKind::kProject: {
        std::vector<std::string> names;
        Result<std::string> ref = ChildRef(*node.children[0], "c", &names);
        if (!ref.ok()) return ref;
        std::string out = "SELECT ";
        for (size_t i = 0; i < node.exprs.size(); i++) {
          if (i > 0) out += ", ";
          out += Render(*node.exprs[i], names, kOr) + " AS " +
                 OutputName(node.names[i], i);
        }
        return out + " FROM " + *ref;
      }
      case plan::PlanKind::kAggregate:
        return PrintAggregate(node);
      case plan::PlanKind::kJoin:
        return PrintJoin(node);
      case plan::PlanKind::kSort:
        return PrintSort(node, /*limit=*/-1);
      case plan::PlanKind::kLimit: {
        const plan::PlanNode& child = *node.children[0];
        if (child.kind == plan::PlanKind::kSort) {
          return PrintSort(child, node.limit);
        }
        std::vector<std::string> names;
        Result<std::string> ref = ChildRef(child, "c", &names);
        if (!ref.ok()) return ref;
        return "SELECT * FROM " + *ref + " LIMIT " +
               std::to_string(node.limit);
      }
    }
    return Status::InvalidArgument("unknown plan kind");
  }

 private:
  /// Renders `child` as a FROM-clause table reference with a fresh alias
  /// and positional column aliases `<prefix>0..`, which become the names
  /// the surrounding SELECT uses in its expressions.
  Result<std::string> ChildRef(const plan::PlanNode& child,
                               const std::string& prefix,
                               std::vector<std::string>* names) {
    std::string alias = "t" + std::to_string(next_alias_++);
    int width = child.output_schema.num_fields();
    names->clear();
    for (int i = 0; i < width; i++) {
      names->push_back(prefix + std::to_string(i));
    }
    std::string cols = " (";
    for (int i = 0; i < width; i++) {
      if (i > 0) cols += ", ";
      cols += (*names)[i];
    }
    cols += ")";
    if (child.kind == plan::PlanKind::kScan ||
        child.kind == plan::PlanKind::kDeltaScan) {
      std::string table = catalog_.NameOf(&child);
      if (table.empty()) {
        return Status::InvalidArgument(
            "PlanToSql: leaf plan node is not registered in the catalog");
      }
      return table + " AS " + alias + cols;
    }
    Result<std::string> sub = Print(child);
    if (!sub.ok()) return sub;
    return "(" + *sub + ") AS " + alias + cols;
  }

  Result<std::string> PrintAggregate(const plan::PlanNode& node) {
    std::vector<std::string> names;
    Result<std::string> ref = ChildRef(*node.children[0], "c", &names);
    if (!ref.ok()) return ref;
    std::string out = "SELECT ";
    std::vector<std::string> key_sql;
    for (size_t i = 0; i < node.group_keys.size(); i++) {
      key_sql.push_back(Render(*node.group_keys[i], names, kOr));
      if (i > 0) out += ", ";
      out += key_sql.back() + " AS " + OutputName(node.key_names[i], i);
    }
    for (size_t i = 0; i < node.aggregates.size(); i++) {
      if (i > 0 || !node.group_keys.empty()) out += ", ";
      out += AggCallSql(node.aggregates[i], names) + " AS " +
             OutputName(node.aggregates[i].name,
                        node.group_keys.size() + i);
    }
    out += " FROM " + *ref;
    if (!key_sql.empty()) {
      out += " GROUP BY ";
      for (size_t i = 0; i < key_sql.size(); i++) {
        if (i > 0) out += ", ";
        out += key_sql[i];
      }
    }
    return out;
  }

  Result<std::string> PrintJoin(const plan::PlanNode& node) {
    const plan::PlanNode& left = *node.children[0];
    const plan::PlanNode& right = *node.children[1];
    std::vector<std::string> left_names, right_names;
    Result<std::string> lref = ChildRef(left, "c", &left_names);
    if (!lref.ok()) return lref;
    Result<std::string> rref = ChildRef(right, "d", &right_names);
    if (!rref.ok()) return rref;
    std::vector<std::string> combined = left_names;
    combined.insert(combined.end(), right_names.begin(), right_names.end());

    std::vector<std::string> conds;
    for (size_t i = 0; i < node.left_keys.size(); i++) {
      if (IsTrivialLiteralPair(*node.left_keys[i], *node.right_keys[i])) {
        continue;
      }
      conds.push_back(Render(*node.left_keys[i], left_names, kPred + 1) +
                      " = " +
                      Render(*node.right_keys[i], right_names, kPred + 1));
    }
    if (node.residual != nullptr) {
      // Split the left-associative AND spine; the analyzer refolds the
      // conjunct list in order, reproducing the tree.
      std::vector<const Expr*> stack;
      std::vector<const Expr*> conjuncts;
      const Expr* cur = node.residual.get();
      while (true) {
        auto* b = dynamic_cast<const BooleanExpr*>(cur);
        if (b != nullptr && b->op() == BoolOp::kAnd) {
          stack.push_back(b->children()[1].get());
          cur = b->children()[0].get();
          continue;
        }
        conjuncts.push_back(cur);
        while (!stack.empty()) {
          conjuncts.push_back(stack.back());
          stack.pop_back();
        }
        break;
      }
      for (const Expr* c : conjuncts) {
        conds.push_back(Render(*c, combined, kAnd + 1));
      }
    }

    const char* kind = nullptr;
    switch (node.join_type) {
      case JoinType::kInner:
        kind = "INNER JOIN";
        break;
      case JoinType::kLeftOuter:
        kind = "LEFT OUTER JOIN";
        break;
      case JoinType::kLeftSemi:
        kind = "LEFT SEMI JOIN";
        break;
      case JoinType::kLeftAnti:
        kind = "LEFT ANTI JOIN";
        break;
    }
    std::string on;
    if (conds.empty()) {
      on = "1 = 1";  // constant-key join; fingerprints drop it either way
    } else {
      for (size_t i = 0; i < conds.size(); i++) {
        if (i > 0) on += " AND ";
        on += conds[i];
      }
    }
    return "SELECT * FROM " + *lref + " " + kind + " " + *rref + " ON " + on;
  }

  Result<std::string> PrintSort(const plan::PlanNode& node, int64_t limit) {
    std::vector<std::string> names;
    Result<std::string> ref = ChildRef(*node.children[0], "c", &names);
    if (!ref.ok()) return ref;
    std::string out = "SELECT * FROM " + *ref + " ORDER BY ";
    for (size_t i = 0; i < node.sort_keys.size(); i++) {
      const SortKey& k = node.sort_keys[i];
      if (i > 0) out += ", ";
      out += Render(*k.expr, names, kOr);
      out += k.ascending ? " ASC" : " DESC";
      out += k.nulls_first ? " NULLS FIRST" : " NULLS LAST";
    }
    if (limit >= 0) out += " LIMIT " + std::to_string(limit);
    return out;
  }

  std::string OutputName(const std::string& name, size_t position) {
    // Output names never affect round-trip fingerprints (they are
    // positional); fall back to a synthetic alias when the stored name
    // would not lex as an identifier.
    if (IsPlainIdent(name)) return name;
    return "_c" + std::to_string(position);
  }

  const Catalog& catalog_;
  int next_alias_ = 0;
};

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

/// Canonical form of an expression; column references shift by
/// `col_offset` so build-side join keys canonicalize in the combined
/// [left, right] index space.
std::string CanonExpr(const Expr& e, int col_offset) {
  if (auto* col = dynamic_cast<const ColumnRefExpr*>(&e)) {
    return "c" + std::to_string(col->index() + col_offset);
  }
  if (auto* lit = dynamic_cast<const LiteralExpr*>(&e)) {
    return "lit[" + e.type().ToString() + ":" +
           LiteralToSql(lit->value(), e.type()) + "]";
  }
  auto join_children = [&](const std::string& head) {
    std::string out = head + "(";
    std::vector<ExprPtr> kids = e.children();
    for (size_t i = 0; i < kids.size(); i++) {
      if (i > 0) out += ",";
      out += CanonExpr(*kids[i], col_offset);
    }
    return out + ")";
  };
  if (auto* arith = dynamic_cast<const ArithmeticExpr*>(&e)) {
    return join_children("arith" +
                         std::to_string(static_cast<int>(arith->op())) +
                         "@" + e.type().ToString());
  }
  if (auto* cmp = dynamic_cast<const ComparisonExpr*>(&e)) {
    return join_children("cmp" +
                         std::to_string(static_cast<int>(cmp->op())));
  }
  if (dynamic_cast<const BetweenExpr*>(&e) != nullptr) {
    return join_children("between");
  }
  if (auto* boolean = dynamic_cast<const BooleanExpr*>(&e)) {
    return join_children(boolean->op() == BoolOp::kAnd ? "and" : "or");
  }
  if (dynamic_cast<const NotExpr*>(&e) != nullptr) {
    return join_children("not");
  }
  if (auto* is_null = dynamic_cast<const IsNullExpr*>(&e)) {
    return join_children(is_null->negated() ? "isnotnull" : "isnull");
  }
  if (dynamic_cast<const CastExpr*>(&e) != nullptr) {
    return join_children("cast@" + e.type().ToString());
  }
  if (auto* cw = dynamic_cast<const CaseWhenExpr*>(&e)) {
    std::string out = "case@" + e.type().ToString() + "(";
    for (const auto& b : cw->branches()) {
      out += CanonExpr(*b.first, col_offset) + "->" +
             CanonExpr(*b.second, col_offset) + ";";
    }
    out += cw->else_expr() ? CanonExpr(*cw->else_expr(), col_offset) : "-";
    return out + ")";
  }
  if (auto* in = dynamic_cast<const InListExpr*>(&e)) {
    std::string out = "in(" + CanonExpr(*e.children()[0], col_offset);
    const DataType& vt = e.children()[0]->type();
    for (const Value& v : in->list()) out += "," + LiteralToSql(v, vt);
    return out + ")";
  }
  if (auto* call = dynamic_cast<const CallExpr*>(&e)) {
    return join_children("call:" + call->name());
  }
  PHOTON_CHECK(false);
  return "";
}

/// The join condition as an order- and orientation-insensitive conjunct
/// set: key pairs and residual equality conjuncts are interchangeable
/// lowerings of the same ON clause, so both normalize to the same strings.
std::string JoinConditionCanon(const plan::PlanNode& node) {
  int left_width = node.children[0]->output_schema.num_fields();
  std::vector<std::string> conjuncts;
  auto add_eq = [&](const std::string& a, const std::string& b) {
    conjuncts.push_back("cmp0(" + std::min(a, b) + "," + std::max(a, b) +
                        ")");
  };
  for (size_t i = 0; i < node.left_keys.size(); i++) {
    if (IsTrivialLiteralPair(*node.left_keys[i], *node.right_keys[i])) {
      continue;
    }
    add_eq(CanonExpr(*node.left_keys[i], 0),
           CanonExpr(*node.right_keys[i], left_width));
  }
  if (node.residual != nullptr) {
    std::vector<const Expr*> stack;
    const Expr* cur = node.residual.get();
    while (true) {
      auto* b = dynamic_cast<const BooleanExpr*>(cur);
      if (b != nullptr && b->op() == BoolOp::kAnd) {
        stack.push_back(b->children()[1].get());
        cur = b->children()[0].get();
        continue;
      }
      auto* cmp = dynamic_cast<const ComparisonExpr*>(cur);
      if (cmp != nullptr && cmp->op() == CmpOp::kEq) {
        std::vector<ExprPtr> kids = cmp->children();
        if (IsTrivialLiteralPair(*kids[0], *kids[1])) {
          // dropped, same as a trivial key pair
        } else {
          add_eq(CanonExpr(*kids[0], 0), CanonExpr(*kids[1], 0));
        }
      } else {
        conjuncts.push_back(CanonExpr(*cur, 0));
      }
      if (stack.empty()) break;
      cur = stack.back();
      stack.pop_back();
    }
  }
  std::sort(conjuncts.begin(), conjuncts.end());
  std::string out;
  for (const std::string& c : conjuncts) out += c + "&";
  return out;
}

std::string Fingerprint(const plan::PlanNode& node) {
  char buf[32];
  switch (node.kind) {
    case plan::PlanKind::kScan:
      std::snprintf(buf, sizeof(buf), "scan@%p",
                    static_cast<const void*>(node.table));
      return buf;
    case plan::PlanKind::kDeltaScan:
      // Node identity: mode-7 round trips re-use the original leaf node
      // through the catalog, so pointer equality is exactly "same scan".
      std::snprintf(buf, sizeof(buf), "delta@%p",
                    static_cast<const void*>(&node));
      return buf;
    case plan::PlanKind::kFilter:
      return "filter(" + Fingerprint(*node.children[0]) + ";" +
             CanonExpr(*node.predicate, 0) + ")";
    case plan::PlanKind::kProject: {
      std::string out = "project(" + Fingerprint(*node.children[0]) + ";";
      for (const auto& e : node.exprs) out += CanonExpr(*e, 0) + ",";
      return out + ")";
    }
    case plan::PlanKind::kAggregate: {
      std::string out = "agg(" + Fingerprint(*node.children[0]) + ";keys=";
      for (const auto& k : node.group_keys) out += CanonExpr(*k, 0) + ",";
      out += ";aggs=";
      for (const auto& a : node.aggregates) {
        out += std::to_string(static_cast<int>(a.kind)) + ":";
        out += a.arg ? CanonExpr(*a.arg, 0) : "*";
        out += ",";
      }
      return out + ")";
    }
    case plan::PlanKind::kJoin:
      return "join" + std::to_string(static_cast<int>(node.join_type)) +
             "(" + JoinConditionCanon(node) + ";" +
             Fingerprint(*node.children[0]) + ";" +
             Fingerprint(*node.children[1]) + ")";
    case plan::PlanKind::kSort: {
      std::string out = "sort(" + Fingerprint(*node.children[0]) + ";";
      for (const SortKey& k : node.sort_keys) {
        out += CanonExpr(*k.expr, 0) + (k.ascending ? "a" : "d") +
               (k.nulls_first ? "f" : "l") + ",";
      }
      return out + ")";
    }
    case plan::PlanKind::kLimit:
      return "limit(" + Fingerprint(*node.children[0]) + ";" +
             std::to_string(node.limit) + ")";
  }
  return "?";
}

}  // namespace

Result<std::string> PlanToSql(const plan::PlanPtr& plan,
                              const Catalog& catalog) {
  PHOTON_CHECK(plan != nullptr);
  PlanPrinter printer(catalog);
  return printer.Print(*plan);
}

std::string ExprToSql(const Expr& expr,
                      const std::vector<std::string>& col_names) {
  return Render(expr, col_names, kOr);
}

std::string PlanFingerprint(const plan::PlanPtr& plan) {
  PHOTON_CHECK(plan != nullptr);
  return Fingerprint(*plan);
}

}  // namespace sql
}  // namespace photon
