#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace photon {
namespace sql {
namespace {

/// Reserved words. Function names (sum, upper, ...) are deliberately NOT
/// reserved — they lex as identifiers and the parser recognizes calls by
/// the following '('. Type names are reserved so typed literals
/// (DATE '...', DECIMAL(12,2) '...') parse unambiguously.
const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",     "WHERE",  "GROUP",   "BY",     "HAVING",
      "ORDER",  "LIMIT",    "AS",     "AND",     "OR",     "NOT",
      "IN",     "EXISTS",   "BETWEEN", "LIKE",   "IS",     "NULL",
      "CASE",   "WHEN",     "THEN",   "ELSE",    "END",    "CAST",
      "JOIN",   "INNER",    "LEFT",   "RIGHT",   "FULL",   "OUTER",
      "CROSS",  "SEMI",     "ANTI",   "ON",      "WITH",   "ASC",
      "DESC",   "NULLS",    "FIRST",  "LAST",    "DISTINCT", "ALL",
      "TRUE",   "FALSE",    "UNION",  "EXCEPT",  "INTERSECT",
      // DML + time travel.
      "DELETE", "UPDATE",   "SET",    "MERGE",   "INTO",   "USING",
      "MATCHED", "INSERT",  "VALUES", "VERSION", "OF",
      // Type names.
      "INT",    "INTEGER",  "BIGINT", "DOUBLE",  "BOOLEAN", "DATE",
      "TIMESTAMP", "VARCHAR", "STRING", "DECIMAL",
  };
  return kKeywords;
}

std::string ToUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd:
      return "end of input";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kKeyword:
      return "keyword";
    case TokenKind::kIntLit:
      return "integer literal";
    case TokenKind::kDecimalLit:
      return "decimal literal";
    case TokenKind::kFloatLit:
      return "float literal";
    case TokenKind::kStringLit:
      return "string literal";
    case TokenKind::kSymbol:
      return "symbol";
  }
  return "token";
}

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kKeyword && text == kw;
}

bool Token::IsSymbol(const char* sym) const {
  return kind == TokenKind::kSymbol && text == sym;
}

LineColumn OffsetToLineColumn(const std::string& source, int offset) {
  LineColumn lc;
  int limit = std::min<int>(offset, static_cast<int>(source.size()));
  for (int i = 0; i < limit; i++) {
    if (source[i] == '\n') {
      lc.line++;
      lc.column = 1;
    } else {
      lc.column++;
    }
  }
  return lc;
}

std::string ErrorAt(const std::string& source, int offset,
                    const std::string& msg) {
  LineColumn lc = OffsetToLineColumn(source, offset);
  return "line " + std::to_string(lc.line) + " column " +
         std::to_string(lc.column) + ": " + msg;
}

bool IsReservedWord(const std::string& word) {
  return Keywords().count(ToUpper(word)) > 0;
}

Result<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> tokens;
  const int n = static_cast<int>(source.size());
  int i = 0;
  while (i < n) {
    char c = source[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      i++;
      continue;
    }
    // '--' line comment.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') i++;
      continue;
    }
    Token tok;
    tok.offset = i;
    // Identifier or keyword.
    if (IsIdentStart(c)) {
      int start = i;
      while (i < n && IsIdentChar(source[i])) i++;
      std::string word = source.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        tok.kind = TokenKind::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.kind = TokenKind::kIdent;
        tok.text = std::move(word);
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    // Numeric literal: [0-9]+ ('.' [0-9]*)? ([eE] [+-]? [0-9]+)?
    // A leading '.' (".5") is not accepted — write "0.5".
    if (IsDigit(c)) {
      int start = i;
      while (i < n && IsDigit(source[i])) i++;
      bool has_frac = false;
      if (i < n && source[i] == '.' &&
          (i + 1 >= n || !(source[i + 1] == '.'))) {
        has_frac = true;
        i++;
        while (i < n && IsDigit(source[i])) i++;
      }
      bool has_exp = false;
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        int save = i;
        int j = i + 1;
        if (j < n && (source[j] == '+' || source[j] == '-')) j++;
        if (j < n && IsDigit(source[j])) {
          has_exp = true;
          i = j;
          while (i < n && IsDigit(source[i])) i++;
        } else {
          i = save;  // '1e' followed by non-digit: not an exponent
        }
      }
      tok.text = source.substr(start, i - start);
      tok.kind = has_exp ? TokenKind::kFloatLit
                 : has_frac ? TokenKind::kDecimalLit
                            : TokenKind::kIntLit;
      tokens.push_back(std::move(tok));
      continue;
    }
    // String literal with '' escaping.
    if (c == '\'') {
      i++;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\'') {
          if (i + 1 < n && source[i + 1] == '\'') {
            value.push_back('\'');
            i += 2;
            continue;
          }
          i++;
          closed = true;
          break;
        }
        value.push_back(source[i]);
        i++;
      }
      if (!closed) {
        return Status::InvalidArgument(
            ErrorAt(source, tok.offset, "unterminated string literal"));
      }
      tok.kind = TokenKind::kStringLit;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = [&](const char* op) {
      return i + 1 < n && source[i] == op[0] && source[i + 1] == op[1];
    };
    if (two("<>") || two("!=") || two("<=") || two(">=") || two("||")) {
      tok.kind = TokenKind::kSymbol;
      tok.text = source.substr(i, 2);
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::string("()+-*/%,.;=<>").find(c) != std::string::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      i++;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument(ErrorAt(
        source, i, std::string("unexpected character '") + c + "'"));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace sql
}  // namespace photon
