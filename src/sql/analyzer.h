#ifndef PHOTON_SQL_ANALYZER_H_
#define PHOTON_SQL_ANALYZER_H_

#include <string>

#include "common/result.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace photon {
namespace sql {

/// Types and lowers a parsed SELECT into a plan::LogicalPlan (DESIGN.md
/// §13.3). Name resolution runs against `catalog`; implicit casts are
/// inserted with exactly the coercion rules of the eb:: builders, so a
/// query lowered here is indistinguishable from a hand-built plan. All
/// errors are InvalidArgument with "line L column C:" attribution into
/// `source` (the text `stmt` was parsed from).
Result<plan::PlanPtr> Analyze(const std::string& source,
                              const SelectStmt& stmt, const Catalog& catalog);

/// Parse + Analyze in one step.
Result<plan::PlanPtr> CompileSql(const std::string& source,
                                 const Catalog& catalog);

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_ANALYZER_H_
