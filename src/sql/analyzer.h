#ifndef PHOTON_SQL_ANALYZER_H_
#define PHOTON_SQL_ANALYZER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "exec/dml.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "sql/catalog.h"

namespace photon {
namespace sql {

/// Types and lowers a parsed SELECT into a plan::LogicalPlan (DESIGN.md
/// §13.3). Name resolution runs against `catalog`; implicit casts are
/// inserted with exactly the coercion rules of the eb:: builders, so a
/// query lowered here is indistinguishable from a hand-built plan. All
/// errors are InvalidArgument with "line L column C:" attribution into
/// `source` (the text `stmt` was parsed from).
Result<plan::PlanPtr> Analyze(const std::string& source,
                              const SelectStmt& stmt, const Catalog& catalog);

/// Parse + Analyze in one step.
Result<plan::PlanPtr> CompileSql(const std::string& source,
                                 const Catalog& catalog);

/// One compiled top-level statement: exactly the members matching `kind`
/// are set. SELECT compiles to `plan` (as CompileSql); DML compiles to the
/// typed specs the executors in exec/dml.h take, against the live
/// DeltaTable from the catalog's delta binding — so the caller runs it as
/// ExecuteDelete/ExecuteUpdate/ExecuteMerge under whatever driver,
/// ExecContext and DmlOptions it chooses.
struct CompiledStatement {
  StatementKind kind = StatementKind::kSelect;
  /// kSelect: the lowered query plan.
  plan::PlanPtr plan;
  /// DML target (kDelete / kUpdate / kMerge).
  DeltaTable* table = nullptr;
  io::IoOptions io;
  /// kDelete / kUpdate: typed WHERE predicate over the table's schema;
  /// null = every row.
  ExprPtr predicate;
  /// kUpdate: SET assignments, values cast to the column types.
  std::vector<dml::UpdateAssignment> assignments;
  /// kMerge.
  dml::MergeSpec merge;
};

/// Parses and types one top-level statement (SELECT / DELETE / UPDATE /
/// MERGE). DML statements require the table name to carry a delta binding
/// (Catalog::RegisterDeltaTable); read-only registrations are rejected
/// with a located error.
Result<CompiledStatement> CompileStatement(const std::string& source,
                                           const Catalog& catalog);

}  // namespace sql
}  // namespace photon

#endif  // PHOTON_SQL_ANALYZER_H_
