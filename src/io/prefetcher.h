#ifndef PHOTON_IO_PREFETCHER_H_
#define PHOTON_IO_PREFETCHER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/thread_pool.h"
#include "io/caching_store.h"

namespace photon {
namespace io {

/// Async read-ahead scheduler: overlaps object-store IO with compute the
/// way Photon's scans overlap NVMe/S3 reads with decoding (§2). While the
/// scan decodes object k, the prefetcher keeps up to `depth` of the next
/// objects in flight on the executor thread pool (depth 2 = classic
/// double buffering); their bytes land in the shared BlockCache via the
/// CachingStore, so Fetch() of a prefetched key is a cache hit.
///
/// Cancellation: Cancel() (also run from the destructor and the scan
/// operator's Close) prevents queued tasks from issuing new reads and
/// drains in-flight ones, so a LIMIT that stops a scan early does not leak
/// background IO into the pool.
///
/// Thread-safe; one instance per scan, sharing a pool/cache with others.
class Prefetcher {
 public:
  struct Options {
    int depth = 2;
  };

  struct Stats {
    int64_t issued = 0;        // read-ahead tasks submitted
    int64_t skipped = 0;       // tasks that saw cancellation and bailed
    int64_t waits = 0;         // Fetch() calls that blocked on a read-ahead
    int64_t wait_ns = 0;       // total time Fetch() spent blocked
  };

  Prefetcher(CachingStore* store, ThreadPool* pool);
  Prefetcher(CachingStore* store, ThreadPool* pool, Options options);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Keeps keys[cursor..] flowing: issues read-aheads until `depth` are in
  /// flight. Call just before (or while) processing keys[cursor - 1].
  void ScheduleAhead(const std::vector<std::string>& keys, size_t cursor);

  /// The consumer-side read: waits for an in-flight read-ahead of `key`
  /// (accounting the stall as prefetch wait), then serves it through the
  /// caching store — a cache hit when the prefetch landed, a synchronous
  /// load otherwise.
  Result<std::shared_ptr<const std::string>> Fetch(const std::string& key);

  /// Stops issuing, drains in-flight tasks, forgets pending keys.
  void Cancel();

  Stats stats() const;

 private:
  CachingStore* store_;
  ThreadPool* pool_;
  Options options_;

  std::atomic<bool> cancelled_{false};
  std::mutex mu_;
  std::unordered_map<std::string, std::future<void>> inflight_;

  std::atomic<int64_t> issued_{0};
  std::atomic<int64_t> skipped_{0};
  std::atomic<int64_t> waits_{0};
  std::atomic<int64_t> wait_ns_{0};
};

}  // namespace io
}  // namespace photon

#endif  // PHOTON_IO_PREFETCHER_H_
