#include "io/prefetcher.h"

#include <chrono>
#include <utility>

#include "common/macros.h"
#include "obs/trace.h"

namespace photon {
namespace io {
namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Prefetcher::Prefetcher(CachingStore* store, ThreadPool* pool)
    : Prefetcher(store, pool, Options()) {}

Prefetcher::Prefetcher(CachingStore* store, ThreadPool* pool, Options options)
    : store_(store), pool_(pool), options_(options) {
  PHOTON_CHECK(store_ != nullptr);
  PHOTON_CHECK(pool_ != nullptr);
  PHOTON_CHECK(options_.depth > 0);
}

Prefetcher::~Prefetcher() { Cancel(); }

void Prefetcher::ScheduleAhead(const std::vector<std::string>& keys,
                               size_t cursor) {
  if (cancelled_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = cursor;
       i < keys.size() &&
       inflight_.size() < static_cast<size_t>(options_.depth);
       i++) {
    const std::string& key = keys[i];
    if (inflight_.count(key) > 0) continue;
    issued_.fetch_add(1, std::memory_order_relaxed);
    inflight_[key] = pool_->Submit([this, key] {
      if (cancelled_.load(std::memory_order_acquire)) {
        skipped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Result intentionally dropped: the payload lands in the BlockCache
      // (or the single-flight table) for the consumer; a failure here will
      // surface — with retries — when the consumer Fetches the key.
      store_->Get(key);
    });
  }
}

Result<std::shared_ptr<const std::string>> Prefetcher::Fetch(
    const std::string& key) {
  std::future<void> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      pending = std::move(it->second);
      inflight_.erase(it);
    }
  }
  if (pending.valid()) {
    int64_t t0 = NowNs();
    pending.wait();
    int64_t waited = NowNs() - t0;
    waits_.fetch_add(1, std::memory_order_relaxed);
    wait_ns_.fetch_add(waited, std::memory_order_relaxed);
    obs::Tracer::Record("io.prefetch_wait", -1, t0, waited);
  }
  return store_->Get(key);
}

void Prefetcher::Cancel() {
  cancelled_.store(true, std::memory_order_release);
  std::unordered_map<std::string, std::future<void>> drain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    drain.swap(inflight_);
  }
  // Queued-but-unstarted tasks see cancelled_ and bail; running ones are
  // drained so no task outlives this object.
  for (auto& [key, fut] : drain) fut.wait();
}

Prefetcher::Stats Prefetcher::stats() const {
  Stats s;
  s.issued = issued_.load(std::memory_order_relaxed);
  s.skipped = skipped_.load(std::memory_order_relaxed);
  s.waits = waits_.load(std::memory_order_relaxed);
  s.wait_ns = wait_ns_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace io
}  // namespace photon
