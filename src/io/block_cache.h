#ifndef PHOTON_IO_BLOCK_CACHE_H_
#define PHOTON_IO_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "io/single_flight.h"
#include "memory/memory_manager.h"

namespace photon {
namespace io {

/// Block id meaning "the whole object" (as opposed to one row group /
/// byte range of it).
inline constexpr int32_t kWholeObject = -1;

/// Sharded, thread-safe LRU cache over immutable byte blocks, standing in
/// for Photon's NVMe SSD cache of hot Lakehouse data (§2 of the paper:
/// "data ... is cached transparently on local NVMe SSDs"). Entries are
/// keyed by (object key, block id) where the block id is a row-group
/// index or kWholeObject; values are shared immutable byte strings, so a
/// reader holding a block survives its eviction.
///
/// Memory accounting: the cache is a MemoryConsumer. Every cached byte is
/// reserved through the (optional) MemoryManager, so cache pressure and
/// query pressure compete in the same unified pool as §5.3's operators —
/// when a join or sort needs memory, the manager may ask the cache to
/// Spill(), which evicts cold blocks and returns their reservation.
/// Without a manager the cache still enforces its own capacity.
///
/// Eviction is LRU per shard (capacity split evenly across shards, like
/// a striped NVMe cache). Pinned entries are never evicted.
class BlockCache : public MemoryConsumer {
 public:
  struct Options {
    int64_t capacity_bytes = 64LL * 1024 * 1024;
    int num_shards = 8;
    /// Optional unified memory manager to charge cached bytes against.
    MemoryManager* memory_manager = nullptr;
  };

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;
    int64_t bytes_cached = 0;
    int64_t bytes_evicted = 0;
    /// Inserts dropped because memory could not be reserved (or the block
    /// is larger than a whole shard).
    int64_t rejected = 0;
  };

  BlockCache();
  explicit BlockCache(Options options);
  ~BlockCache() override;

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the block and marks it most-recently-used; nullptr on miss.
  std::shared_ptr<const std::string> Lookup(const std::string& key,
                                            int32_t block = kWholeObject);

  /// Inserts (or refreshes) a block. May evict LRU entries to make room;
  /// silently declines when memory cannot be reserved — callers must not
  /// rely on a subsequent Lookup hitting.
  void Insert(const std::string& key, int32_t block,
              std::shared_ptr<const std::string> data);

  /// Pins an entry so eviction skips it (e.g. the row group being decoded).
  /// Returns false when the entry is not cached. Pins nest.
  bool Pin(const std::string& key, int32_t block = kWholeObject);
  void Unpin(const std::string& key, int32_t block = kWholeObject);

  /// Drops one entry / all entries, returning reserved memory.
  void Erase(const std::string& key, int32_t block = kWholeObject);
  void Clear();

  /// MemoryConsumer: evicts cold blocks until `requested` bytes are freed
  /// (or only pinned entries remain). Called by the MemoryManager when
  /// other consumers need memory.
  int64_t Spill(int64_t requested) override;

  Stats stats() const;
  int64_t capacity_bytes() const { return options_.capacity_bytes; }

  /// Entries currently pinned (pin_count > 0), across all shards. A
  /// leak-check hook: after every session touching this cache has
  /// finished — successfully or cancelled — this must be zero.
  int64_t pinned_entries() const;

  /// Shared load-deduplication table: every CachingStore reading through
  /// this cache coalesces concurrent misses on the same key to one load.
  SingleFlight* flights() { return &flights_; }

 private:
  struct Entry {
    std::string map_key;
    std::shared_ptr<const std::string> data;
    int64_t charge = 0;
    int pin_count = 0;
  };
  struct Shard {
    std::mutex mu;
    /// front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    int64_t bytes = 0;
  };

  static std::string MapKey(const std::string& key, int32_t block);
  Shard& ShardFor(const std::string& map_key);
  /// Evicts LRU unpinned entries from `shard` until its size is at most
  /// `target_bytes`; returns bytes freed. Caller must hold shard.mu.
  int64_t EvictLocked(Shard* shard, int64_t target_bytes);

  Options options_;
  SingleFlight flights_;
  int64_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  std::optional<ScopedConsumerRegistration> registration_;

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> bytes_cached_{0};
  std::atomic<int64_t> bytes_evicted_{0};
  std::atomic<int64_t> rejected_{0};
};

}  // namespace io
}  // namespace photon

#endif  // PHOTON_IO_BLOCK_CACHE_H_
