#include "io/caching_store.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/macros.h"

namespace photon {
namespace io {

CachingStore::CachingStore(ObjectStore* store, IoOptions options)
    : store_(store), options_(options) {
  PHOTON_CHECK(store_ != nullptr);
}

Result<std::string> CachingStore::GetWithRetry(const std::string& key) {
  Result<std::string> r = store_->Get(key);
  int64_t backoff_us = options_.retry_backoff_us;
  for (int attempt = 0;
       !r.ok() && r.status().code() == StatusCode::kIoError &&
       attempt < options_.max_retries;
       attempt++) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    backoff_us = std::min(backoff_us * 2, options_.max_backoff_us);
    r = store_->Get(key);
  }
  // Non-IoError statuses (e.g. KeyError: object genuinely absent) are not
  // retried — backoff cannot conjure a missing object.
  return r;
}

Result<std::shared_ptr<const std::string>> CachingStore::Get(
    const std::string& key, int32_t block) {
  BlockCache* cache = options_.cache;
  if (cache != nullptr) {
    if (std::shared_ptr<const std::string> hit = cache->Lookup(key, block)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      bytes_from_cache_.fetch_add(static_cast<int64_t>(hit->size()),
                                  std::memory_order_relaxed);
      return hit;
    }
  }

  // Single-flight: one loader per key, late arrivals wait on its Flight.
  // The table is shared cache-wide so loads coalesce across operators.
  SingleFlight* flights =
      cache != nullptr ? cache->flights() : &local_flights_;
  std::string flight_key = key + '\0' + std::to_string(block);
  bool leader = false;
  std::shared_ptr<Flight> flight = flights->Join(flight_key, &leader);
  if (!leader) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    SingleFlight::Wait(flight);
    if (!flight->status.ok()) return flight->status;
    bytes_from_cache_.fetch_add(static_cast<int64_t>(flight->data->size()),
                                std::memory_order_relaxed);
    return flight->data;
  }

  // Double-check the cache: a previous leader may have finished (and
  // retired its flight) between our Lookup miss and Join.
  if (cache != nullptr) {
    if (std::shared_ptr<const std::string> hit = cache->Lookup(key, block)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      bytes_from_cache_.fetch_add(static_cast<int64_t>(hit->size()),
                                  std::memory_order_relaxed);
      flights->Finish(flight_key, flight, Status::OK(), hit);
      return hit;
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  Result<std::string> loaded = GetWithRetry(key);

  std::shared_ptr<const std::string> data;
  if (loaded.ok()) {
    data = std::make_shared<const std::string>(std::move(*loaded));
    bytes_from_store_.fetch_add(static_cast<int64_t>(data->size()),
                                std::memory_order_relaxed);
    if (cache != nullptr) cache->Insert(key, block, data);
  }
  flights->Finish(flight_key, flight, loaded.status(), data);
  if (!loaded.ok()) return loaded.status();
  return data;
}

CachingStore::Stats CachingStore::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.bytes_from_cache = bytes_from_cache_.load(std::memory_order_relaxed);
  s.bytes_from_store = bytes_from_store_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace io
}  // namespace photon
