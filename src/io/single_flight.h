#ifndef PHOTON_IO_SINGLE_FLIGHT_H_
#define PHOTON_IO_SINGLE_FLIGHT_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace photon {
namespace io {

/// One in-flight load, shared between the loading thread and any waiters.
struct Flight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status;
  std::shared_ptr<const std::string> data;
};

/// Deduplicates concurrent loads of the same key ("single flight"): the
/// first caller becomes the leader and performs the load; later callers
/// wait on the leader's Flight. A BlockCache owns one of these so every
/// CachingStore sharing the cache — scan tasks, prefetch threads, log
/// replay — coalesces to one object-store GET per key.
class SingleFlight {
 public:
  /// Joins (or starts) the flight for `key`. Sets *leader when the caller
  /// must perform the load and later call Finish().
  std::shared_ptr<Flight> Join(const std::string& key, bool* leader) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
      *leader = false;
      return it->second;
    }
    auto flight = std::make_shared<Flight>();
    flights_[key] = flight;
    *leader = true;
    return flight;
  }

  /// Leader-only: publishes the result, wakes waiters, retires the flight.
  void Finish(const std::string& key, const std::shared_ptr<Flight>& flight,
              Status status, std::shared_ptr<const std::string> data) {
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->done = true;
      flight->status = std::move(status);
      flight->data = std::move(data);
    }
    flight->cv.notify_all();
    std::lock_guard<std::mutex> lock(mu_);
    flights_.erase(key);
  }

  /// Waiter-side: blocks until the leader finishes.
  static void Wait(const std::shared_ptr<Flight>& flight) {
    std::unique_lock<std::mutex> lock(flight->mu);
    flight->cv.wait(lock, [&] { return flight->done; });
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_;
};

}  // namespace io
}  // namespace photon

#endif  // PHOTON_IO_SINGLE_FLIGHT_H_
