#include "io/block_cache.h"

#include <algorithm>

#include "common/hash.h"
#include "common/macros.h"
#include "obs/trace.h"

namespace photon {
namespace io {
namespace {

/// Fixed bookkeeping overhead charged per entry on top of the payload
/// (map node, list node, key string).
constexpr int64_t kEntryOverhead = 64;

}  // namespace

BlockCache::BlockCache() : BlockCache(Options()) {}

BlockCache::BlockCache(Options options)
    : MemoryConsumer("io.BlockCache"), options_(options) {
  // Spill() (eviction) is internally thread-safe, so the cache stays a
  // valid spill victim for any task group's reservation.
  set_spill_safe(true);
  PHOTON_CHECK(options_.num_shards > 0);
  shard_capacity_ =
      std::max<int64_t>(1, options_.capacity_bytes / options_.num_shards);
  shards_ = std::make_unique<Shard[]>(options_.num_shards);
  if (options_.memory_manager != nullptr) {
    registration_.emplace(options_.memory_manager, this);
  }
}

BlockCache::~BlockCache() {
  Clear();
  // registration_ (if any) releases the (now zero) reservation and
  // unregisters on destruction.
}

std::string BlockCache::MapKey(const std::string& key, int32_t block) {
  std::string out = key;
  out.push_back('\0');
  out.append(std::to_string(block));
  return out;
}

BlockCache::Shard& BlockCache::ShardFor(const std::string& map_key) {
  uint64_t h = HashBytes(map_key.data(), map_key.size());
  return shards_[h % static_cast<uint64_t>(options_.num_shards)];
}

std::shared_ptr<const std::string> BlockCache::Lookup(const std::string& key,
                                                      int32_t block) {
  std::string mk = MapKey(key, block);
  Shard& shard = ShardFor(mk);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(mk);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->data;
}

int64_t BlockCache::EvictLocked(Shard* shard, int64_t target_bytes) {
  int64_t freed = 0;
  auto it = shard->lru.end();
  while (shard->bytes > target_bytes && it != shard->lru.begin()) {
    --it;
    if (it->pin_count > 0) continue;  // never evict pinned blocks
    freed += it->charge;
    shard->bytes -= it->charge;
    bytes_cached_.fetch_sub(it->charge, std::memory_order_relaxed);
    bytes_evicted_.fetch_add(it->charge, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    shard->index.erase(it->map_key);
    it = shard->lru.erase(it);
  }
  return freed;
}

void BlockCache::Insert(const std::string& key, int32_t block,
                        std::shared_ptr<const std::string> data) {
  PHOTON_CHECK(data != nullptr);
  std::string mk = MapKey(key, block);
  int64_t charge =
      static_cast<int64_t>(data->size() + mk.size()) + kEntryOverhead;
  if (charge > shard_capacity_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Shard& shard = ShardFor(mk);

  // Phase 1: make room inside the shard. The shard lock must not be held
  // while talking to the MemoryManager — a Reserve() below may recursively
  // Spill() this very cache, which takes shard locks.
  int64_t freed;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.count(mk) > 0) return;  // already cached (raced insert)
    freed = EvictLocked(&shard, shard_capacity_ - charge);
  }
  if (options_.memory_manager != nullptr) {
    if (freed > 0) options_.memory_manager->Release(this, freed);
    if (!options_.memory_manager->Reserve(this, charge).ok()) {
      // The unified pool is exhausted even after spilling: queries win,
      // the block stays uncached.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }

  // Phase 2: publish. A concurrent insert of the same key may have won the
  // race; return the reservation instead of double-charging.
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.index.count(mk) == 0) {
      shard.lru.push_front(Entry{mk, std::move(data), charge, 0});
      shard.index[mk] = shard.lru.begin();
      shard.bytes += charge;
      bytes_cached_.fetch_add(charge, std::memory_order_relaxed);
      inserts_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (options_.memory_manager != nullptr) {
    options_.memory_manager->Release(this, charge);
  }
}

bool BlockCache::Pin(const std::string& key, int32_t block) {
  std::string mk = MapKey(key, block);
  Shard& shard = ShardFor(mk);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(mk);
  if (it == shard.index.end()) return false;
  it->second->pin_count++;
  return true;
}

int64_t BlockCache::pinned_entries() const {
  int64_t pinned = 0;
  for (int s = 0; s < options_.num_shards; s++) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    for (const Entry& e : shards_[s].lru) {
      if (e.pin_count > 0) pinned++;
    }
  }
  return pinned;
}

void BlockCache::Unpin(const std::string& key, int32_t block) {
  std::string mk = MapKey(key, block);
  Shard& shard = ShardFor(mk);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(mk);
  if (it == shard.index.end()) return;
  PHOTON_CHECK(it->second->pin_count > 0);
  it->second->pin_count--;
}

void BlockCache::Erase(const std::string& key, int32_t block) {
  std::string mk = MapKey(key, block);
  Shard& shard = ShardFor(mk);
  int64_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(mk);
    if (it == shard.index.end()) return;
    freed = it->second->charge;
    shard.bytes -= freed;
    bytes_cached_.fetch_sub(freed, std::memory_order_relaxed);
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  if (options_.memory_manager != nullptr) {
    options_.memory_manager->Release(this, freed);
  }
}

void BlockCache::Clear() {
  int64_t freed = 0;
  for (int s = 0; s < options_.num_shards; s++) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    freed += shard.bytes;
    bytes_cached_.fetch_sub(shard.bytes, std::memory_order_relaxed);
    shard.bytes = 0;
    shard.lru.clear();
    shard.index.clear();
  }
  if (options_.memory_manager != nullptr && freed > 0) {
    options_.memory_manager->Release(this, freed);
  }
}

int64_t BlockCache::Spill(int64_t requested) {
  // Called by the MemoryManager (with its lock dropped) on behalf of some
  // memory-hungry consumer: shed cold blocks, coldest shards' tails first.
  obs::TraceSpan span("cache.spill", requested);
  int64_t freed = 0;
  for (int s = 0; s < options_.num_shards && freed < requested; s++) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    freed += EvictLocked(&shard,
                         std::max<int64_t>(0, shard.bytes -
                                                  (requested - freed)));
  }
  if (options_.memory_manager != nullptr && freed > 0) {
    options_.memory_manager->Release(this, freed);
  }
  return freed;
}

BlockCache::Stats BlockCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bytes_cached = bytes_cached_.load(std::memory_order_relaxed);
  s.bytes_evicted = bytes_evicted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace io
}  // namespace photon
