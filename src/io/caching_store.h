#ifndef PHOTON_IO_CACHING_STORE_H_
#define PHOTON_IO_CACHING_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "io/block_cache.h"
#include "io/single_flight.h"
#include "storage/object_store.h"

namespace photon {

class ThreadPool;

namespace io {

/// Knobs for the scan IO path, threaded from operators down to the cache
/// and prefetcher. All pointers are borrowed and may be null (null cache =
/// read-through; null pool = synchronous reads).
struct IoOptions {
  BlockCache* cache = nullptr;
  ThreadPool* prefetch_pool = nullptr;
  /// Max blocks in flight ahead of the consumer (double-buffering = 2).
  int prefetch_depth = 2;
  /// Transient-failure retries against the object store, with capped
  /// exponential backoff starting at retry_backoff_us.
  int max_retries = 3;
  int64_t retry_backoff_us = 100;
  int64_t max_backoff_us = 5000;
};

/// Read-through cache facade over an ObjectStore: Get() first consults the
/// BlockCache, then falls back to the store, retrying transient IO errors
/// with capped exponential backoff and populating the cache on success.
///
/// Concurrent misses on the same key are single-flighted: one loader hits
/// the store, the rest wait on its result, so N tasks warming the same
/// file issue one simulated S3 GET (and no double-insert races). The
/// flight table lives in the BlockCache when one is attached, so the
/// dedup spans every CachingStore sharing that cache.
///
/// Thread-safe; shared freely between scan tasks and prefetch threads.
class CachingStore {
 public:
  struct Stats {
    int64_t hits = 0;            // served from BlockCache
    int64_t misses = 0;          // loaded from the store
    int64_t coalesced = 0;       // waited on another task's in-flight load
    int64_t retries = 0;         // store Gets re-issued after IoError
    int64_t bytes_from_cache = 0;
    int64_t bytes_from_store = 0;
  };

  CachingStore(ObjectStore* store, IoOptions options = {});

  /// Fetches a whole object (block = kWholeObject) or one named block.
  Result<std::shared_ptr<const std::string>> Get(const std::string& key,
                                                 int32_t block = kWholeObject);

  ObjectStore* store() const { return store_; }
  BlockCache* cache() const { return options_.cache; }
  const IoOptions& options() const { return options_; }
  Stats stats() const;

 private:
  Result<std::string> GetWithRetry(const std::string& key);

  ObjectStore* store_;
  IoOptions options_;
  /// Used when no cache (and hence no shared flight table) is attached.
  SingleFlight local_flights_;

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  mutable std::atomic<int64_t> coalesced_{0};
  mutable std::atomic<int64_t> retries_{0};
  mutable std::atomic<int64_t> bytes_from_cache_{0};
  mutable std::atomic<int64_t> bytes_from_store_{0};
};

}  // namespace io
}  // namespace photon

#endif  // PHOTON_IO_CACHING_STORE_H_
