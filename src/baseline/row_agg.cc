#include "baseline/row_agg.h"

#include <algorithm>

#include "types/big_decimal.h"

namespace photon {
namespace baseline {
namespace {

class CountState : public RowAggState {
 public:
  explicit CountState(bool count_star) : count_star_(count_star) {}
  Status Update(const Value& arg) override {
    if (count_star_ || !arg.is_null()) count_++;
    return Status::OK();
  }
  Result<Value> Finalize() const override { return Value::Int64(count_); }

 private:
  bool count_star_;
  int64_t count_ = 0;
};

class SumIntState : public RowAggState {
 public:
  Status Update(const Value& arg) override {
    if (arg.is_null()) return Status::OK();
    sum_ += arg.i64();
    seen_++;
    return Status::OK();
  }
  Result<Value> Finalize() const override {
    if (seen_ == 0) return Value::Null();
    return Value::Int64(sum_);
  }

 protected:
  int64_t sum_ = 0;
  int64_t seen_ = 0;
};

class SumInt32State : public SumIntState {
 public:
  Status Update(const Value& arg) override {
    if (arg.is_null()) return Status::OK();
    sum_ += arg.i32();
    seen_++;
    return Status::OK();
  }
};

class SumDoubleState : public RowAggState {
 public:
  explicit SumDoubleState(bool is_avg) : is_avg_(is_avg) {}
  Status Update(const Value& arg) override {
    if (arg.is_null()) return Status::OK();
    sum_ += arg.f64();
    count_++;
    return Status::OK();
  }
  Result<Value> Finalize() const override {
    if (count_ == 0) return Value::Null();
    return Value::Float64(is_avg_ ? sum_ / static_cast<double>(count_)
                                  : sum_);
  }

 private:
  bool is_avg_;
  double sum_ = 0;
  int64_t count_ = 0;
};

/// avg over integer inputs accumulates in double, exactly like Photon's
/// SumAgg<intN, double> — order of addition is row order in both engines.
class AvgIntState : public RowAggState {
 public:
  explicit AvgIntState(bool arg_is_32) : arg_is_32_(arg_is_32) {}
  Status Update(const Value& arg) override {
    if (arg.is_null()) return Status::OK();
    sum_ += arg_is_32_ ? arg.i32() : static_cast<double>(arg.i64());
    count_++;
    return Status::OK();
  }
  Result<Value> Finalize() const override {
    if (count_ == 0) return Value::Null();
    return Value::Float64(sum_ / static_cast<double>(count_));
  }

 private:
  bool arg_is_32_;
  double sum_ = 0;
  int64_t count_ = 0;
};

/// sum/avg over decimals: goes through arbitrary-precision BigDecimal, the
/// java.math.BigDecimal stand-in — this is the cost the paper's Q1
/// attributes its 23x speedup to (§6.2).
class SumDecimalState : public RowAggState {
 public:
  SumDecimalState(int arg_scale, DataType result, bool is_avg)
      : arg_scale_(arg_scale), result_(result), is_avg_(is_avg) {}

  Status Update(const Value& arg) override {
    if (arg.is_null()) return Status::OK();
    sum_ = sum_.Add(BigDecimal::FromDecimal128(arg.decimal(), arg_scale_));
    count_++;
    return Status::OK();
  }

  Result<Value> Finalize() const override {
    if (count_ == 0) return Value::Null();
    BigDecimal result = sum_;
    if (is_avg_) {
      result = sum_.Divide(BigDecimal::FromInt64(count_, 0),
                           result_.scale());
    }
    Decimal128 out;
    if (!result.ToDecimal128(result_.scale(), &out)) return Value::Null();
    return Value::Decimal(out);
  }

 private:
  int arg_scale_;
  DataType result_;
  bool is_avg_;
  BigDecimal sum_;
  int64_t count_ = 0;
};

class MinMaxState : public RowAggState {
 public:
  explicit MinMaxState(bool is_min) : is_min_(is_min) {}
  Status Update(const Value& arg) override {
    if (arg.is_null()) return Status::OK();
    if (!has_value_ || (is_min_ ? arg.Compare(best_) < 0
                                : arg.Compare(best_) > 0)) {
      best_ = arg;
      has_value_ = true;
    }
    return Status::OK();
  }
  Result<Value> Finalize() const override {
    return has_value_ ? best_ : Value::Null();
  }

 private:
  bool is_min_;
  bool has_value_ = false;
  Value best_;
};

/// collect_list with a per-group std::vector<std::string> — the "Scala
/// collections" shape from §6.1's Figure 5 discussion.
class CollectListState : public RowAggState {
 public:
  Status Update(const Value& arg) override {
    if (!arg.is_null()) items_.push_back(arg.str());
    return Status::OK();
  }
  Result<Value> Finalize() const override {
    std::string out = "[";
    for (size_t i = 0; i < items_.size(); i++) {
      if (i > 0) out += ", ";
      out += items_[i];
    }
    out += "]";
    return Value::String(std::move(out));
  }

 private:
  std::vector<std::string> items_;
};

std::unique_ptr<RowAggState> MakeState(const AggregateSpec& spec) {
  DataType arg_type =
      spec.arg != nullptr ? spec.arg->type() : DataType::Int64();
  switch (spec.kind) {
    case AggKind::kCountStar:
      return std::make_unique<CountState>(true);
    case AggKind::kCount:
      return std::make_unique<CountState>(false);
    case AggKind::kSum:
      switch (arg_type.id()) {
        case TypeId::kInt32:
          return std::make_unique<SumInt32State>();
        case TypeId::kInt64:
          return std::make_unique<SumIntState>();
        case TypeId::kFloat64:
          return std::make_unique<SumDoubleState>(false);
        case TypeId::kDecimal128: {
          Result<DataType> result = AggResultType(spec.kind, arg_type);
          PHOTON_CHECK(result.ok());
          return std::make_unique<SumDecimalState>(arg_type.scale(), *result,
                                                   false);
        }
        default:
          PHOTON_CHECK(false);
      }
      break;
    case AggKind::kAvg:
      switch (arg_type.id()) {
        case TypeId::kInt32:
          return std::make_unique<AvgIntState>(true);
        case TypeId::kInt64:
          return std::make_unique<AvgIntState>(false);
        case TypeId::kFloat64:
          return std::make_unique<SumDoubleState>(true);
        case TypeId::kDecimal128: {
          Result<DataType> result = AggResultType(spec.kind, arg_type);
          PHOTON_CHECK(result.ok());
          return std::make_unique<SumDecimalState>(arg_type.scale(), *result,
                                                   true);
        }
        default:
          PHOTON_CHECK(false);
      }
      break;
    case AggKind::kMin:
      return std::make_unique<MinMaxState>(true);
    case AggKind::kMax:
      return std::make_unique<MinMaxState>(false);
    case AggKind::kCollectList:
      return std::make_unique<CollectListState>();
  }
  return nullptr;
}

Schema MakeAggSchema(const std::vector<ExprPtr>& keys,
                     const std::vector<std::string>& key_names,
                     const std::vector<AggregateSpec>& specs) {
  Schema schema;
  for (size_t i = 0; i < keys.size(); i++) {
    schema.AddField(Field(key_names[i], keys[i]->type()));
  }
  for (const AggregateSpec& spec : specs) {
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->type() : DataType::Int64();
    Result<DataType> result = AggResultType(spec.kind, arg_type);
    PHOTON_CHECK(result.ok());
    schema.AddField(Field(spec.name, *result));
  }
  return schema;
}

}  // namespace

RowHashAggregateOperator::RowHashAggregateOperator(
    RowOperatorPtr child, std::vector<ExprPtr> keys,
    std::vector<std::string> key_names, std::vector<AggregateSpec> specs)
    : RowOperator(MakeAggSchema(keys, key_names, specs)),
      child_(std::move(child)),
      keys_(std::move(keys)),
      specs_(std::move(specs)) {
  scalar_mode_ = keys_.empty();
}

RowHashAggregateOperator::Group RowHashAggregateOperator::MakeGroup() const {
  Group g;
  g.reserve(specs_.size());
  for (const AggregateSpec& spec : specs_) g.push_back(MakeState(spec));
  return g;
}

Status RowHashAggregateOperator::Open() {
  PHOTON_RETURN_NOT_OK(child_->Open());
  groups_.clear();
  scalar_group_.clear();
  if (scalar_mode_) scalar_group_ = MakeGroup();
  consumed_ = false;
  scalar_emitted_ = false;
  return Status::OK();
}

Status RowHashAggregateOperator::ConsumeInput() {
  Row row;
  while (true) {
    PHOTON_ASSIGN_OR_RETURN(bool ok, child_->Next(&row));
    if (!ok) break;
    Group* group;
    if (scalar_mode_) {
      group = &scalar_group_;
    } else {
      RowKey key;
      key.values.reserve(keys_.size());
      for (const ExprPtr& k : keys_) {
        PHOTON_ASSIGN_OR_RETURN(Value v, k->EvaluateRow(row));
        key.values.push_back(std::move(v));
      }
      auto [it, inserted] = groups_.try_emplace(std::move(key));
      if (inserted) it->second = MakeGroup();
      group = &it->second;
    }
    for (size_t j = 0; j < specs_.size(); j++) {
      Value arg;
      if (specs_[j].arg != nullptr) {
        PHOTON_ASSIGN_OR_RETURN(arg, specs_[j].arg->EvaluateRow(row));
      }
      PHOTON_RETURN_NOT_OK((*group)[j]->Update(arg));
    }
  }
  consumed_ = true;
  emit_it_ = groups_.begin();
  return Status::OK();
}

Result<bool> RowHashAggregateOperator::NextImpl(Row* row) {
  if (!consumed_) {
    PHOTON_RETURN_NOT_OK(ConsumeInput());
  }
  if (scalar_mode_) {
    if (scalar_emitted_) return false;
    scalar_emitted_ = true;
    row->clear();
    for (const auto& state : scalar_group_) {
      PHOTON_ASSIGN_OR_RETURN(Value v, state->Finalize());
      row->push_back(std::move(v));
    }
    return true;
  }
  if (emit_it_ == groups_.end()) return false;
  row->clear();
  for (const Value& key : emit_it_->first.values) row->push_back(key);
  for (const auto& state : emit_it_->second) {
    PHOTON_ASSIGN_OR_RETURN(Value v, state->Finalize());
    row->push_back(std::move(v));
  }
  ++emit_it_;
  return true;
}

}  // namespace baseline
}  // namespace photon
