#include "baseline/row_shuffle.h"

#include "common/hash.h"
#include "storage/object_store.h"

namespace photon {
namespace baseline {

void SerializeRow(const Row& row, const Schema& schema, BinaryWriter* out) {
  for (int c = 0; c < schema.num_fields(); c++) {
    const Value& v = row[c];
    if (v.is_null()) {
      out->WriteU8(1);
      continue;
    }
    out->WriteU8(0);
    switch (schema.field(c).type.id()) {
      case TypeId::kBoolean:
        out->WriteU8(v.boolean() ? 1 : 0);
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        out->WriteI32(v.i32());
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        out->WriteI64(v.i64());
        break;
      case TypeId::kFloat64:
        out->WriteF64(v.f64());
        break;
      case TypeId::kDecimal128: {
        uint128_t u = static_cast<uint128_t>(v.decimal().value());
        out->WriteU64(static_cast<uint64_t>(u));
        out->WriteU64(static_cast<uint64_t>(u >> 64));
        break;
      }
      case TypeId::kString:
        out->WriteString(v.str());
        break;
    }
  }
}

Status DeserializeRow(BinaryReader* in, const Schema& schema, Row* row) {
  row->clear();
  for (int c = 0; c < schema.num_fields(); c++) {
    uint8_t is_null = 0;
    PHOTON_RETURN_NOT_OK(in->ReadU8(&is_null));
    if (is_null) {
      row->push_back(Value::Null());
      continue;
    }
    switch (schema.field(c).type.id()) {
      case TypeId::kBoolean: {
        uint8_t b = 0;
        PHOTON_RETURN_NOT_OK(in->ReadU8(&b));
        row->push_back(Value::Boolean(b != 0));
        break;
      }
      case TypeId::kInt32: {
        int32_t v = 0;
        PHOTON_RETURN_NOT_OK(in->ReadI32(&v));
        row->push_back(Value::Int32(v));
        break;
      }
      case TypeId::kDate32: {
        int32_t v = 0;
        PHOTON_RETURN_NOT_OK(in->ReadI32(&v));
        row->push_back(Value::Date32(v));
        break;
      }
      case TypeId::kInt64: {
        int64_t v = 0;
        PHOTON_RETURN_NOT_OK(in->ReadI64(&v));
        row->push_back(Value::Int64(v));
        break;
      }
      case TypeId::kTimestamp: {
        int64_t v = 0;
        PHOTON_RETURN_NOT_OK(in->ReadI64(&v));
        row->push_back(Value::Timestamp(v));
        break;
      }
      case TypeId::kFloat64: {
        double v = 0;
        PHOTON_RETURN_NOT_OK(in->ReadF64(&v));
        row->push_back(Value::Float64(v));
        break;
      }
      case TypeId::kDecimal128: {
        uint64_t lo = 0, hi = 0;
        PHOTON_RETURN_NOT_OK(in->ReadU64(&lo));
        PHOTON_RETURN_NOT_OK(in->ReadU64(&hi));
        row->push_back(Value::Decimal(Decimal128(
            static_cast<int128_t>((static_cast<uint128_t>(hi) << 64) | lo))));
        break;
      }
      case TypeId::kString: {
        std::string s;
        PHOTON_RETURN_NOT_OK(in->ReadString(&s));
        row->push_back(Value::String(std::move(s)));
        break;
      }
    }
  }
  return Status::OK();
}

RowShuffleWriteOperator::RowShuffleWriteOperator(
    RowOperatorPtr child, std::vector<ExprPtr> partition_keys,
    std::string shuffle_id, int num_partitions, Codec codec)
    : RowOperator(child->output_schema()),
      child_(std::move(child)),
      partition_keys_(std::move(partition_keys)),
      shuffle_id_(std::move(shuffle_id)),
      num_partitions_(num_partitions),
      codec_(codec) {
  PHOTON_CHECK(num_partitions_ > 0);
}

Status RowShuffleWriteOperator::Open() {
  PHOTON_RETURN_NOT_OK(child_->Open());
  staging_.clear();
  staging_.resize(num_partitions_);
  staging_rows_.assign(num_partitions_, 0);
  block_seq_.assign(num_partitions_, 0);
  done_ = false;
  return Status::OK();
}

Status RowShuffleWriteOperator::FlushPartition(int p) {
  if (staging_rows_[p] == 0) return Status::OK();
  BinaryWriter framed;
  framed.WriteVarU64(static_cast<uint64_t>(staging_rows_[p]));
  framed.Append(staging_[p].data().data(), staging_[p].size());
  std::string compressed = Compress(
      std::string_view(reinterpret_cast<const char*>(framed.data().data()),
                       framed.size()),
      codec_);
  std::string key = "rowshuffle/" + shuffle_id_ + "/p" + std::to_string(p) +
                    "/blk" + std::to_string(block_seq_[p]++);
  bytes_written_ += static_cast<int64_t>(compressed.size());
  PHOTON_RETURN_NOT_OK(ObjectStore::Default().Put(key, std::move(compressed)));
  staging_[p] = BinaryWriter();
  staging_rows_[p] = 0;
  return Status::OK();
}

Result<bool> RowShuffleWriteOperator::NextImpl(Row* /*row*/) {
  if (done_) return false;
  Row row;
  while (true) {
    PHOTON_ASSIGN_OR_RETURN(bool ok, child_->Next(&row));
    if (!ok) break;
    uint64_t h = 0x517CC1B727220A95ULL;
    for (const ExprPtr& k : partition_keys_) {
      PHOTON_ASSIGN_OR_RETURN(Value v, k->EvaluateRow(row));
      h = HashCombine(h, v.HashCode());
    }
    int p = static_cast<int>(h % static_cast<uint64_t>(num_partitions_));
    SerializeRow(row, schema_, &staging_[p]);
    staging_rows_[p]++;
    if (staging_rows_[p] >= 2048) {
      PHOTON_RETURN_NOT_OK(FlushPartition(p));
    }
  }
  for (int p = 0; p < num_partitions_; p++) {
    PHOTON_RETURN_NOT_OK(FlushPartition(p));
  }
  done_ = true;
  return false;
}

RowShuffleReadOperator::RowShuffleReadOperator(Schema schema,
                                               std::string shuffle_id,
                                               int partition)
    : RowOperator(std::move(schema)),
      shuffle_id_(std::move(shuffle_id)),
      partition_(partition) {}

Status RowShuffleReadOperator::Open() {
  std::string prefix = "rowshuffle/" + shuffle_id_ + "/";
  if (partition_ >= 0) prefix += "p" + std::to_string(partition_) + "/";
  block_keys_ = ObjectStore::Default().List(prefix);
  next_block_ = 0;
  reader_.reset();
  return Status::OK();
}

Result<bool> RowShuffleReadOperator::NextImpl(Row* row) {
  while (true) {
    if (reader_ != nullptr && reader_->remaining() > 0) {
      PHOTON_RETURN_NOT_OK(DeserializeRow(reader_.get(), schema_, row));
      return true;
    }
    if (next_block_ >= block_keys_.size()) return false;
    PHOTON_ASSIGN_OR_RETURN(
        std::string frame,
        ObjectStore::Default().Get(block_keys_[next_block_++]));
    PHOTON_ASSIGN_OR_RETURN(current_block_, Decompress(frame));
    reader_ = std::make_unique<BinaryReader>(current_block_);
    uint64_t row_count = 0;
    PHOTON_RETURN_NOT_OK(reader_->ReadVarU64(&row_count));
  }
}

}  // namespace baseline
}  // namespace photon
