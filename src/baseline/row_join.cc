#include "baseline/row_join.h"

#include <algorithm>

namespace photon {
namespace baseline {
namespace {

/// Total order over key rows; NULLs sort first and are remembered so join
/// logic can reject NULL matches.
int CompareKeyRows(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size(); i++) {
    bool an = a[i].is_null(), bn = b[i].is_null();
    if (an || bn) {
      if (an && bn) continue;
      return an ? -1 : 1;
    }
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

bool KeyHasNull(const Row& key) {
  for (const Value& v : key) {
    if (v.is_null()) return true;
  }
  return false;
}

Result<bool> ResidualPasses(const ExprPtr& residual, const Row& left,
                            const Row& right) {
  if (residual == nullptr) return true;
  Row combined = left;
  combined.insert(combined.end(), right.begin(), right.end());
  PHOTON_ASSIGN_OR_RETURN(Value v, residual->EvaluateRow(combined));
  return !v.is_null() && v.boolean();
}

void EmitJoined(const Row& left, const Row* right, int right_width,
                Row* out) {
  *out = left;
  if (right != nullptr) {
    out->insert(out->end(), right->begin(), right->end());
  } else {
    for (int i = 0; i < right_width; i++) out->push_back(Value::Null());
  }
}

}  // namespace

Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        JoinType join_type) {
  if (join_type == JoinType::kLeftSemi || join_type == JoinType::kLeftAnti) {
    return left;
  }
  Schema schema = left;
  for (const Field& f : right.fields()) {
    Field field = f;
    if (join_type == JoinType::kLeftOuter) field.nullable = true;
    schema.AddField(field);
  }
  return schema;
}

// ---------------------------------------------------------------------------
// Sort-merge join
// ---------------------------------------------------------------------------

RowSortMergeJoinOperator::RowSortMergeJoinOperator(
    RowOperatorPtr left, RowOperatorPtr right,
    std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
    JoinType join_type, ExprPtr residual)
    : RowOperator(JoinOutputSchema(left->output_schema(),
                                   right->output_schema(), join_type)),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      join_type_(join_type),
      residual_(std::move(residual)) {
  PHOTON_CHECK(left_keys_.size() == right_keys_.size());
}

Status RowSortMergeJoinOperator::Open() {
  PHOTON_RETURN_NOT_OK(left_->Open());
  PHOTON_RETURN_NOT_OK(right_->Open());
  materialized_ = false;
  li_ = ri_ = 0;
  in_group_ = false;
  return Status::OK();
}

Status RowSortMergeJoinOperator::Materialize() {
  auto load = [](RowOperator* op, const std::vector<ExprPtr>& keys,
                 std::vector<Row>* rows, std::vector<Row>* key_rows,
                 std::vector<int>* order) -> Status {
    Row row;
    while (true) {
      PHOTON_ASSIGN_OR_RETURN(bool ok, op->Next(&row));
      if (!ok) break;
      Row key;
      key.reserve(keys.size());
      for (const ExprPtr& k : keys) {
        PHOTON_ASSIGN_OR_RETURN(Value v, k->EvaluateRow(row));
        key.push_back(std::move(v));
      }
      rows->push_back(row);
      key_rows->push_back(std::move(key));
    }
    order->resize(rows->size());
    for (size_t i = 0; i < order->size(); i++) (*order)[i] = static_cast<int>(i);
    std::stable_sort(order->begin(), order->end(), [&](int a, int b) {
      return CompareKeyRows((*key_rows)[a], (*key_rows)[b]) < 0;
    });
    return Status::OK();
  };
  PHOTON_RETURN_NOT_OK(
      load(left_.get(), left_keys_, &left_rows_, &left_key_rows_,
           &left_order_));
  PHOTON_RETURN_NOT_OK(
      load(right_.get(), right_keys_, &right_rows_, &right_key_rows_,
           &right_order_));
  materialized_ = true;
  return Status::OK();
}

Result<bool> RowSortMergeJoinOperator::EmitNext(Row* out) {
  int right_width = static_cast<int>(
      join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter
          ? right_rows_.empty()
                ? right_->output_schema().num_fields()
                : right_rows_[0].size()
          : 0);
  (void)right_width;
  int rw = right_->output_schema().num_fields();

  while (li_ < left_order_.size()) {
    const Row& lkey = left_key_rows_[left_order_[li_]];
    const Row& lrow = left_rows_[left_order_[li_]];

    if (!in_group_) {
      bool null_key = KeyHasNull(lkey);
      if (!null_key) {
        // Advance right cursor to this key's group.
        while (ri_ < right_order_.size() &&
               CompareKeyRows(right_key_rows_[right_order_[ri_]], lkey) < 0) {
          ri_++;
        }
        group_begin_ = ri_;
        group_end_ = ri_;
        while (group_end_ < right_order_.size() &&
               CompareKeyRows(right_key_rows_[right_order_[group_end_]],
                              lkey) == 0 &&
               !KeyHasNull(right_key_rows_[right_order_[group_end_]])) {
          group_end_++;
        }
      } else {
        group_begin_ = group_end_ = 0;  // NULL key: empty match group
      }
      group_pos_ = group_begin_;
      in_group_ = true;

      if (join_type_ == JoinType::kLeftSemi ||
          join_type_ == JoinType::kLeftAnti) {
        bool matched = false;
        for (size_t g = group_begin_; g < group_end_ && !matched; g++) {
          PHOTON_ASSIGN_OR_RETURN(
              bool ok, ResidualPasses(residual_, lrow,
                                      right_rows_[right_order_[g]]));
          matched = ok;
        }
        in_group_ = false;
        li_++;
        bool keep = join_type_ == JoinType::kLeftSemi ? matched : !matched;
        if (keep) {
          *out = lrow;
          return true;
        }
        continue;
      }

      if (group_begin_ == group_end_) {
        in_group_ = false;
        li_++;
        if (join_type_ == JoinType::kLeftOuter) {
          EmitJoined(lrow, nullptr, rw, out);
          return true;
        }
        continue;
      }
      emitted_for_left_ = false;
    }

    // Inner/left outer within a non-empty group.
    while (group_pos_ < group_end_) {
      const Row& rrow = right_rows_[right_order_[group_pos_]];
      group_pos_++;
      PHOTON_ASSIGN_OR_RETURN(bool ok,
                              ResidualPasses(residual_, lrow, rrow));
      if (ok) {
        EmitJoined(lrow, &rrow, rw, out);
        emitted_for_left_ = true;
        return true;
      }
    }
    // Group exhausted for this left row.
    in_group_ = false;
    li_++;
    ri_ = group_begin_;  // next left row with same key rescans the group
    if (join_type_ == JoinType::kLeftOuter && !emitted_for_left_) {
      // All candidates failed the residual: treat as unmatched.
      EmitJoined(lrow, nullptr, rw, out);
      return true;
    }
  }
  return false;
}

Result<bool> RowSortMergeJoinOperator::NextImpl(Row* row) {
  if (!materialized_) {
    PHOTON_RETURN_NOT_OK(Materialize());
  }
  return EmitNext(row);
}

void RowSortMergeJoinOperator::Close() {
  left_->Close();
  right_->Close();
  left_rows_.clear();
  right_rows_.clear();
  left_key_rows_.clear();
  right_key_rows_.clear();
}

// ---------------------------------------------------------------------------
// Shuffled hash join
// ---------------------------------------------------------------------------

RowShuffledHashJoinOperator::RowShuffledHashJoinOperator(
    RowOperatorPtr left, RowOperatorPtr right,
    std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
    JoinType join_type, ExprPtr residual)
    : RowOperator(JoinOutputSchema(left->output_schema(),
                                   right->output_schema(), join_type)),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      join_type_(join_type),
      residual_(std::move(residual)) {}

Status RowShuffledHashJoinOperator::Open() {
  PHOTON_RETURN_NOT_OK(left_->Open());
  PHOTON_RETURN_NOT_OK(right_->Open());
  table_.clear();
  built_ = false;
  have_left_ = false;
  return Status::OK();
}

Result<bool> RowShuffledHashJoinOperator::ExtractKey(
    const Row& row, const std::vector<ExprPtr>& keys, Row* key) const {
  key->clear();
  bool has_null = false;
  for (const ExprPtr& k : keys) {
    PHOTON_ASSIGN_OR_RETURN(Value v, k->EvaluateRow(row));
    has_null |= v.is_null();
    key->push_back(std::move(v));
  }
  return !has_null;
}

Status RowShuffledHashJoinOperator::BuildPhase() {
  Row row, key;
  while (true) {
    PHOTON_ASSIGN_OR_RETURN(bool ok, right_->Next(&row));
    if (!ok) break;
    PHOTON_ASSIGN_OR_RETURN(bool valid, ExtractKey(row, right_keys_, &key));
    if (!valid) continue;  // NULL keys never match
    table_.emplace(key, row);
  }
  built_ = true;
  return Status::OK();
}

Result<bool> RowShuffledHashJoinOperator::NextImpl(Row* out) {
  if (!built_) {
    PHOTON_RETURN_NOT_OK(BuildPhase());
  }
  int rw = right_->output_schema().num_fields();
  Row key;
  while (true) {
    if (!have_left_) {
      PHOTON_ASSIGN_OR_RETURN(bool ok, left_->Next(&current_left_));
      if (!ok) return false;
      PHOTON_ASSIGN_OR_RETURN(bool valid,
                              ExtractKey(current_left_, left_keys_, &key));
      if (valid) {
        range_ = table_.equal_range(key);
      } else {
        range_ = {table_.end(), table_.end()};
      }

      if (join_type_ == JoinType::kLeftSemi ||
          join_type_ == JoinType::kLeftAnti) {
        bool matched = false;
        for (auto it = range_.first; it != range_.second && !matched; ++it) {
          PHOTON_ASSIGN_OR_RETURN(
              bool ok2, ResidualPasses(residual_, current_left_, it->second));
          matched = ok2;
        }
        bool keep = join_type_ == JoinType::kLeftSemi ? matched : !matched;
        if (keep) {
          *out = current_left_;
          return true;
        }
        continue;
      }

      if (range_.first == range_.second) {
        if (join_type_ == JoinType::kLeftOuter) {
          EmitJoined(current_left_, nullptr, rw, out);
          return true;
        }
        continue;
      }
      have_left_ = true;
      left_matched_ = false;
    }

    bool emitted = false;
    while (range_.first != range_.second) {
      const Row& rrow = range_.first->second;
      ++range_.first;
      PHOTON_ASSIGN_OR_RETURN(bool ok,
                              ResidualPasses(residual_, current_left_, rrow));
      if (ok) {
        EmitJoined(current_left_, &rrow, rw, out);
        emitted = true;
        left_matched_ = true;
        break;
      }
    }
    if (range_.first == range_.second) {
      have_left_ = false;
      // Left outer: a candidate group where every row failed the residual
      // is an unmatched left row (sort-merge join emits it NULL-padded;
      // dropping it here silently lost rows).
      if (!emitted && !left_matched_ && join_type_ == JoinType::kLeftOuter) {
        EmitJoined(current_left_, nullptr, rw, out);
        return true;
      }
    }
    if (emitted) return true;
  }
}

void RowShuffledHashJoinOperator::Close() {
  left_->Close();
  right_->Close();
  table_.clear();
}

}  // namespace baseline
}  // namespace photon
