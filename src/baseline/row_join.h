#ifndef PHOTON_BASELINE_ROW_JOIN_H_
#define PHOTON_BASELINE_ROW_JOIN_H_

#include <unordered_map>

#include "baseline/row_operator.h"
#include "expr/expr.h"
#include "ops/hash_join.h"  // JoinType

namespace photon {
namespace baseline {

/// Sort-merge join, the default join of the baseline engine — the paper
/// notes Apache Spark defaults to SMJ because its shuffled hash join can't
/// spill (§6.1 footnote 2). Left side is the streamed/outer side (to match
/// Photon's probe side); output = left columns then right columns.
class RowSortMergeJoinOperator : public RowOperator {
 public:
  RowSortMergeJoinOperator(RowOperatorPtr left, RowOperatorPtr right,
                           std::vector<ExprPtr> left_keys,
                           std::vector<ExprPtr> right_keys,
                           JoinType join_type, ExprPtr residual = nullptr);

  Status Open() override;
  Result<bool> NextImpl(Row* row) override;
  void Close() override;
  std::string name() const override { return "BaselineSortMergeJoin"; }

 private:
  Status Materialize();
  Result<bool> EmitNext(Row* row);

  RowOperatorPtr left_;
  RowOperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  JoinType join_type_;
  ExprPtr residual_;

  std::vector<Row> left_rows_, right_rows_;
  std::vector<Row> left_key_rows_, right_key_rows_;
  std::vector<int> left_order_, right_order_;
  bool materialized_ = false;

  // Merge state.
  size_t li_ = 0, ri_ = 0;
  size_t group_begin_ = 0, group_end_ = 0;  // right group for current key
  size_t group_pos_ = 0;
  bool in_group_ = false;
  bool emitted_for_left_ = false;
};

/// Shuffled hash join: a scalar-access unordered_multimap build + row-wise
/// probe (the "standard scalar-access hash table" Photon's §4.4 contrasts
/// itself with).
class RowShuffledHashJoinOperator : public RowOperator {
 public:
  RowShuffledHashJoinOperator(RowOperatorPtr left, RowOperatorPtr right,
                              std::vector<ExprPtr> left_keys,
                              std::vector<ExprPtr> right_keys,
                              JoinType join_type, ExprPtr residual = nullptr);

  Status Open() override;
  Result<bool> NextImpl(Row* row) override;
  void Close() override;
  std::string name() const override { return "BaselineShuffledHashJoin"; }

 private:
  struct KeyHasher {
    size_t operator()(const Row& key) const {
      return static_cast<size_t>(RowKeyHash(key));
    }
  };
  struct KeyEq {
    bool operator()(const Row& a, const Row& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); i++) {
        if (a[i].is_null() || b[i].is_null()) return false;  // join NULLs
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
  };

  Status BuildPhase();
  Result<bool> ExtractKey(const Row& row, const std::vector<ExprPtr>& keys,
                          Row* key) const;

  RowOperatorPtr left_;
  RowOperatorPtr right_;
  std::vector<ExprPtr> left_keys_;
  std::vector<ExprPtr> right_keys_;
  JoinType join_type_;
  ExprPtr residual_;

  std::unordered_multimap<Row, Row, KeyHasher, KeyEq> table_;
  bool built_ = false;
  Row current_left_;
  bool have_left_ = false;
  /// Whether current_left_ emitted at least one residual-passing match
  /// (left outer needs the NULL-padded row when none did).
  bool left_matched_ = false;
  std::pair<std::unordered_multimap<Row, Row, KeyHasher, KeyEq>::iterator,
            std::unordered_multimap<Row, Row, KeyHasher, KeyEq>::iterator>
      range_;
};

Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        JoinType join_type);

}  // namespace baseline
}  // namespace photon

#endif  // PHOTON_BASELINE_ROW_JOIN_H_
