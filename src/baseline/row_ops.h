#ifndef PHOTON_BASELINE_ROW_OPS_H_
#define PHOTON_BASELINE_ROW_OPS_H_

#include "baseline/row_operator.h"
#include "expr/expr.h"
#include "vector/table.h"

namespace photon {
namespace baseline {

/// Scans an in-memory Table row by row, pivoting columns to boxed rows —
/// the column-to-row pivot Spark's row engine performs after a columnar
/// scan (§5.2).
class RowScanOperator : public RowOperator {
 public:
  explicit RowScanOperator(const Table* table)
      : RowOperator(table->schema()), table_(table) {}

  Status Open() override {
    batch_ = 0;
    row_ = 0;
    return Status::OK();
  }

  Result<bool> NextImpl(Row* row) override;
  std::string name() const override { return "BaselineScan"; }

 private:
  const Table* table_;
  int batch_ = 0;
  int row_ = 0;
};

/// Row-at-a-time filter: the predicate tree is interpreted per row via
/// virtual dispatch (the interpretation overhead vectorization amortizes).
class RowFilterOperator : public RowOperator {
 public:
  RowFilterOperator(RowOperatorPtr child, ExprPtr predicate)
      : RowOperator(child->output_schema()),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }
  Result<bool> NextImpl(Row* row) override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "BaselineFilter"; }

 private:
  RowOperatorPtr child_;
  ExprPtr predicate_;
};

/// Row-at-a-time projection.
class RowProjectOperator : public RowOperator {
 public:
  RowProjectOperator(RowOperatorPtr child, std::vector<ExprPtr> exprs,
                     std::vector<std::string> names);

  Status Open() override { return child_->Open(); }
  Result<bool> NextImpl(Row* row) override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "BaselineProject"; }

 private:
  RowOperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  Row input_;
};

class RowLimitOperator : public RowOperator {
 public:
  RowLimitOperator(RowOperatorPtr child, int64_t limit)
      : RowOperator(child->output_schema()),
        child_(std::move(child)),
        limit_(limit) {}

  Status Open() override {
    remaining_ = limit_;
    return child_->Open();
  }
  Result<bool> NextImpl(Row* row) override {
    if (remaining_ <= 0) return false;
    PHOTON_ASSIGN_OR_RETURN(bool ok, child_->Next(row));
    if (!ok) return false;
    remaining_--;
    return true;
  }
  void Close() override { child_->Close(); }
  std::string name() const override { return "BaselineLimit"; }

 private:
  RowOperatorPtr child_;
  int64_t limit_;
  int64_t remaining_ = 0;
};

}  // namespace baseline
}  // namespace photon

#endif  // PHOTON_BASELINE_ROW_OPS_H_
