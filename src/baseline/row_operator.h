#ifndef PHOTON_BASELINE_ROW_OPERATOR_H_
#define PHOTON_BASELINE_ROW_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "types/data_type.h"
#include "types/value.h"

namespace photon {

class Table;

namespace baseline {

/// A row as the baseline engine sees it: boxed values, one heap-backed
/// container per row in flight. This deliberately mirrors the cost profile
/// of the JVM-based Databricks Runtime the paper compares against (§3.2):
/// per-row virtual dispatch, value boxing for strings/decimals, and
/// per-group heap state in aggregations.
using Row = std::vector<Value>;

/// Volcano-style row operator (§3.2's "far slower Volcano-style interpreted
/// code path", which is what DBR falls back to — and which stands in here
/// for the whole JVM engine; see DESIGN.md substitutions). Pull model:
/// Next fills `row` and returns true, or returns false at end-of-stream.
///
/// The baseline reports the same obs metric vocabulary as Photon
/// operators, but deliberately cheaply: a clock read per row would skew
/// the very engine-comparison benchmarks the baseline exists for, so
/// Next() counts rows with one relaxed add and brackets wall time from
/// the first pull to end-of-stream, rather than timing each call.
class RowOperator {
 public:
  explicit RowOperator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~RowOperator() = default;

  RowOperator(const RowOperator&) = delete;
  RowOperator& operator=(const RowOperator&) = delete;

  const Schema& output_schema() const { return schema_; }

  virtual Status Open() = 0;

  /// Pulls the next row; wraps the virtual implementation with metric
  /// accounting (rows_out per row, wall time first-pull → end-of-stream).
  Result<bool> Next(Row* row) {
    if (first_next_ns_ == 0) first_next_ns_ = obs::WallNowNs();
    Result<bool> result = NextImpl(row);
    if (result.ok() && *result) {
      stats_.Add(obs::Metric::kRowsOut, 1);
    } else if (!eos_recorded_) {
      eos_recorded_ = true;
      stats_.Add(obs::Metric::kWallNs, obs::WallNowNs() - first_next_ns_);
    }
    return result;
  }

  virtual void Close() {}
  virtual std::string name() const = 0;

  const obs::MetricSet& op_metrics() const { return stats_; }

 protected:
  virtual Result<bool> NextImpl(Row* row) = 0;

  Schema schema_;
  obs::MetricSet stats_;

 private:
  int64_t first_next_ns_ = 0;
  bool eos_recorded_ = false;
};

using RowOperatorPtr = std::unique_ptr<RowOperator>;

/// Drains a row operator into an in-memory columnar Table (for comparing
/// baseline results against Photon results in tests and benchmarks).
Result<Table> CollectAllRows(RowOperator* root);

/// Hash of a boxed value (for baseline hash maps / partitioning).
uint64_t ValueHash(const Value& v);
uint64_t RowKeyHash(const Row& key);

}  // namespace baseline
}  // namespace photon

#endif  // PHOTON_BASELINE_ROW_OPERATOR_H_
