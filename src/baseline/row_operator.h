#ifndef PHOTON_BASELINE_ROW_OPERATOR_H_
#define PHOTON_BASELINE_ROW_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"
#include "types/value.h"

namespace photon {

class Table;

namespace baseline {

/// A row as the baseline engine sees it: boxed values, one heap-backed
/// container per row in flight. This deliberately mirrors the cost profile
/// of the JVM-based Databricks Runtime the paper compares against (§3.2):
/// per-row virtual dispatch, value boxing for strings/decimals, and
/// per-group heap state in aggregations.
using Row = std::vector<Value>;

/// Volcano-style row operator (§3.2's "far slower Volcano-style interpreted
/// code path", which is what DBR falls back to — and which stands in here
/// for the whole JVM engine; see DESIGN.md substitutions). Pull model:
/// Next fills `row` and returns true, or returns false at end-of-stream.
class RowOperator {
 public:
  explicit RowOperator(Schema schema) : schema_(std::move(schema)) {}
  virtual ~RowOperator() = default;

  RowOperator(const RowOperator&) = delete;
  RowOperator& operator=(const RowOperator&) = delete;

  const Schema& output_schema() const { return schema_; }

  virtual Status Open() = 0;
  virtual Result<bool> Next(Row* row) = 0;
  virtual void Close() {}
  virtual std::string name() const = 0;

 protected:
  Schema schema_;
};

using RowOperatorPtr = std::unique_ptr<RowOperator>;

/// Drains a row operator into an in-memory columnar Table (for comparing
/// baseline results against Photon results in tests and benchmarks).
Result<Table> CollectAllRows(RowOperator* root);

/// Hash of a boxed value (for baseline hash maps / partitioning).
uint64_t ValueHash(const Value& v);
uint64_t RowKeyHash(const Row& key);

}  // namespace baseline
}  // namespace photon

#endif  // PHOTON_BASELINE_ROW_OPERATOR_H_
