#include "baseline/row_ops.h"

#include "common/hash.h"

namespace photon {
namespace baseline {

Result<Table> CollectAllRows(RowOperator* root) {
  PHOTON_RETURN_NOT_OK(root->Open());
  TableBuilder builder(root->output_schema());
  Row row;
  while (true) {
    PHOTON_ASSIGN_OR_RETURN(bool ok, root->Next(&row));
    if (!ok) break;
    builder.AppendRow(row);
  }
  root->Close();
  return builder.Finish();
}

uint64_t ValueHash(const Value& v) { return v.HashCode(); }

uint64_t RowKeyHash(const Row& key) {
  uint64_t h = 0x517CC1B727220A95ULL;
  for (const Value& v : key) h = HashCombine(h, ValueHash(v));
  return h;
}

Result<bool> RowScanOperator::NextImpl(Row* row) {
  while (batch_ < table_->num_batches()) {
    const ColumnBatch& b = table_->batch(batch_);
    if (row_ < b.num_active()) {
      int r = b.ActiveRow(row_);
      row->clear();
      for (int c = 0; c < b.num_columns(); c++) {
        row->push_back(b.column(c)->GetValue(r));
      }
      row_++;
      return true;
    }
    batch_++;
    row_ = 0;
  }
  return false;
}

Result<bool> RowFilterOperator::NextImpl(Row* row) {
  while (true) {
    PHOTON_ASSIGN_OR_RETURN(bool ok, child_->Next(row));
    if (!ok) return false;
    PHOTON_ASSIGN_OR_RETURN(Value v, predicate_->EvaluateRow(*row));
    if (!v.is_null() && v.boolean()) return true;
  }
}

RowProjectOperator::RowProjectOperator(RowOperatorPtr child,
                                       std::vector<ExprPtr> exprs,
                                       std::vector<std::string> names)
    : RowOperator(Schema()), child_(std::move(child)), exprs_(std::move(exprs)) {
  PHOTON_CHECK(exprs_.size() == names.size());
  Schema schema;
  for (size_t i = 0; i < exprs_.size(); i++) {
    schema.AddField(Field(names[i], exprs_[i]->type()));
  }
  schema_ = std::move(schema);
}

Result<bool> RowProjectOperator::NextImpl(Row* row) {
  PHOTON_ASSIGN_OR_RETURN(bool ok, child_->Next(&input_));
  if (!ok) return false;
  row->clear();
  for (const ExprPtr& e : exprs_) {
    PHOTON_ASSIGN_OR_RETURN(Value v, e->EvaluateRow(input_));
    row->push_back(std::move(v));
  }
  return true;
}

}  // namespace baseline
}  // namespace photon
