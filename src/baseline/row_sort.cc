#include "baseline/row_sort.h"

#include <algorithm>

namespace photon {
namespace baseline {

Status RowSortOperator::Materialize() {
  Row row;
  while (true) {
    PHOTON_ASSIGN_OR_RETURN(bool ok, child_->Next(&row));
    if (!ok) break;
    rows_.push_back(row);
  }
  // Evaluate keys once per row, then sort indices.
  std::vector<Row> key_rows(rows_.size());
  for (size_t i = 0; i < rows_.size(); i++) {
    for (const SortKey& key : keys_) {
      PHOTON_ASSIGN_OR_RETURN(Value v, key.expr->EvaluateRow(rows_[i]));
      key_rows[i].push_back(std::move(v));
    }
  }
  std::vector<int> order(rows_.size());
  for (size_t i = 0; i < order.size(); i++) order[i] = static_cast<int>(i);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    for (size_t k = 0; k < keys_.size(); k++) {
      const Value& va = key_rows[a][k];
      const Value& vb = key_rows[b][k];
      if (va.is_null() || vb.is_null()) {
        if (va.is_null() && vb.is_null()) continue;
        int c = va.is_null() ? -1 : 1;
        return (keys_[k].nulls_first ? c : -c) < 0;
      }
      int c = va.Compare(vb);
      if (c != 0) return (keys_[k].ascending ? c : -c) < 0;
    }
    return false;
  });
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (int idx : order) sorted.push_back(std::move(rows_[idx]));
  rows_ = std::move(sorted);
  sorted_ = true;
  return Status::OK();
}

Result<bool> RowSortOperator::NextImpl(Row* row) {
  if (!sorted_) {
    PHOTON_RETURN_NOT_OK(Materialize());
  }
  if (emit_ >= rows_.size()) return false;
  *row = rows_[emit_++];
  return true;
}

}  // namespace baseline
}  // namespace photon
