#ifndef PHOTON_BASELINE_ROW_AGG_H_
#define PHOTON_BASELINE_ROW_AGG_H_

#include <memory>
#include <unordered_map>

#include "baseline/row_operator.h"
#include "expr/agg_function.h"
#include "expr/expr.h"
#include "ops/hash_aggregate.h"  // AggregateSpec

namespace photon {
namespace baseline {

/// Per-group aggregation state, heap-allocated per group like the JVM
/// engine's (§6.1 describes DBR's collect_list using Scala collections and
/// managing "the state for each group independently").
class RowAggState {
 public:
  virtual ~RowAggState() = default;
  virtual Status Update(const Value& arg) = 0;
  virtual Result<Value> Finalize() const = 0;
};

/// Row-at-a-time hash aggregation over a boxed-key unordered_map. Numeric
/// accumulation orders and types match Photon's aggregates exactly so the
/// two engines can be diffed (§5.6); only the *costs* differ.
class RowHashAggregateOperator : public RowOperator {
 public:
  RowHashAggregateOperator(RowOperatorPtr child, std::vector<ExprPtr> keys,
                           std::vector<std::string> key_names,
                           std::vector<AggregateSpec> specs);

  Status Open() override;
  Result<bool> NextImpl(Row* row) override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "BaselineHashAggregate"; }

 private:
  struct RowKey {
    Row values;
    bool operator==(const RowKey& other) const {
      if (values.size() != other.values.size()) return false;
      for (size_t i = 0; i < values.size(); i++) {
        bool an = values[i].is_null(), bn = other.values[i].is_null();
        if (an != bn) return false;
        if (!an && !values[i].Equals(other.values[i])) return false;
      }
      return true;
    }
  };
  struct RowKeyHasher {
    size_t operator()(const RowKey& k) const {
      return static_cast<size_t>(RowKeyHash(k.values));
    }
  };
  using Group = std::vector<std::unique_ptr<RowAggState>>;

  Status ConsumeInput();
  Group MakeGroup() const;

  RowOperatorPtr child_;
  std::vector<ExprPtr> keys_;
  std::vector<AggregateSpec> specs_;
  std::unordered_map<RowKey, Group, RowKeyHasher> groups_;
  Group scalar_group_;
  bool scalar_mode_;
  bool consumed_ = false;
  bool scalar_emitted_ = false;
  std::unordered_map<RowKey, Group, RowKeyHasher>::iterator emit_it_;
};

}  // namespace baseline
}  // namespace photon

#endif  // PHOTON_BASELINE_ROW_AGG_H_
