#ifndef PHOTON_BASELINE_ROW_SHUFFLE_H_
#define PHOTON_BASELINE_ROW_SHUFFLE_H_

#include "baseline/row_operator.h"
#include "common/byte_buffer.h"
#include "expr/expr.h"
#include "storage/compress.h"

namespace photon {
namespace baseline {

/// Generic row-at-a-time shuffle writer: serializes each row value by
/// value (type-tagged nulls, no batching, no adaptive encodings) and
/// compresses blocks before writing — DBR's generic row serializer from
/// Table 1's comparison.
class RowShuffleWriteOperator : public RowOperator {
 public:
  RowShuffleWriteOperator(RowOperatorPtr child,
                          std::vector<ExprPtr> partition_keys,
                          std::string shuffle_id, int num_partitions,
                          Codec codec = Codec::kLz);

  Status Open() override;
  /// Sink: drains the child on first call and returns false.
  Result<bool> NextImpl(Row* row) override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "BaselineShuffleWrite"; }

  int64_t bytes_written() const { return bytes_written_; }

 private:
  Status FlushPartition(int p);

  RowOperatorPtr child_;
  std::vector<ExprPtr> partition_keys_;
  std::string shuffle_id_;
  int num_partitions_;
  Codec codec_;
  std::vector<BinaryWriter> staging_;
  std::vector<int> staging_rows_;
  std::vector<int> block_seq_;
  int64_t bytes_written_ = 0;
  bool done_ = false;
};

/// Reads rows back from a baseline shuffle.
class RowShuffleReadOperator : public RowOperator {
 public:
  RowShuffleReadOperator(Schema schema, std::string shuffle_id,
                         int partition = -1);

  Status Open() override;
  Result<bool> NextImpl(Row* row) override;
  std::string name() const override { return "BaselineShuffleRead"; }

 private:
  std::string shuffle_id_;
  int partition_;
  std::vector<std::string> block_keys_;
  size_t next_block_ = 0;
  std::string current_block_;
  std::unique_ptr<BinaryReader> reader_;
};

/// Row serialization shared by writer/reader (and usable by tests).
void SerializeRow(const Row& row, const Schema& schema, BinaryWriter* out);
Status DeserializeRow(BinaryReader* in, const Schema& schema, Row* row);

}  // namespace baseline
}  // namespace photon

#endif  // PHOTON_BASELINE_ROW_SHUFFLE_H_
