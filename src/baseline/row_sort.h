#ifndef PHOTON_BASELINE_ROW_SORT_H_
#define PHOTON_BASELINE_ROW_SORT_H_

#include "baseline/row_operator.h"
#include "ops/sort.h"  // SortKey

namespace photon {
namespace baseline {

/// In-memory row sort with boxed comparisons.
class RowSortOperator : public RowOperator {
 public:
  RowSortOperator(RowOperatorPtr child, std::vector<SortKey> keys)
      : RowOperator(child->output_schema()),
        child_(std::move(child)),
        keys_(std::move(keys)) {}

  Status Open() override {
    sorted_ = false;
    emit_ = 0;
    rows_.clear();
    return child_->Open();
  }

  Result<bool> NextImpl(Row* row) override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "BaselineSort"; }

 private:
  Status Materialize();

  RowOperatorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  bool sorted_ = false;
  size_t emit_ = 0;
};

}  // namespace baseline
}  // namespace photon

#endif  // PHOTON_BASELINE_ROW_SORT_H_
