file(REMOVE_RECURSE
  "CMakeFiles/vector_test.dir/vector_test.cc.o"
  "CMakeFiles/vector_test.dir/vector_test.cc.o.d"
  "vector_test"
  "vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
