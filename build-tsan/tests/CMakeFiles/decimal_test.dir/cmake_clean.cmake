file(REMOVE_RECURSE
  "CMakeFiles/decimal_test.dir/decimal_test.cc.o"
  "CMakeFiles/decimal_test.dir/decimal_test.cc.o.d"
  "decimal_test"
  "decimal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decimal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
