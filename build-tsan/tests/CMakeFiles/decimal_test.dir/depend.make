# Empty dependencies file for decimal_test.
# This may be replaced when dependencies are built.
