file(REMOVE_RECURSE
  "CMakeFiles/converter_support_test.dir/converter_support_test.cc.o"
  "CMakeFiles/converter_support_test.dir/converter_support_test.cc.o.d"
  "converter_support_test"
  "converter_support_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converter_support_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
