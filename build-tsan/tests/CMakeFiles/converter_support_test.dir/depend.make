# Empty dependencies file for converter_support_test.
# This may be replaced when dependencies are built.
