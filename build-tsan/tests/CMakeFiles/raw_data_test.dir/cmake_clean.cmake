file(REMOVE_RECURSE
  "CMakeFiles/raw_data_test.dir/raw_data_test.cc.o"
  "CMakeFiles/raw_data_test.dir/raw_data_test.cc.o.d"
  "raw_data_test"
  "raw_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
