# Empty dependencies file for raw_data_test.
# This may be replaced when dependencies are built.
