# Empty dependencies file for io_cache_test.
# This may be replaced when dependencies are built.
