file(REMOVE_RECURSE
  "CMakeFiles/io_cache_test.dir/io_cache_test.cc.o"
  "CMakeFiles/io_cache_test.dir/io_cache_test.cc.o.d"
  "io_cache_test"
  "io_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
