file(REMOVE_RECURSE
  "CMakeFiles/agg_function_test.dir/agg_function_test.cc.o"
  "CMakeFiles/agg_function_test.dir/agg_function_test.cc.o.d"
  "agg_function_test"
  "agg_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
