# Empty compiler generated dependencies file for agg_function_test.
# This may be replaced when dependencies are built.
