
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/row_agg.cc" "src/CMakeFiles/photon.dir/baseline/row_agg.cc.o" "gcc" "src/CMakeFiles/photon.dir/baseline/row_agg.cc.o.d"
  "/root/repo/src/baseline/row_join.cc" "src/CMakeFiles/photon.dir/baseline/row_join.cc.o" "gcc" "src/CMakeFiles/photon.dir/baseline/row_join.cc.o.d"
  "/root/repo/src/baseline/row_ops.cc" "src/CMakeFiles/photon.dir/baseline/row_ops.cc.o" "gcc" "src/CMakeFiles/photon.dir/baseline/row_ops.cc.o.d"
  "/root/repo/src/baseline/row_shuffle.cc" "src/CMakeFiles/photon.dir/baseline/row_shuffle.cc.o" "gcc" "src/CMakeFiles/photon.dir/baseline/row_shuffle.cc.o.d"
  "/root/repo/src/baseline/row_sort.cc" "src/CMakeFiles/photon.dir/baseline/row_sort.cc.o" "gcc" "src/CMakeFiles/photon.dir/baseline/row_sort.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/photon.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/photon.dir/common/hash.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/photon.dir/common/status.cc.o" "gcc" "src/CMakeFiles/photon.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/photon.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/photon.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/time_util.cc" "src/CMakeFiles/photon.dir/common/time_util.cc.o" "gcc" "src/CMakeFiles/photon.dir/common/time_util.cc.o.d"
  "/root/repo/src/common/unicode.cc" "src/CMakeFiles/photon.dir/common/unicode.cc.o" "gcc" "src/CMakeFiles/photon.dir/common/unicode.cc.o.d"
  "/root/repo/src/exec/driver.cc" "src/CMakeFiles/photon.dir/exec/driver.cc.o" "gcc" "src/CMakeFiles/photon.dir/exec/driver.cc.o.d"
  "/root/repo/src/expr/agg_function.cc" "src/CMakeFiles/photon.dir/expr/agg_function.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/agg_function.cc.o.d"
  "/root/repo/src/expr/arithmetic.cc" "src/CMakeFiles/photon.dir/expr/arithmetic.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/arithmetic.cc.o.d"
  "/root/repo/src/expr/builder.cc" "src/CMakeFiles/photon.dir/expr/builder.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/builder.cc.o.d"
  "/root/repo/src/expr/cast.cc" "src/CMakeFiles/photon.dir/expr/cast.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/cast.cc.o.d"
  "/root/repo/src/expr/comparison.cc" "src/CMakeFiles/photon.dir/expr/comparison.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/comparison.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/photon.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/function_registry.cc" "src/CMakeFiles/photon.dir/expr/function_registry.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/function_registry.cc.o.d"
  "/root/repo/src/expr/functions_datetime.cc" "src/CMakeFiles/photon.dir/expr/functions_datetime.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/functions_datetime.cc.o.d"
  "/root/repo/src/expr/functions_math.cc" "src/CMakeFiles/photon.dir/expr/functions_math.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/functions_math.cc.o.d"
  "/root/repo/src/expr/functions_misc.cc" "src/CMakeFiles/photon.dir/expr/functions_misc.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/functions_misc.cc.o.d"
  "/root/repo/src/expr/functions_string.cc" "src/CMakeFiles/photon.dir/expr/functions_string.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/functions_string.cc.o.d"
  "/root/repo/src/expr/functions_string2.cc" "src/CMakeFiles/photon.dir/expr/functions_string2.cc.o" "gcc" "src/CMakeFiles/photon.dir/expr/functions_string2.cc.o.d"
  "/root/repo/src/ht/vectorized_hash_table.cc" "src/CMakeFiles/photon.dir/ht/vectorized_hash_table.cc.o" "gcc" "src/CMakeFiles/photon.dir/ht/vectorized_hash_table.cc.o.d"
  "/root/repo/src/io/block_cache.cc" "src/CMakeFiles/photon.dir/io/block_cache.cc.o" "gcc" "src/CMakeFiles/photon.dir/io/block_cache.cc.o.d"
  "/root/repo/src/io/caching_store.cc" "src/CMakeFiles/photon.dir/io/caching_store.cc.o" "gcc" "src/CMakeFiles/photon.dir/io/caching_store.cc.o.d"
  "/root/repo/src/io/prefetcher.cc" "src/CMakeFiles/photon.dir/io/prefetcher.cc.o" "gcc" "src/CMakeFiles/photon.dir/io/prefetcher.cc.o.d"
  "/root/repo/src/memory/memory_manager.cc" "src/CMakeFiles/photon.dir/memory/memory_manager.cc.o" "gcc" "src/CMakeFiles/photon.dir/memory/memory_manager.cc.o.d"
  "/root/repo/src/ops/file_scan.cc" "src/CMakeFiles/photon.dir/ops/file_scan.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/file_scan.cc.o.d"
  "/root/repo/src/ops/hash_aggregate.cc" "src/CMakeFiles/photon.dir/ops/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/hash_aggregate.cc.o.d"
  "/root/repo/src/ops/hash_join.cc" "src/CMakeFiles/photon.dir/ops/hash_join.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/hash_join.cc.o.d"
  "/root/repo/src/ops/operator.cc" "src/CMakeFiles/photon.dir/ops/operator.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/operator.cc.o.d"
  "/root/repo/src/ops/project.cc" "src/CMakeFiles/photon.dir/ops/project.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/project.cc.o.d"
  "/root/repo/src/ops/scan.cc" "src/CMakeFiles/photon.dir/ops/scan.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/scan.cc.o.d"
  "/root/repo/src/ops/shuffle.cc" "src/CMakeFiles/photon.dir/ops/shuffle.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/shuffle.cc.o.d"
  "/root/repo/src/ops/sort.cc" "src/CMakeFiles/photon.dir/ops/sort.cc.o" "gcc" "src/CMakeFiles/photon.dir/ops/sort.cc.o.d"
  "/root/repo/src/plan/converter.cc" "src/CMakeFiles/photon.dir/plan/converter.cc.o" "gcc" "src/CMakeFiles/photon.dir/plan/converter.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/photon.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/photon.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/storage/baseline_file_writer.cc" "src/CMakeFiles/photon.dir/storage/baseline_file_writer.cc.o" "gcc" "src/CMakeFiles/photon.dir/storage/baseline_file_writer.cc.o.d"
  "/root/repo/src/storage/bitpack.cc" "src/CMakeFiles/photon.dir/storage/bitpack.cc.o" "gcc" "src/CMakeFiles/photon.dir/storage/bitpack.cc.o.d"
  "/root/repo/src/storage/compress.cc" "src/CMakeFiles/photon.dir/storage/compress.cc.o" "gcc" "src/CMakeFiles/photon.dir/storage/compress.cc.o.d"
  "/root/repo/src/storage/delta.cc" "src/CMakeFiles/photon.dir/storage/delta.cc.o" "gcc" "src/CMakeFiles/photon.dir/storage/delta.cc.o.d"
  "/root/repo/src/storage/format.cc" "src/CMakeFiles/photon.dir/storage/format.cc.o" "gcc" "src/CMakeFiles/photon.dir/storage/format.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/photon.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/photon.dir/storage/object_store.cc.o.d"
  "/root/repo/src/tpch/tpch_gen.cc" "src/CMakeFiles/photon.dir/tpch/tpch_gen.cc.o" "gcc" "src/CMakeFiles/photon.dir/tpch/tpch_gen.cc.o.d"
  "/root/repo/src/tpch/tpch_queries.cc" "src/CMakeFiles/photon.dir/tpch/tpch_queries.cc.o" "gcc" "src/CMakeFiles/photon.dir/tpch/tpch_queries.cc.o.d"
  "/root/repo/src/types/big_decimal.cc" "src/CMakeFiles/photon.dir/types/big_decimal.cc.o" "gcc" "src/CMakeFiles/photon.dir/types/big_decimal.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/photon.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/photon.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/decimal.cc" "src/CMakeFiles/photon.dir/types/decimal.cc.o" "gcc" "src/CMakeFiles/photon.dir/types/decimal.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/photon.dir/types/value.cc.o" "gcc" "src/CMakeFiles/photon.dir/types/value.cc.o.d"
  "/root/repo/src/vector/column_batch.cc" "src/CMakeFiles/photon.dir/vector/column_batch.cc.o" "gcc" "src/CMakeFiles/photon.dir/vector/column_batch.cc.o.d"
  "/root/repo/src/vector/column_vector.cc" "src/CMakeFiles/photon.dir/vector/column_vector.cc.o" "gcc" "src/CMakeFiles/photon.dir/vector/column_vector.cc.o.d"
  "/root/repo/src/vector/table.cc" "src/CMakeFiles/photon.dir/vector/table.cc.o" "gcc" "src/CMakeFiles/photon.dir/vector/table.cc.o.d"
  "/root/repo/src/vector/vector_serde.cc" "src/CMakeFiles/photon.dir/vector/vector_serde.cc.o" "gcc" "src/CMakeFiles/photon.dir/vector/vector_serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
