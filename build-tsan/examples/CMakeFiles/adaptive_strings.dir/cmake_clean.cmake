file(REMOVE_RECURSE
  "CMakeFiles/adaptive_strings.dir/adaptive_strings.cpp.o"
  "CMakeFiles/adaptive_strings.dir/adaptive_strings.cpp.o.d"
  "adaptive_strings"
  "adaptive_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
