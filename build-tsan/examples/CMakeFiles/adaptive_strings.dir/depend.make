# Empty dependencies file for adaptive_strings.
# This may be replaced when dependencies are built.
