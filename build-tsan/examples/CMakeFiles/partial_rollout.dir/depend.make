# Empty dependencies file for partial_rollout.
# This may be replaced when dependencies are built.
