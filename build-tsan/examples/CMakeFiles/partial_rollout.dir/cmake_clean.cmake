file(REMOVE_RECURSE
  "CMakeFiles/partial_rollout.dir/partial_rollout.cpp.o"
  "CMakeFiles/partial_rollout.dir/partial_rollout.cpp.o.d"
  "partial_rollout"
  "partial_rollout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_rollout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
