file(REMOVE_RECURSE
  "CMakeFiles/lakehouse_etl.dir/lakehouse_etl.cpp.o"
  "CMakeFiles/lakehouse_etl.dir/lakehouse_etl.cpp.o.d"
  "lakehouse_etl"
  "lakehouse_etl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lakehouse_etl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
