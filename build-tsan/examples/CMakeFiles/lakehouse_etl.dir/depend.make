# Empty dependencies file for lakehouse_etl.
# This may be replaced when dependencies are built.
