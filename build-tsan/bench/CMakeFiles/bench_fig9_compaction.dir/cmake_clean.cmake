file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_compaction.dir/bench_fig9_compaction.cc.o"
  "CMakeFiles/bench_fig9_compaction.dir/bench_fig9_compaction.cc.o.d"
  "bench_fig9_compaction"
  "bench_fig9_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
