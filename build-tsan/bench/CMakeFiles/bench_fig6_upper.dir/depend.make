# Empty dependencies file for bench_fig6_upper.
# This may be replaced when dependencies are built.
