file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_upper.dir/bench_fig6_upper.cc.o"
  "CMakeFiles/bench_fig6_upper.dir/bench_fig6_upper.cc.o.d"
  "bench_fig6_upper"
  "bench_fig6_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
