# Empty dependencies file for bench_fig8_tpch.
# This may be replaced when dependencies are built.
