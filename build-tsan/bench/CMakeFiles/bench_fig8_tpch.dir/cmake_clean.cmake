file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_tpch.dir/bench_fig8_tpch.cc.o"
  "CMakeFiles/bench_fig8_tpch.dir/bench_fig8_tpch.cc.o.d"
  "bench_fig8_tpch"
  "bench_fig8_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
