# Empty dependencies file for bench_fig5_collect_list.
# This may be replaced when dependencies are built.
