file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_collect_list.dir/bench_fig5_collect_list.cc.o"
  "CMakeFiles/bench_fig5_collect_list.dir/bench_fig5_collect_list.cc.o.d"
  "bench_fig5_collect_list"
  "bench_fig5_collect_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_collect_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
