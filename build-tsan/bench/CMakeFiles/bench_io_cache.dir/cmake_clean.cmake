file(REMOVE_RECURSE
  "CMakeFiles/bench_io_cache.dir/bench_io_cache.cc.o"
  "CMakeFiles/bench_io_cache.dir/bench_io_cache.cc.o.d"
  "bench_io_cache"
  "bench_io_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
