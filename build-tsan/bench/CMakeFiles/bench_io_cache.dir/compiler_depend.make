# Empty compiler generated dependencies file for bench_io_cache.
# This may be replaced when dependencies are built.
