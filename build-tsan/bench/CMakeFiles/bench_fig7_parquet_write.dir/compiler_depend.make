# Empty compiler generated dependencies file for bench_fig7_parquet_write.
# This may be replaced when dependencies are built.
