file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_parquet_write.dir/bench_fig7_parquet_write.cc.o"
  "CMakeFiles/bench_fig7_parquet_write.dir/bench_fig7_parquet_write.cc.o.d"
  "bench_fig7_parquet_write"
  "bench_fig7_parquet_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_parquet_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
