# Empty dependencies file for bench_fig4_hash_join.
# This may be replaced when dependencies are built.
