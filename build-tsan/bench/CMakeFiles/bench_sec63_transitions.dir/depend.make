# Empty dependencies file for bench_sec63_transitions.
# This may be replaced when dependencies are built.
