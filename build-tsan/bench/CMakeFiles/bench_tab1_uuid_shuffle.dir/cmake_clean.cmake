file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_uuid_shuffle.dir/bench_tab1_uuid_shuffle.cc.o"
  "CMakeFiles/bench_tab1_uuid_shuffle.dir/bench_tab1_uuid_shuffle.cc.o.d"
  "bench_tab1_uuid_shuffle"
  "bench_tab1_uuid_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_uuid_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
