# Empty dependencies file for bench_tab1_uuid_shuffle.
# This may be replaced when dependencies are built.
