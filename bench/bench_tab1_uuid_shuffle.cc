// Table 1: adaptive UUID shuffle encoding.
//
// Repartitions a dataset whose string column holds canonical 36-character
// UUIDs. Three configurations, as in the paper:
//   - DBR: the baseline row shuffle (generic row serializer + LZ);
//   - Photon + No Adaptivity: columnar shuffle, plain string encoding;
//   - Photon + Adaptivity: per-block detection rewrites UUID strings as
//     16-byte binary before compression.
// Paper: runtime 31501 / 17324 / 15069 ms and data 1759.6 / 1715.1 /
// 763.2 MB — i.e. a modest runtime win but >2x less shuffle data.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "expr/builder.h"
#include "baseline/row_ops.h"
#include "baseline/row_shuffle.h"
#include "ops/scan.h"
#include "ops/shuffle.h"
#include "vector/vector_serde.h"

namespace photon {
namespace {

Table MakeUuidTable(int64_t rows, uint64_t seed) {
  Schema schema({Field("u", DataType::String(), false),
                 Field("v", DataType::Int64(), false)});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; i++) {
    uint8_t bin[16];
    for (int b = 0; b < 16; b++) bin[b] = static_cast<uint8_t>(rng.Next());
    char text[36];
    FormatUuid(bin, text);
    builder.AppendRow(
        {Value::String(std::string(text, 36)), Value::Int64(i)});
  }
  return builder.Finish();
}

struct RunResult {
  int64_t wall_ns;
  int64_t bytes;
};

RunResult RunPhotonShuffle(const Table& t, bool adaptive,
                           const std::string& id) {
  ShuffleOptions options;
  options.num_partitions = 8;
  options.adaptive_encoding = adaptive;
  auto write = std::make_unique<ShuffleWriteOperator>(
      std::make_unique<InMemoryScanOperator>(&t),
      std::vector<ExprPtr>{eb::Col(0, DataType::String(), "u")}, id,
      options);
  int64_t t0 = bench::NowNs();
  PHOTON_CHECK(write->Open().ok());
  Result<ColumnBatch*> sink = write->GetNext();
  PHOTON_CHECK(sink.ok());
  // Read it back (a shuffle write is always paired with a read, §5.2).
  auto read = std::make_unique<ShuffleReadOperator>(t.schema(), id);
  Result<Table> result = CollectAll(read.get());
  PHOTON_CHECK(result.ok());
  PHOTON_CHECK(result->num_rows() == t.num_rows());
  int64_t elapsed = bench::NowNs() - t0;
  RunResult out{elapsed, write->bytes_written()};
  DeleteShuffle(id);
  return out;
}

RunResult RunBaselineShuffle(const Table& t, const std::string& id) {
  auto write = std::make_unique<baseline::RowShuffleWriteOperator>(
      std::make_unique<baseline::RowScanOperator>(&t),
      std::vector<ExprPtr>{eb::Col(0, DataType::String(), "u")}, id, 8);
  int64_t t0 = bench::NowNs();
  PHOTON_CHECK(write->Open().ok());
  baseline::Row sink;
  Result<bool> done = write->Next(&sink);
  PHOTON_CHECK(done.ok());
  auto read = std::make_unique<baseline::RowShuffleReadOperator>(t.schema(),
                                                                 id);
  Result<Table> result = baseline::CollectAllRows(read.get());
  PHOTON_CHECK(result.ok());
  PHOTON_CHECK(result->num_rows() == t.num_rows());
  int64_t elapsed = bench::NowNs() - t0;
  RunResult out{elapsed, write->bytes_written()};
  ObjectStore::Default().DeletePrefix("rowshuffle/" + id + "/");
  return out;
}

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const int64_t kRows = 1000000;  // scaled from the paper's 50M
  std::printf("Table 1: adaptive UUID shuffle encoding (%lld rows)\n",
              static_cast<long long>(kRows));
  Table t = MakeUuidTable(kRows, 77);

  RunResult dbr = RunBaselineShuffle(t, "tab1-dbr");
  RunResult plain = RunPhotonShuffle(t, false, "tab1-plain");
  RunResult adaptive = RunPhotonShuffle(t, true, "tab1-adaptive");

  std::printf("  %-24s %12s %14s\n", "Configuration", "Runtime (ms)",
              "Data Size (MB)");
  std::printf("  %-24s %12.1f %14.2f\n", "DBR", bench::Ms(dbr.wall_ns),
              dbr.bytes / 1048576.0);
  std::printf("  %-24s %12.1f %14.2f\n", "Photon + No Adaptivity",
              bench::Ms(plain.wall_ns), plain.bytes / 1048576.0);
  std::printf("  %-24s %12.1f %14.2f\n", "Photon + Adaptivity",
              bench::Ms(adaptive.wall_ns), adaptive.bytes / 1048576.0);
  std::printf(
      "  data reduction from adaptivity: %.2fx (paper: ~2.2x); runtime "
      "win: %.1f%% (paper: ~15%%)\n",
      static_cast<double>(plain.bytes) / adaptive.bytes,
      100.0 * (plain.wall_ns - adaptive.wall_ns) / plain.wall_ns);
  return 0;
}
