// Expression fusion microbench (DESIGN.md §12): times identical
// filter→project chains under each expression policy —
//   tree      per-node FilterOperator/ProjectOperator walking the
//             interpreted expression tree (the pre-fusion engine)
//   fused     one FusedFilterProjectOperator running the flattened
//             postfix programs (fused interpreter tier)
//   compiled  same operator with the template-instantiated kernels forced
//   adaptive  the default production policy (batch-level tier selection)
// over synthetic int64 / float64 / decimal chains shaped like TPC-H Q1
// and Q6 expression work. Checksums must match across policies.
//
// Usage: bench_expr_fusion [--rows N] [--reps R] [--min-speedup S]
//                          [--json PATH]
// Exit status is non-zero when, for any chain, the best fused-layer
// policy fails to reach S× over the interpreted tree (default 1.5, the
// acceptance bound; pass 0 for a jitter-proof smoke run).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "expr/builder.h"
#include "types/decimal.h"

namespace {

using namespace photon;
using eb::Col;
using eb::Lit;

/// Deterministic synthetic table: int64 a,b; float64 x,y; decimal p,q.
/// Values from one LCG so every run (and every policy) sees the same
/// bytes; sparse NULLs exercise the null-propagation paths.
///
/// The decimal widths are deliberate: p decimal(10,2) × (1±q) at
/// decimal(4,2) puts price*(1-disc) at (24,4) and the Q1 charge product
/// at exactly precision 38 — the widest shape that stays on the compact
/// int128 kernels every tier shares the speedup on. Wider inputs (e.g.
/// 18,2) cap the charge product's precision, which routes ALL tiers
/// through the same checked BigDecimal row loop (§6.2's slow case);
/// that loop dominates runtime identically everywhere, so no
/// expression-layer tier can beat another on it by construction.
Table MakeTable(int64_t rows) {
  Schema schema({Field("a", DataType::Int64()), Field("b", DataType::Int64()),
                 Field("x", DataType::Float64()),
                 Field("y", DataType::Float64()),
                 Field("p", DataType::Decimal(10, 2)),
                 Field("q", DataType::Decimal(4, 2))});
  Table table(schema);
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  auto next = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 16;
  };
  for (int64_t done = 0; done < rows;) {
    int n = static_cast<int>(
        std::min<int64_t>(kDefaultBatchSize, rows - done));
    auto batch = std::make_unique<ColumnBatch>(schema, n);
    int64_t* a = batch->column(0)->data<int64_t>();
    int64_t* b = batch->column(1)->data<int64_t>();
    double* x = batch->column(2)->data<double>();
    double* y = batch->column(3)->data<double>();
    int128_t* p = batch->column(4)->data<int128_t>();
    int128_t* q = batch->column(5)->data<int128_t>();
    for (int i = 0; i < n; i++) {
      a[i] = static_cast<int64_t>(next() % 2000) - 1000;
      b[i] = static_cast<int64_t>(next() % 1000);
      x[i] = static_cast<double>(next() % 5000) / 100.0;  // [0, 50)
      y[i] = static_cast<double>(next() % 1000) / 10000.0;  // [0, 0.1)
      p[i] = static_cast<int128_t>(next() % 10000000);  // up to 100k.00
      q[i] = static_cast<int128_t>(next() % 10);        // discount 0.00-0.09
      if (next() % 97 == 0) batch->column(1)->SetNull(i);
      if (next() % 89 == 0) batch->column(3)->SetNull(i);
    }
    batch->set_num_rows(n);
    batch->SetAllActive();
    table.AppendBatch(std::move(batch));
    done += n;
  }
  return table;
}

struct Chain {
  const char* name;
  plan::PlanPtr plan;
};

}  // namespace

int main(int argc, char** argv) {
  int64_t rows = 2000000;
  if (const char* v = bench::FlagValue(argc, argv, "--rows")) {
    rows = std::atoll(v);
  }
  int reps = 5;
  if (const char* v = bench::FlagValue(argc, argv, "--reps")) {
    reps = std::atoi(v);
  }
  double min_speedup = 1.5;
  if (const char* v = bench::FlagValue(argc, argv, "--min-speedup")) {
    min_speedup = std::atof(v);
  }
  const char* json_path = bench::FlagValue(argc, argv, "--json");

  std::printf(
      "Expression fusion: %lld rows, min of %d runs (gate %.2fx over "
      "tree)\n",
      static_cast<long long>(rows), reps, min_speedup);
  Table table = MakeTable(rows);

  ExprPtr a = Col(0, DataType::Int64(), "a");
  ExprPtr b = Col(1, DataType::Int64(), "b");
  ExprPtr x = Col(2, DataType::Float64(), "x");
  ExprPtr y = Col(3, DataType::Float64(), "y");
  ExprPtr p = Col(4, DataType::Decimal(10, 2), "p");
  ExprPtr q = Col(5, DataType::Decimal(4, 2), "q");

  std::vector<Chain> chains;
  // int64 arithmetic chain: comparison terms + fused multiply-add.
  chains.push_back(
      {"int64_chain",
       plan::Project(
           plan::Filter(plan::Scan(&table),
                        eb::And(eb::Gt(a, Lit(int64_t{0})),
                                eb::Lt(b, Lit(int64_t{500})))),
           {eb::Add(eb::Mul(a, b), eb::Sub(a, b)), eb::Mul(a, a)},
           {"mab", "aa"})});
  // TPC-H Q6 expression shape: float comparison chain + revenue product.
  chains.push_back(
      {"q6_float",
       plan::Project(
           plan::Filter(plan::Scan(&table),
                        eb::And(eb::Lt(x, Lit(24.0)),
                                eb::And(eb::Ge(y, Lit(0.05)),
                                        eb::Le(y, Lit(0.07))))),
           {eb::Mul(x, y)}, {"revenue"})});
  // TPC-H Q1 expression shape: decimal price*(1-disc) and
  // price*(1-disc)*(1+tax), sharing the (1-disc) subexpression via CSE.
  ExprPtr disc_price = eb::Mul(p, eb::Sub(Lit(int32_t{1}), q));
  chains.push_back(
      {"q1_decimal",
       plan::Project(
           plan::Filter(plan::Scan(&table),
                        eb::Le(q, eb::DecimalLit("0.07", 4, 2))),
           {disc_price, eb::Mul(disc_price, eb::Add(Lit(int32_t{1}), q))},
           {"disc_price", "charge"})});

  struct Tier {
    ExprPolicy policy;
    const char* name;
  };
  const Tier kTiers[] = {{ExprPolicy::kTreeOnly, "tree"},
                         {ExprPolicy::kFusedOnly, "fused"},
                         {ExprPolicy::kCompiledOnly, "compiled"},
                         {ExprPolicy::kAdaptive, "adaptive"}};

  exec::Driver driver(1);
  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("expr_fusion"));
  json.Field("rows", rows);
  json.Field("reps", reps);
  json.BeginArray("chains");

  std::printf("  %-12s %10s %10s %10s %10s %8s %8s\n", "chain", "tree(ms)",
              "fused(ms)", "compl(ms)", "adapt(ms)", "fus x", "cmp x");
  bool ok = true;
  for (const Chain& chain : chains) {
    int64_t tier_ns[4];
    uint64_t tier_sum[4];
    int64_t tier_rows[4];
    for (int t = 0; t < 4; t++) {
      ExecContext ctx;
      ctx.expr_policy = kTiers[t].policy;
      // Warm-up run also produces the checksum outside the timed region.
      Result<Table> out = driver.RunSingleTask(chain.plan, ctx);
      PHOTON_CHECK(out.ok());
      tier_rows[t] = out->num_rows();
      tier_sum[t] = bench::TableChecksum(*out);
      tier_ns[t] = bench::BestOf(reps, [&] {
        int64_t t0 = bench::NowNs();
        Result<Table> r = driver.RunSingleTask(chain.plan, ctx);
        PHOTON_CHECK(r.ok());
        return bench::NowNs() - t0;
      });
    }
    for (int t = 1; t < 4; t++) {
      if (tier_rows[t] != tier_rows[0] || tier_sum[t] != tier_sum[0]) {
        std::printf("  FAIL: %s %s diverges from tree (rows %lld vs %lld)\n",
                    chain.name, kTiers[t].name,
                    static_cast<long long>(tier_rows[t]),
                    static_cast<long long>(tier_rows[0]));
        ok = false;
      }
    }
    double fused_x = static_cast<double>(tier_ns[0]) / tier_ns[1];
    double compiled_x = static_cast<double>(tier_ns[0]) / tier_ns[2];
    double adaptive_x = static_cast<double>(tier_ns[0]) / tier_ns[3];
    double best = std::max(fused_x, std::max(compiled_x, adaptive_x));
    std::printf("  %-12s %10.2f %10.2f %10.2f %10.2f %7.2fx %7.2fx\n",
                chain.name, bench::Ms(tier_ns[0]), bench::Ms(tier_ns[1]),
                bench::Ms(tier_ns[2]), bench::Ms(tier_ns[3]), fused_x,
                compiled_x);
    if (best < min_speedup) {
      std::printf("  FAIL: %s best tier %.2fx < %.2fx gate\n", chain.name,
                  best, min_speedup);
      ok = false;
    }
    json.BeginObject();
    json.Field("chain", std::string(chain.name));
    json.Field("rows_out", tier_rows[0]);
    json.Field("tree_ms", bench::Ms(tier_ns[0]));
    json.Field("fused_ms", bench::Ms(tier_ns[1]));
    json.Field("compiled_ms", bench::Ms(tier_ns[2]));
    json.Field("adaptive_ms", bench::Ms(tier_ns[3]));
    json.Field("fused_speedup", fused_x);
    json.Field("compiled_speedup", compiled_x);
    json.Field("adaptive_speedup", adaptive_x);
    json.EndObject();
  }
  json.EndArray();
  json.Field("ok", std::string(ok ? "true" : "false"));
  json.EndObject();
  if (json_path != nullptr) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }
  if (!ok) return 1;
  std::printf("  all chains checksum-equal across tiers%s\n",
              min_speedup > 0 ? " and above the speedup gate" : "");
  return 0;
}
