// Observability overhead: proves the always-on metric path (per-task
// sharded counters, stage merges, profile assembly) costs < 2% on TPC-H
// Q1 and Q6 with span capture off, and measures the additional cost of
// span capture for investigation runs.
//
// Three configurations per query, same driver and thread count:
//   base     Driver::Run, no stage list, no profile (counters still tick
//            inside operators — that cost is unconditional by design)
//   profile  Driver::Run with stages + QueryProfile assembly, spans off
//   spans    profile + Tracer enabled (ring-buffer span capture)
//
// Usage: bench_obs_overhead [--sf F] [--threads N] [--reps R]
//                           [--max-overhead-pct P] [--json PATH]
//                           [--profile PATH] [--trace PATH]
// Exit status is non-zero when profile-mode overhead exceeds the bound
// (default 2%), making this runnable as a ctest smoke target.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "obs/trace.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace photon;
  double sf = 0.01;
  if (const char* v = bench::FlagValue(argc, argv, "--sf")) sf = std::atof(v);
  int threads = 4;
  if (const char* v = bench::FlagValue(argc, argv, "--threads")) {
    threads = std::atoi(v);
  }
  int reps = 5;
  if (const char* v = bench::FlagValue(argc, argv, "--reps")) {
    reps = std::atoi(v);
  }
  double max_overhead_pct = 2.0;
  if (const char* v = bench::FlagValue(argc, argv, "--max-overhead-pct")) {
    max_overhead_pct = std::atof(v);
  }
  const char* json_path = bench::FlagValue(argc, argv, "--json");
  const char* profile_path = bench::FlagValue(argc, argv, "--profile");
  const char* trace_path = bench::FlagValue(argc, argv, "--trace");

  std::printf(
      "Observability overhead: TPC-H SF=%.3f, %d threads, min of %d runs "
      "(budget %.1f%%)\n",
      sf, threads, reps, max_overhead_pct);
  tpch::TpchData data = tpch::GenerateTpch(sf);
  exec::Driver driver(threads);

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("obs_overhead"));
  json.Field("sf", sf);
  json.Field("threads", threads);
  json.BeginArray("queries");

  std::printf("  %4s %12s %14s %12s %10s %10s\n", "Q", "base (ms)",
              "profile (ms)", "spans (ms)", "prof ovh", "span ovh");
  bool within_budget = true;
  for (int q : {1, 6}) {
    Result<plan::PlanPtr> p = tpch::TpchQuery(q, data, sf);
    PHOTON_CHECK(p.ok());

    // Warm-up: first execution pays allocator/cache warm-up that would
    // otherwise bias against whichever configuration runs first.
    PHOTON_CHECK(driver.Run(*p).ok());

    // The three configurations are interleaved round-robin within each
    // rep so slow machine-level drift (frequency scaling, co-tenants)
    // affects all of them equally instead of whichever ran last.
    int64_t rows_base = 0, rows_prof = 0;
    int64_t base_ns = INT64_MAX;
    int64_t prof_ns = INT64_MAX;
    int64_t span_ns = INT64_MAX;
    obs::QueryProfile profile;
    for (int r = 0; r < reps; r++) {
      {
        int64_t t0 = bench::NowNs();
        Result<Table> out = driver.Run(*p);
        PHOTON_CHECK(out.ok());
        rows_base = out->num_rows();
        base_ns = std::min(base_ns, bench::NowNs() - t0);
      }
      {
        std::vector<exec::StageInfo> stages;
        obs::QueryProfile run_profile;
        int64_t t0 = bench::NowNs();
        Result<Table> out = driver.Run(*p, {}, &stages, &run_profile);
        PHOTON_CHECK(out.ok());
        rows_prof = out->num_rows();
        prof_ns = std::min(prof_ns, bench::NowNs() - t0);
        profile = std::move(run_profile);
      }
      {
        obs::Tracer::SetEnabled(true);
        obs::Tracer::Reset();
        std::vector<exec::StageInfo> stages;
        obs::QueryProfile run_profile;
        int64_t t0 = bench::NowNs();
        Result<Table> out = driver.Run(*p, {}, &stages, &run_profile);
        PHOTON_CHECK(out.ok());
        span_ns = std::min(span_ns, bench::NowNs() - t0);
        obs::Tracer::SetEnabled(false);
      }
    }
    PHOTON_CHECK(rows_base == rows_prof);

    double prof_ovh = 100.0 * (prof_ns - base_ns) / base_ns;
    double span_ovh = 100.0 * (span_ns - base_ns) / base_ns;
    std::printf("  %4d %12.2f %14.2f %12.2f %9.2f%% %9.2f%%\n", q,
                bench::Ms(base_ns), bench::Ms(prof_ns), bench::Ms(span_ns),
                prof_ovh, span_ovh);
    if (prof_ovh > max_overhead_pct) within_budget = false;

    json.BeginObject();
    json.Field("q", q);
    json.Field("base_ms", bench::Ms(base_ns));
    json.Field("profile_ms", bench::Ms(prof_ns));
    json.Field("spans_ms", bench::Ms(span_ns));
    json.Field("profile_overhead_pct", prof_ovh);
    json.Field("spans_overhead_pct", span_ovh);
    json.Field("rows", rows_prof);
    json.EndObject();

    if (profile_path != nullptr && q == 1) {
      profile.query = "q1";
      PHOTON_CHECK(profile.WriteJson(profile_path));
      std::printf("  wrote %s\n", profile_path);
    }
    if (trace_path != nullptr && q == 1) {
      PHOTON_CHECK(obs::Tracer::WriteChromeTrace(trace_path));
      std::printf("  wrote %s\n", trace_path);
    }
  }
  json.EndArray();
  json.Field("within_budget", std::string(within_budget ? "true" : "false"));
  json.EndObject();
  if (json_path != nullptr) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }
  if (!within_budget) {
    std::printf("  FAIL: profile-mode overhead above %.1f%% budget\n",
                max_overhead_pct);
    return 1;
  }
  std::printf("  profile-mode overhead within %.1f%% budget\n",
              max_overhead_pct);
  return 0;
}
