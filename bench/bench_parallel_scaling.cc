// Thread scaling of the morsel-parallel driver: every TPC-H query at
// 1/2/4/8 worker threads, each verified against the single-task
// reference. The paper's Photon scales by running one single-threaded
// task per core under the DBR driver (§2.2, Figure 1); this bench is the
// miniature equivalent — one Driver, morsels claimed from a shared queue,
// partial-aggregate / shared-build / merge-sort parallel breakers.
//
// Usage: bench_parallel_scaling [sf] [--sf F] [--json PATH]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace photon;
  double sf = 0.05;
  if (argc > 1 && argv[1][0] != '-') sf = std::atof(argv[1]);
  if (const char* v = bench::FlagValue(argc, argv, "--sf")) sf = std::atof(v);
  const char* json_path = bench::FlagValue(argc, argv, "--json");

  const int kThreads[] = {1, 2, 4, 8};
  constexpr int kNumConfigs = 4;

  std::printf("Parallel scaling: TPC-H SF=%.3f through Driver::Run\n", sf);
  tpch::TpchData data = tpch::GenerateTpch(sf);
  std::printf("  lineitem rows: %lld\n",
              static_cast<long long>(data.lineitem.num_rows()));
  std::printf("  %4s %10s %10s %10s %10s %9s %8s\n", "Q", "1t (ms)",
              "2t (ms)", "4t (ms)", "8t (ms)", "8t-spdup", "rows");

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("parallel_scaling"));
  json.Field("sf", sf);
  json.BeginArray("queries");

  double log_sum[kNumConfigs] = {0, 0, 0, 0};
  int count = 0;
  int mismatches = 0;
  for (int q = 1; q <= 22; q++) {
    Result<plan::PlanPtr> p = tpch::TpchQuery(q, data, sf);
    PHOTON_CHECK(p.ok());

    exec::Driver reference(1);
    int64_t ref_rows = 0;
    uint64_t ref_checksum = 0;
    int64_t base_ns = bench::BestOf(2, [&] {
      return bench::TimeSingleTask(&reference, *p, &ref_rows, &ref_checksum);
    });

    int64_t ns[kNumConfigs];
    for (int c = 0; c < kNumConfigs; c++) {
      exec::Driver driver(kThreads[c]);
      int64_t rows = 0;
      uint64_t checksum = 0;
      ns[c] = bench::BestOf(
          2, [&] { return bench::TimeDriver(&driver, *p, &rows, &checksum); });
      if (rows != ref_rows || checksum != ref_checksum) {
        std::printf("  Q%d @%dt MISMATCH: %lld rows (single-task %lld)\n", q,
                    kThreads[c], static_cast<long long>(rows),
                    static_cast<long long>(ref_rows));
        mismatches++;
      }
      log_sum[c] += std::log(static_cast<double>(base_ns) / ns[c]);
    }
    std::printf("  %4d %10.1f %10.1f %10.1f %10.1f %8.2fx %8lld\n", q,
                bench::Ms(ns[0]), bench::Ms(ns[1]), bench::Ms(ns[2]),
                bench::Ms(ns[3]),
                static_cast<double>(base_ns) / ns[kNumConfigs - 1],
                static_cast<long long>(ref_rows));

    json.BeginObject();
    json.Field("q", q);
    json.Field("single_task_ms", bench::Ms(base_ns));
    json.Field("rows", ref_rows);
    json.BeginArray("threads");
    for (int c = 0; c < kNumConfigs; c++) {
      json.BeginObject();
      json.Field("n", kThreads[c]);
      json.Field("ms", bench::Ms(ns[c]));
      json.Field("speedup", static_cast<double>(base_ns) / ns[c]);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    count++;
  }

  std::printf("  geomean speedup vs single task:");
  json.EndArray();
  json.BeginArray("geomean_speedups");
  for (int c = 0; c < kNumConfigs; c++) {
    double g = std::exp(log_sum[c] / count);
    std::printf("  %dt=%.2fx", kThreads[c], g);
    json.BeginObject();
    json.Field("n", kThreads[c]);
    json.Field("speedup", g);
    json.EndObject();
  }
  std::printf("\n");
  json.EndArray();
  json.Field("mismatches", mismatches);
  json.EndObject();
  if (mismatches > 0) {
    std::printf("  %d runs MISMATCHED the single-task reference\n",
                mismatches);
  }
  if (json_path != nullptr) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }
  return mismatches == 0 ? 0 : 1;
}
