// Figure 5: SELECT collect_list(strcol) GROUP BY intcol, sweeping the
// number of integer groups.
//
// The baseline implements collect_list with per-group heap containers
// (DBR's Scala collections, which also disqualify it from code
// generation); Photon pools list nodes in a shared arena and resolves
// groups through the vectorized hash table. Paper: up to 5.7x.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "expr/builder.h"

namespace photon {
namespace {

Table MakeStrTable(int64_t rows, int64_t groups, uint64_t seed) {
  Schema schema({Field("g", DataType::Int64(), false),
                 Field("s", DataType::String(), false)});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, groups - 1)),
                       Value::String(rng.NextAsciiString(12))});
  }
  return builder.Finish();
}

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const int64_t kRows = 400000;
  std::printf(
      "Figure 5: collect_list grouping aggregation (%lld rows, 12-char "
      "strings)\n",
      static_cast<long long>(kRows));
  std::printf("  %10s %14s %14s %9s\n", "groups", "Photon (ms)", "DBR (ms)",
              "speedup");

  for (int64_t groups : {10, 100, 1000, 10000, 100000}) {
    Table t = MakeStrTable(kRows, groups, 42);
    plan::PlanPtr scan = plan::Scan(&t);
    plan::PlanPtr p = plan::Aggregate(
        scan, {plan::ColOf(scan, "g")}, {"g"},
        {AggregateSpec{AggKind::kCollectList, plan::ColOf(scan, "s"),
                       "lst"}});
    int64_t photon_ns =
        bench::BestOf(3, [&] { return bench::TimePhoton(p); });
    int64_t dbr_ns =
        bench::BestOf(1, [&] { return bench::TimeBaseline(p); });
    std::printf("  %10lld %14.1f %14.1f %8.2fx\n",
                static_cast<long long>(groups), bench::Ms(photon_ns),
                bench::Ms(dbr_ns),
                static_cast<double>(dbr_ns) / photon_ns);
  }
  std::printf("  (paper: up to 5.7x)\n");
  return 0;
}
