// Figure 9: adaptive join compaction (TPC-DS Q24-flavored workload).
//
// Upstream filtering leaves probe batches sparse: a 2048-capacity batch
// arrives at the join with only a handful of active rows. The vectorized
// engine then pays its per-batch costs (kernel dispatch, scratch
// management, batched probe setup, downstream operator overhead) for a few
// rows at a time — §6.4 notes this "causes high interpretation overhead in
// downstream operators", to the point that Photon *without* compaction
// regresses against the row-at-a-time engine, which by construction only
// ever touches surviving tuples. Adaptive compaction coalesces sparse
// batches into dense ones before the probe.
//
// To isolate exactly this effect (rather than the shared scan+filter cost,
// which is identical in all configurations), the probe input here is
// delivered as already-sparse batches: 2048-row batches with 1-in-256 rows
// active. The baseline consumes the same surviving rows row-at-a-time.
// Paper: compaction ~1.5x over no-compaction and ~1.55x over DBR, with
// no-compaction *losing* to DBR.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "expr/builder.h"
#include "ops/hash_aggregate.h"
#include "ops/hash_join.h"
#include "ops/project.h"
#include "ops/scan.h"

namespace photon {
namespace {

constexpr int kSparsity = 256;  // 1 in 256 rows survives the "filter"

Schema FactSchema() {
  return Schema({Field("sk", DataType::Int64(), false),
                 Field("qty", DataType::Int64(), false)});
}

Table MakeFact(int64_t rows, uint64_t seed) {
  TableBuilder builder(FactSchema());
  Rng rng(seed);
  for (int64_t i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, 199999)),
                       Value::Int64(rng.Uniform(1, 100))});
  }
  return builder.Finish();
}

Table MakeDim(int64_t rows, uint64_t seed) {
  Schema schema({Field("dk", DataType::Int64(), false),
                 Field("cat", DataType::Int64(), false)});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(i), Value::Int64(rng.Uniform(0, 50))});
  }
  return builder.Finish();
}

/// Emits the fact table as zero-copy view batches whose position list
/// keeps only every 256th row — the state in which a selective upstream
/// filter leaves them. Zero-copy so the shared scan cost doesn't dilute
/// the per-batch overhead this figure isolates.
class SparseScan : public Operator {
 public:
  explicit SparseScan(const Table* table)
      : Operator(table->schema()), table_(table) {}

  Status Open() override {
    next_ = 0;
    return Status::OK();
  }

  Result<ColumnBatch*> GetNextImpl() override {
    if (next_ >= table_->num_batches()) return nullptr;
    const ColumnBatch& src = table_->batch(next_++);
    if (view_ == nullptr || view_->capacity() < src.num_rows()) {
      view_ = ColumnBatch::MakeView(table_->schema(), src.capacity());
    }
    for (int c = 0; c < src.num_columns(); c++) {
      view_->SetColumnView(c, const_cast<ColumnVector*>(src.column(c)));
    }
    view_->set_num_rows(src.num_rows());
    int32_t* pos = view_->mutable_pos_list();
    int active = 0;
    for (int i = 0; i < src.num_rows(); i += kSparsity) pos[active++] = i;
    view_->SetActiveRows(active);
    return view_.get();
  }

  std::string name() const override { return "SparseScan"; }

 private:
  const Table* table_;
  int next_ = 0;
  std::unique_ptr<ColumnBatch> view_;
};

int64_t RunPhoton(const Table& fact, const Table& dim, bool compaction) {
  auto join = std::make_unique<HashJoinOperator>(
      std::make_unique<InMemoryScanOperator>(&dim),
      std::make_unique<SparseScan>(&fact),
      std::vector<ExprPtr>{eb::Col(0, DataType::Int64(), "dk")},
      std::vector<ExprPtr>{eb::Col(0, DataType::Int64(), "sk")},
      JoinType::kInner, ExecContext{}, nullptr, compaction);
  // Joined schema: [sk, qty, dk, cat]. Post-join expression work and an
  // aggregation, like Q24's tail.
  std::vector<ExprPtr> exprs = {
      eb::Col(3, DataType::Int64(), "cat"),
      eb::Add(eb::Mul(eb::Col(1, DataType::Int64(), "qty"),
                      eb::Lit(int64_t{3})),
              eb::Col(0, DataType::Int64(), "sk")),
  };
  auto project = std::make_unique<ProjectOperator>(
      std::move(join), exprs, std::vector<std::string>{"cat", "amount"});
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kSum, eb::Col(1, DataType::Int64(), "amount"),
                  "sum_amount"});
  aggs.push_back({AggKind::kCountStar, nullptr, "n"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(project),
      std::vector<ExprPtr>{eb::Col(0, DataType::Int64(), "cat")},
      std::vector<std::string>{"cat"}, std::move(aggs));
  int64_t t0 = bench::NowNs();
  Result<Table> result = CollectAll(agg.get());
  int64_t elapsed = bench::NowNs() - t0;
  PHOTON_CHECK(result.ok());
  return elapsed;
}

int64_t RunBaseline(const Table& sparse_rows, const Table& dim) {
  // The row engine only ever sees the surviving tuples.
  plan::PlanPtr probe = plan::Scan(&sparse_rows);
  plan::PlanPtr build = plan::Scan(&dim);
  plan::PlanPtr j = plan::Join(probe, build, JoinType::kInner,
                               {plan::ColOf(probe, "sk")},
                               {plan::ColOf(build, "dk")});
  plan::PlanPtr proj = plan::Project(
      j,
      {plan::ColOf(j, "cat"),
       eb::Add(eb::Mul(plan::ColOf(j, "qty"), eb::Lit(int64_t{3})),
               plan::ColOf(j, "sk"))},
      {"cat", "amount"});
  plan::PlanPtr agg = plan::Aggregate(
      proj, {plan::ColOf(proj, "cat")}, {"cat"},
      {AggregateSpec{AggKind::kSum, plan::ColOf(proj, "amount"),
                     "sum_amount"},
       AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  return photon::bench::TimeBaseline(agg, nullptr,
                                     plan::BaselineJoinImpl::kShuffledHash);
}

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const int64_t kFactRows = 8000000;
  const int64_t kDimRows = 200000;
  std::printf(
      "Figure 9: adaptive join compaction. Probe: %lld rows in "
      "2048-capacity batches with 1/%d active; build: %lld rows\n",
      static_cast<long long>(kFactRows), kSparsity,
      static_cast<long long>(kDimRows));
  Table fact = MakeFact(kFactRows, 3);
  Table dim = MakeDim(kDimRows, 4);

  // Materialize the surviving rows for the row-engine run.
  TableBuilder survivors(FactSchema());
  for (int b = 0; b < fact.num_batches(); b++) {
    const ColumnBatch& batch = fact.batch(b);
    for (int i = 0; i < batch.num_rows(); i += kSparsity) {
      survivors.AppendRow({batch.column(0)->GetValue(i),
                           batch.column(1)->GetValue(i)});
    }
  }
  Table sparse_rows = survivors.Finish();
  std::printf("  surviving rows: %lld\n",
              static_cast<long long>(sparse_rows.num_rows()));

  int64_t dbr_ns =
      bench::BestOf(3, [&] { return RunBaseline(sparse_rows, dim); });
  int64_t no_compact_ns =
      bench::BestOf(3, [&] { return RunPhoton(fact, dim, false); });
  int64_t compact_ns =
      bench::BestOf(3, [&] { return RunPhoton(fact, dim, true); });

  std::printf("  DBR (rows, survivors only): %9.1f ms\n", bench::Ms(dbr_ns));
  std::printf("  Photon, no compaction:      %9.1f ms\n",
              bench::Ms(no_compact_ns));
  std::printf("  Photon, with compaction:    %9.1f ms\n",
              bench::Ms(compact_ns));
  std::printf("  compaction vs no-compaction: %.2fx (paper: ~1.5x)\n",
              static_cast<double>(no_compact_ns) / compact_ns);
  std::printf("  compaction vs DBR:           %.2fx (paper: ~1.55x)\n",
              static_cast<double>(dbr_ns) / compact_ns);
  std::printf("  no-compaction vs DBR:        %.2fx (paper: <1x — "
              "sparse batches can lose to the row engine)\n",
              static_cast<double>(dbr_ns) / no_compact_ns);
  return 0;
}
