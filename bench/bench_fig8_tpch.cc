// Figure 8: all 22 TPC-H queries, Photon vs the baseline ("DBR") engine
// over identical logical plans. The paper (SF=3000 on an 8-node cluster)
// reports an average per-query speedup of ~4x with a 23x outlier on Q1,
// which is bottlenecked on decimal arithmetic (DBR falls back to
// BigDecimal above 18 digits of precision; Photon stays in native int128).
//
// This reproduction runs at a laptop scale factor; the *shape* — Photon
// wins everywhere, decimal-heavy scans win biggest — is the target, not
// the absolute numbers.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace photon;
  double sf = 0.01;
  if (argc > 1) sf = std::atof(argv[1]);
  std::printf("Figure 8: TPC-H SF=%.3f, Photon vs DBR (min of runs)\n", sf);
  tpch::TpchData data = tpch::GenerateTpch(sf);
  std::printf("  lineitem rows: %lld\n",
              static_cast<long long>(data.lineitem.num_rows()));
  std::printf("  %4s %12s %12s %9s %8s\n", "Q", "Photon (ms)", "DBR (ms)",
              "speedup", "rows");

  double log_speedup_sum = 0;
  double max_speedup = 0;
  int max_q = 0;
  int count = 0;
  for (int q = 1; q <= 22; q++) {
    Result<plan::PlanPtr> p = tpch::TpchQuery(q, data, sf);
    PHOTON_CHECK(p.ok());
    int64_t rows = 0;
    int64_t photon_ns =
        bench::BestOf(2, [&] { return bench::TimePhoton(*p, &rows); });
    int64_t dbr_ns =
        bench::BestOf(1, [&] { return bench::TimeBaseline(*p); });
    double speedup = static_cast<double>(dbr_ns) / photon_ns;
    std::printf("  %4d %12.1f %12.1f %8.2fx %8lld\n", q,
                bench::Ms(photon_ns), bench::Ms(dbr_ns), speedup,
                static_cast<long long>(rows));
    log_speedup_sum += std::log(speedup);
    if (speedup > max_speedup) {
      max_speedup = speedup;
      max_q = q;
    }
    count++;
  }
  std::printf(
      "  geometric-mean speedup: %.2fx (paper arithmetic avg: ~4x); max: "
      "%.2fx on Q%d (paper: 23x on Q1)\n",
      std::exp(log_speedup_sum / count), max_speedup, max_q);
  return 0;
}
