// Figure 8: all 22 TPC-H queries, Photon vs the baseline ("DBR") engine
// over identical logical plans. The paper (SF=3000 on an 8-node cluster)
// reports an average per-query speedup of ~4x with a 23x outlier on Q1,
// which is bottlenecked on decimal arithmetic (DBR falls back to
// BigDecimal above 18 digits of precision; Photon stays in native int128).
//
// This reproduction runs at a laptop scale factor; the *shape* — Photon
// wins everywhere, decimal-heavy scans win biggest — is the target, not
// the absolute numbers.
//
// Usage: bench_fig8_tpch [sf] [--sf F] [--threads N] [--json PATH]
//   --threads N  run Photon through the morsel-parallel driver with N
//                worker threads (default 1 = single task). Every parallel
//                result is verified against the single-task reference by
//                row count and order-insensitive checksum.
//   --json PATH  also write per-query results as JSON.
//   --profile DIR  write a QueryProfile JSON per query (profile-q<N>.json)
//                from a final profiled driver run.
//   --expr-policy P  pin the expression-evaluation tier (DESIGN.md §12):
//                adaptive (default), tree (pre-fusion interpreter),
//                fused, compiled. Results must be bit-identical across
//                policies; the tree/adaptive delta is the fusion win.
//   --optimize   run Photon with the cost-based optimizer (DESIGN.md §14)
//                rewriting each hand-ordered plan first. The hand plans
//                are already well-ordered, so this measures optimizer
//                invariance (results must match) and rewrite overhead,
//                not recovery — bench_opt_recovery measures recovery.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace photon;
  double sf = 0.01;
  if (argc > 1 && argv[1][0] != '-') sf = std::atof(argv[1]);
  if (const char* v = bench::FlagValue(argc, argv, "--sf")) sf = std::atof(v);
  int threads = 1;
  if (const char* v = bench::FlagValue(argc, argv, "--threads")) {
    threads = std::atoi(v);
  }
  const char* json_path = bench::FlagValue(argc, argv, "--json");
  const char* profile_dir = bench::FlagValue(argc, argv, "--profile");
  ExecContext exec_ctx;
  const char* policy_name = "adaptive";
  if (const char* v = bench::FlagValue(argc, argv, "--expr-policy")) {
    policy_name = v;
    if (std::strcmp(v, "adaptive") == 0) {
      exec_ctx.expr_policy = ExprPolicy::kAdaptive;
    } else if (std::strcmp(v, "tree") == 0) {
      exec_ctx.expr_policy = ExprPolicy::kTreeOnly;
    } else if (std::strcmp(v, "fused") == 0) {
      exec_ctx.expr_policy = ExprPolicy::kFusedOnly;
    } else if (std::strcmp(v, "compiled") == 0) {
      exec_ctx.expr_policy = ExprPolicy::kCompiledOnly;
    } else {
      std::fprintf(stderr, "unknown --expr-policy %s\n", v);
      return 1;
    }
  }

  bool optimize = bench::HasFlag(argc, argv, "--optimize");
  if (optimize) exec_ctx.optimizer = OptimizerPolicy::kOn;

  std::printf(
      "Figure 8: TPC-H SF=%.3f, Photon (%d thread%s, expr=%s%s) vs DBR (min "
      "of runs)\n",
      sf, threads, threads == 1 ? "" : "s", policy_name,
      optimize ? ", optimizer=on" : "");
  tpch::TpchData data = tpch::GenerateTpch(sf);
  std::printf("  lineitem rows: %lld\n",
              static_cast<long long>(data.lineitem.num_rows()));
  std::printf("  %4s %12s %12s %9s %8s\n", "Q", "Photon (ms)", "DBR (ms)",
              "speedup", "rows");

  exec::Driver driver(threads);
  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("fig8_tpch"));
  json.Field("sf", sf);
  json.Field("threads", threads);
  json.Field("expr_policy", std::string(policy_name));
  json.BeginArray("queries");

  double log_speedup_sum = 0;
  double max_speedup = 0;
  int max_q = 0;
  int count = 0;
  int mismatches = 0;
  for (int q = 1; q <= 22; q++) {
    Result<plan::PlanPtr> p = tpch::TpchQuery(q, data, sf);
    PHOTON_CHECK(p.ok());
    int64_t rows = 0;
    uint64_t checksum = 0;
    int64_t photon_ns;
    if (threads > 1) {
      photon_ns = bench::BestOf(2, [&] {
        return bench::TimeDriver(&driver, *p, &rows, &checksum, exec_ctx);
      });
      // The parallel plan must reproduce the single-task result exactly.
      int64_t ref_rows = 0;
      uint64_t ref_checksum = 0;
      bench::TimeSingleTask(&driver, *p, &ref_rows, &ref_checksum, exec_ctx);
      if (rows != ref_rows || checksum != ref_checksum) {
        std::printf("  Q%d MISMATCH: %lld rows (single-task %lld)\n", q,
                    static_cast<long long>(rows),
                    static_cast<long long>(ref_rows));
        mismatches++;
      }
    } else {
      photon_ns = bench::BestOf(2, [&] {
        return bench::TimeSingleTask(&driver, *p, &rows, &checksum, exec_ctx);
      });
    }
    int64_t dbr_ns =
        bench::BestOf(1, [&] { return bench::TimeBaseline(*p); });
    double speedup = static_cast<double>(dbr_ns) / photon_ns;
    std::printf("  %4d %12.1f %12.1f %8.2fx %8lld\n", q,
                bench::Ms(photon_ns), bench::Ms(dbr_ns), speedup,
                static_cast<long long>(rows));
    json.BeginObject();
    json.Field("q", q);
    json.Field("photon_ms", bench::Ms(photon_ns));
    json.Field("dbr_ms", bench::Ms(dbr_ns));
    json.Field("speedup", speedup);
    json.Field("rows", rows);
    json.Field("checksum", static_cast<int64_t>(checksum));
    json.EndObject();
    if (profile_dir != nullptr) {
      obs::QueryProfile profile;
      PHOTON_CHECK(driver.Run(*p, {}, nullptr, &profile).ok());
      profile.query = "q" + std::to_string(q);
      std::string path = std::string(profile_dir) + "/profile-q" +
                         std::to_string(q) + ".json";
      if (!profile.WriteJson(path)) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
      }
    }
    log_speedup_sum += std::log(speedup);
    if (speedup > max_speedup) {
      max_speedup = speedup;
      max_q = q;
    }
    count++;
  }
  double geomean = std::exp(log_speedup_sum / count);
  std::printf(
      "  geometric-mean speedup: %.2fx (paper arithmetic avg: ~4x); max: "
      "%.2fx on Q%d (paper: 23x on Q1)\n",
      geomean, max_speedup, max_q);
  if (mismatches > 0) {
    std::printf("  %d queries MISMATCHED the single-task reference\n",
                mismatches);
  }
  json.EndArray();
  json.Field("geomean_speedup", geomean);
  json.Field("mismatches", mismatches);
  json.EndObject();
  if (json_path != nullptr) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }
  return mismatches == 0 ? 0 : 1;
}
