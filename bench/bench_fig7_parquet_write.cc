// Figure 7: writing a six-column table (int, long, date, timestamp,
// string, boolean) to the (simulated) object store in the columnar file
// format, with the runtime broken down into encode / compress / write.
//
// Photon's writer uses vectorized encoders — the vectorized hash table for
// dictionary building, word-wise bit-packing, typed stats kernels. The
// baseline mirrors Parquet-MR: row-at-a-time boxed appends, a
// serialized-key dictionary map, bit-by-bit packing. Paper: ~2x end to
// end, with the gap concentrated in encoding; compression and IO are the
// same for both.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "storage/baseline_file_writer.h"
#include "storage/format.h"

namespace photon {
namespace {

Table MakeSixColumnTable(int64_t rows, uint64_t seed) {
  Schema schema({Field("i", DataType::Int32()),
                 Field("l", DataType::Int64()),
                 Field("d", DataType::Date32()),
                 Field("t", DataType::Timestamp()),
                 Field("s", DataType::String()),
                 Field("b", DataType::Boolean())});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int64_t r = 0; r < rows; r++) {
    builder.AppendRow(
        {Value::Int32(static_cast<int32_t>(rng.Uniform(0, 1000000))),
         Value::Int64(rng.Uniform(0, 1LL << 44)),
         Value::Date32(static_cast<int32_t>(rng.Uniform(8000, 11000))),
         Value::Timestamp(rng.Uniform(0, 1LL << 48)),
         // Low-cardinality strings: the dictionary-encoding hot path.
         Value::String("customer-region-" +
                       std::to_string(rng.Uniform(0, 500))),
         Value::Boolean(rng.NextBool())});
  }
  return builder.Finish();
}

void Report(const char* label, int64_t total_ns, const WriteStats& stats) {
  std::printf(
      "  %-8s total %8.1f ms | encode %8.1f ms | compress %8.1f ms | "
      "write %6.1f ms | %lld bytes\n",
      label, bench::Ms(total_ns), bench::Ms(stats.encode_ns),
      bench::Ms(stats.compress_ns), bench::Ms(stats.io_ns),
      static_cast<long long>(stats.bytes_written));
}

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const int64_t kRows = 1000000;
  std::printf(
      "Figure 7: columnar file write, %lld rows x 6 columns, to simulated "
      "object store\n",
      static_cast<long long>(kRows));
  Table t = MakeSixColumnTable(kRows, 11);
  // Simulated cloud store: 5ms/put latency + 400 MB/s bandwidth, so the
  // "write files" bar exists like in the paper's S3 runs.
  ObjectStore::Options io;
  io.put_latency_us = 5000;
  io.bandwidth_bytes_per_sec = 400LL * 1024 * 1024;
  ObjectStore store(io);

  WriteStats photon_stats;
  int64_t t0 = bench::NowNs();
  Result<FileMeta> m1 = WriteTableToStore(t, &store, "fig7/photon.pho", {},
                                          &photon_stats);
  int64_t photon_total = bench::NowNs() - t0;
  PHOTON_CHECK(m1.ok());

  WriteStats dbr_stats;
  t0 = bench::NowNs();
  Result<FileMeta> m2 = BaselineWriteTableToStore(
      t, &store, "fig7/baseline.pho", {}, &dbr_stats);
  int64_t dbr_total = bench::NowNs() - t0;
  PHOTON_CHECK(m2.ok());

  Report("Photon", photon_total, photon_stats);
  Report("DBR", dbr_total, dbr_stats);
  std::printf("  end-to-end speedup: %.2fx (paper: ~2x)\n",
              static_cast<double>(dbr_total) / photon_total);
  std::printf("  encoding speedup:   %.2fx (the paper's main contributor)\n",
              static_cast<double>(dbr_stats.encode_ns) /
                  std::max<int64_t>(1, photon_stats.encode_ns));
  return 0;
}
