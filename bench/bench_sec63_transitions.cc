// §6.3: overhead of JVM transitions.
//
// Reads a single integer column through the full boundary stack — adapter
// node into Photon, Photon scan, transition node pivoting back to rows for
// a no-op row consumer — and reports where the time goes. The paper
// measures 0.06% in JNI internals + 0.2% in the adapter, with ~95% spent
// boxing rows for the (no-op) UDF; it also measures a JNI call at ~23ns,
// comparable to a virtual call. Here the "JNI call" is the adapter's
// virtual-dispatch hop, measured directly.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "ops/scan.h"
#include "plan/transition.h"

namespace photon {
namespace {

Table MakeIntColumn(int64_t rows) {
  Schema schema({Field("x", DataType::Int64(), false)});
  TableBuilder builder(schema);
  Rng rng(5);
  for (int64_t i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, 1000))});
  }
  return builder.Finish();
}

}  // namespace
}  // namespace photon

namespace photon {
namespace {

/// A no-op source: GetNext returns end-of-stream forever. Used to measure
/// the pure cost of one boundary crossing (virtual dispatch + metric
/// bookkeeping) — the analogue of the paper's ~23ns JNI call measurement.
class NullSource : public Operator {
 public:
  NullSource() : Operator(Schema({Field("x", DataType::Int64())})) {}
  Status Open() override { return Status::OK(); }
  Result<ColumnBatch*> GetNextImpl() override { return nullptr; }
  std::string name() const override { return "NullSource"; }
};

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const int64_t kRows = 4000000;
  Table t = MakeIntColumn(kRows);
  std::printf("Section 6.3: transition overhead, %lld-row int column\n",
              static_cast<long long>(kRows));

  // (0) Pure boundary-crossing cost: millions of calls through the
  // adapter's indirect-dispatch hop (paper: a JNI call costs ~23ns,
  // comparable to a C++ virtual call).
  {
    AdapterOperator adapter(std::make_unique<NullSource>());
    PHOTON_CHECK(adapter.Open().ok());
    const int64_t kCalls = 3000000;
    int64_t t0 = bench::NowNs();
    for (int64_t i = 0; i < kCalls; i++) {
      Result<ColumnBatch*> r = adapter.GetNext();
      PHOTON_CHECK(r.ok());
    }
    int64_t per_call = (bench::NowNs() - t0) / kCalls;
    std::printf("  boundary call cost:              %9lld ns/call "
                "(paper JNI: ~23 ns)\n",
                static_cast<long long>(per_call));
  }

  // (1) Baseline: Photon scan alone (columnar end to end).
  int64_t scan_ns = bench::BestOf(3, [&] {
    InMemoryScanOperator scan(&t);
    PHOTON_CHECK(scan.Open().ok());
    int64_t t0 = bench::NowNs();
    int64_t rows = 0;
    while (true) {
      Result<ColumnBatch*> b = scan.GetNext();
      PHOTON_CHECK(b.ok());
      if (*b == nullptr) break;
      rows += (*b)->num_active();
    }
    PHOTON_CHECK(rows == kRows);
    return bench::NowNs() - t0;
  });

  // (2) Adapter added: one simulated boundary crossing per batch.
  int64_t adapter_calls = 0;
  int64_t adapter_ns = bench::BestOf(3, [&] {
    AdapterOperator adapter(std::make_unique<InMemoryScanOperator>(&t));
    PHOTON_CHECK(adapter.Open().ok());
    int64_t t0 = bench::NowNs();
    while (true) {
      Result<ColumnBatch*> b = adapter.GetNext();
      PHOTON_CHECK(b.ok());
      if (*b == nullptr) break;
    }
    adapter_calls = adapter.boundary_calls();
    return bench::NowNs() - t0;
  });

  // (3) Full stack: adapter -> Photon -> transition -> no-op row consumer
  // (the row loop plays the paper's "serialize rows into Scala objects for
  // a no-op UDF": it boxes every value).
  int64_t full_ns = bench::BestOf(3, [&] {
    TransitionOperator transition(std::unique_ptr<Operator>(
        new AdapterOperator(std::make_unique<InMemoryScanOperator>(&t))));
    PHOTON_CHECK(transition.Open().ok());
    int64_t t0 = bench::NowNs();
    baseline::Row row;
    int64_t rows = 0;
    while (true) {
      Result<bool> ok = transition.Next(&row);
      PHOTON_CHECK(ok.ok());
      if (!*ok) break;
      rows++;
    }
    PHOTON_CHECK(rows == kRows);
    return bench::NowNs() - t0;
  });

  double adapter_overhead_ns =
      static_cast<double>(adapter_ns - scan_ns) / std::max<int64_t>(1,
                                                                    adapter_calls);
  std::printf("  columnar scan only:              %9.2f ms\n",
              bench::Ms(scan_ns));
  std::printf("  + adapter (boundary/batch):      %9.2f ms  (%lld calls, "
              "%.0f ns/call; paper: ~23ns JNI call)\n",
              bench::Ms(adapter_ns), static_cast<long long>(adapter_calls),
              adapter_overhead_ns > 0 ? adapter_overhead_ns : 0.0);
  std::printf("  + transition + row consumer:     %9.2f ms\n",
              bench::Ms(full_ns));
  std::printf(
      "  boundary share of end-to-end: %.3f%% (paper: <0.3%%); row "
      "pivot/boxing share: %.1f%% (paper: ~95%% incl. UDF)\n",
      100.0 * std::max<int64_t>(0, adapter_ns - scan_ns) / full_ns,
      100.0 * (full_ns - adapter_ns) / full_ns);
  return 0;
}
