// Ablations of Photon design choices beyond the paper's figures, using
// google-benchmark. Each pair isolates one decision DESIGN.md calls out:
//   - kernel specialization on NULL-freeness (§4.6, Listing 2);
//   - fused BETWEEN vs the equivalent conjunction (§3.3);
//   - the custom SIMD ASCII check vs the scalar loop (Figure 6's kernel);
//   - expression-scratch recycling (the §4.5 buffer pool) vs fresh
//     allocation per batch;
//   - word-wise vs bit-at-a-time bit-packing (Figure 7's encoder);
//   - LZ-compressed vs raw shuffle blocks.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "expr/builder.h"
#include "storage/bitpack.h"
#include "storage/compress.h"
#include "vector/column_batch.h"

namespace photon {
namespace {

std::unique_ptr<ColumnBatch> IntBatch(int n, bool with_nulls) {
  Schema schema({Field("x", DataType::Float64())});
  auto batch = std::make_unique<ColumnBatch>(schema, n);
  Rng rng(1);
  for (int i = 0; i < n; i++) {
    batch->column(0)->data<double>()[i] = rng.NextDouble() * 100;
    if (with_nulls && i % 17 == 0) batch->column(0)->SetNull(i);
  }
  batch->set_num_rows(n);
  batch->SetAllActive();
  return batch;
}

/// Kernel specialization: sqrt over a NULL-free batch where the metadata
/// is known (fast kernel, no branch) vs unknown-but-checked every batch vs
/// genuinely nullable data.
void BM_KernelNoNullsKnown(benchmark::State& state) {
  auto batch = IntBatch(kDefaultBatchSize, false);
  batch->column(0)->set_has_nulls(TriState::kNo);
  ExprPtr e = eb::Call("sqrt", {eb::Col(0, DataType::Float64())});
  EvalContext ctx;
  for (auto _ : state) {
    ctx.ResetPerBatch();
    batch->column(0)->set_has_nulls(TriState::kNo);
    benchmark::DoNotOptimize(e->Evaluate(batch.get(), &ctx));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultBatchSize);
}
BENCHMARK(BM_KernelNoNullsKnown);

void BM_KernelWithNulls(benchmark::State& state) {
  auto batch = IntBatch(kDefaultBatchSize, true);
  ExprPtr e = eb::Call("sqrt", {eb::Col(0, DataType::Float64())});
  EvalContext ctx;
  for (auto _ : state) {
    ctx.ResetPerBatch();
    batch->column(0)->set_has_nulls(TriState::kYes);
    benchmark::DoNotOptimize(e->Evaluate(batch.get(), &ctx));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultBatchSize);
}
BENCHMARK(BM_KernelWithNulls);

/// Fused BETWEEN vs the conjunction it replaces.
std::unique_ptr<ColumnBatch> I64Batch(int n) {
  Schema schema({Field("x", DataType::Int64())});
  auto batch = std::make_unique<ColumnBatch>(schema, n);
  Rng rng(2);
  for (int i = 0; i < n; i++) {
    batch->column(0)->data<int64_t>()[i] = rng.Uniform(0, 1000);
  }
  batch->set_num_rows(n);
  batch->SetAllActive();
  return batch;
}

void BM_BetweenFused(benchmark::State& state) {
  auto batch = I64Batch(kDefaultBatchSize);
  ExprPtr e = eb::Between(eb::Col(0, DataType::Int64()),
                          eb::Lit(int64_t{100}), eb::Lit(int64_t{900}));
  EvalContext ctx;
  for (auto _ : state) {
    ctx.ResetPerBatch();
    benchmark::DoNotOptimize(e->Evaluate(batch.get(), &ctx));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultBatchSize);
}
BENCHMARK(BM_BetweenFused);

void BM_BetweenConjunction(benchmark::State& state) {
  auto batch = I64Batch(kDefaultBatchSize);
  ExprPtr e =
      eb::And(eb::Ge(eb::Col(0, DataType::Int64()), eb::Lit(int64_t{100})),
              eb::Le(eb::Col(0, DataType::Int64()), eb::Lit(int64_t{900})));
  EvalContext ctx;
  for (auto _ : state) {
    ctx.ResetPerBatch();
    benchmark::DoNotOptimize(e->Evaluate(batch.get(), &ctx));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultBatchSize);
}
BENCHMARK(BM_BetweenConjunction);

/// SIMD vs scalar ASCII check (the Figure 6 kernel in isolation).
void BM_IsAsciiSimd(benchmark::State& state) {
  Rng rng(3);
  std::string s = rng.NextAsciiString(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsAscii(s.data(), s.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsAsciiSimd)->Arg(64)->Arg(1024)->Arg(65536);

void BM_IsAsciiScalar(benchmark::State& state) {
  Rng rng(3);
  std::string s = rng.NextAsciiString(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsAsciiScalar(s.data(), s.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsAsciiScalar)->Arg(64)->Arg(1024)->Arg(65536);

/// Scratch-vector recycling (buffer pool, §4.5) vs fresh allocations.
void BM_EvalScratchPooled(benchmark::State& state) {
  auto batch = I64Batch(kDefaultBatchSize);
  ExprPtr e = eb::Add(eb::Mul(eb::Col(0, DataType::Int64()),
                              eb::Lit(int64_t{3})),
                      eb::Lit(int64_t{7}));
  EvalContext ctx;  // reused across batches -> pool hits
  for (auto _ : state) {
    ctx.ResetPerBatch();
    benchmark::DoNotOptimize(e->Evaluate(batch.get(), &ctx));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultBatchSize);
}
BENCHMARK(BM_EvalScratchPooled);

void BM_EvalScratchFresh(benchmark::State& state) {
  auto batch = I64Batch(kDefaultBatchSize);
  ExprPtr e = eb::Add(eb::Mul(eb::Col(0, DataType::Int64()),
                              eb::Lit(int64_t{3})),
                      eb::Lit(int64_t{7}));
  for (auto _ : state) {
    EvalContext ctx;  // fresh context: every vector is a new allocation
    benchmark::DoNotOptimize(e->Evaluate(batch.get(), &ctx));
  }
  state.SetItemsProcessed(state.iterations() * kDefaultBatchSize);
}
BENCHMARK(BM_EvalScratchFresh);

/// Word-wise vs bit-at-a-time bit-packing.
void BM_BitPackFast(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint32_t> values(65536);
  for (auto& v : values) v = static_cast<uint32_t>(rng.Next() & 0x7FF);
  for (auto _ : state) {
    BinaryWriter out;
    BitPack(values.data(), static_cast<int>(values.size()), 11, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_BitPackFast);

void BM_BitPackSlow(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint32_t> values(65536);
  for (auto& v : values) v = static_cast<uint32_t>(rng.Next() & 0x7FF);
  for (auto _ : state) {
    BinaryWriter out;
    BitPackSlow(values.data(), static_cast<int>(values.size()), 11, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_BitPackSlow);

/// Compression codec on shuffle-like payloads.
std::string ShuffleLikePayload() {
  Rng rng(6);
  std::string out;
  for (int i = 0; i < 4000; i++) {
    out += "user-" + std::to_string(rng.Uniform(0, 500)) + ",";
    out += std::to_string(rng.Uniform(0, 1000000)) + ";";
  }
  return out;
}

void BM_CompressLz(benchmark::State& state) {
  std::string payload = ShuffleLikePayload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Compress(payload, Codec::kLz));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_CompressLz);

void BM_CompressNone(benchmark::State& state) {
  std::string payload = ShuffleLikePayload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Compress(payload, Codec::kNone));
  }
  state.SetBytesProcessed(state.iterations() * payload.size());
}
BENCHMARK(BM_CompressNone);

}  // namespace
}  // namespace photon

BENCHMARK_MAIN();
