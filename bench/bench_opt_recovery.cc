// Optimizer recovery: the deliberately pessimal TPC-H Q3/Q5/Q9/Q10 plans
// (src/tpch/tpch_misordered.cc — selective filters hoisted to the top,
// lineitem on build sides, semi-join reducers last) run with the
// cost-based optimizer (DESIGN.md §14) off and on. The off/on time ratio
// is the recovery factor; each recovered result is checksum-verified
// against the hand-ordered TpchQuery plan, and the hand-ordered time is
// reported as the target the optimizer should approach.
//
// Usage: bench_opt_recovery [--sf F] [--threads N] [--reps N]
//                           [--min-recovery R] [--json PATH]
//   --min-recovery R  exit nonzero unless the geomean recovery factor is
//                     at least R (the ctest smoke gates at 10).

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_misordered.h"
#include "tpch/tpch_queries.h"

int main(int argc, char** argv) {
  using namespace photon;
  double sf = 0.01;
  if (const char* v = bench::FlagValue(argc, argv, "--sf")) sf = std::atof(v);
  int threads = 1;
  if (const char* v = bench::FlagValue(argc, argv, "--threads")) {
    threads = std::atoi(v);
  }
  int reps = 2;
  if (const char* v = bench::FlagValue(argc, argv, "--reps")) {
    reps = std::atoi(v);
  }
  double min_recovery = 0;
  if (const char* v = bench::FlagValue(argc, argv, "--min-recovery")) {
    min_recovery = std::atof(v);
  }
  const char* json_path = bench::FlagValue(argc, argv, "--json");

  std::printf(
      "Optimizer recovery: misordered TPC-H SF=%.3f, %d thread%s (min of %d "
      "runs)\n",
      sf, threads, threads == 1 ? "" : "s", reps);
  tpch::TpchData data = tpch::GenerateTpch(sf);
  std::printf("  %4s %14s %13s %11s %10s %6s\n", "Q", "misordered(ms)",
              "recovered(ms)", "hand(ms)", "recovery", "rows");

  exec::Driver driver(threads);
  ExecContext opt_off;
  ExecContext opt_on;
  opt_on.optimizer = OptimizerPolicy::kOn;

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("opt_recovery"));
  json.Field("sf", sf);
  json.Field("threads", threads);
  json.BeginArray("queries");

  const int kQueries[] = {3, 5, 9, 10};
  double log_recovery_sum = 0;
  int count = 0;
  int mismatches = 0;
  for (int q : kQueries) {
    Result<plan::PlanPtr> mis = tpch::TpchMisorderedQuery(q, data);
    PHOTON_CHECK(mis.ok());
    Result<plan::PlanPtr> hand = tpch::TpchQuery(q, data, sf);
    PHOTON_CHECK(hand.ok());

    auto time = [&](const plan::PlanPtr& p, const ExecContext& ctx,
                    int64_t* rows, uint64_t* checksum) {
      return bench::BestOf(reps, [&] {
        return threads > 1
                   ? bench::TimeDriver(&driver, p, rows, checksum, ctx)
                   : bench::TimeSingleTask(&driver, p, rows, checksum, ctx);
      });
    };

    int64_t rows = 0, opt_rows = 0, hand_rows = 0;
    uint64_t sum = 0, opt_sum = 0, hand_sum = 0;
    int64_t mis_ns = time(*mis, opt_off, &rows, &sum);
    int64_t opt_ns = time(*mis, opt_on, &opt_rows, &opt_sum);
    int64_t hand_ns = time(*hand, opt_off, &hand_rows, &hand_sum);
    if (opt_rows != hand_rows || opt_sum != hand_sum || rows != hand_rows ||
        sum != hand_sum) {
      std::printf("  Q%d MISMATCH: misordered %lld / recovered %lld / hand "
                  "%lld rows\n",
                  q, static_cast<long long>(rows),
                  static_cast<long long>(opt_rows),
                  static_cast<long long>(hand_rows));
      mismatches++;
    }
    double recovery = static_cast<double>(mis_ns) / opt_ns;
    std::printf("  %4d %14.1f %13.1f %11.1f %9.2fx %6lld\n", q,
                bench::Ms(mis_ns), bench::Ms(opt_ns), bench::Ms(hand_ns),
                recovery, static_cast<long long>(hand_rows));
    json.BeginObject();
    json.Field("q", q);
    json.Field("misordered_ms", bench::Ms(mis_ns));
    json.Field("recovered_ms", bench::Ms(opt_ns));
    json.Field("hand_ms", bench::Ms(hand_ns));
    json.Field("recovery", recovery);
    json.Field("rows", hand_rows);
    json.EndObject();
    log_recovery_sum += std::log(recovery);
    count++;
  }
  double geomean = std::exp(log_recovery_sum / count);
  std::printf("  geometric-mean recovery: %.2fx\n", geomean);
  json.EndArray();
  json.Field("geomean_recovery", geomean);
  json.Field("mismatches", mismatches);
  json.EndObject();
  if (json_path != nullptr) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }
  if (mismatches > 0) {
    std::printf("  %d queries MISMATCHED\n", mismatches);
    return 1;
  }
  if (min_recovery > 0 && geomean < min_recovery) {
    std::printf("  FAIL: geomean recovery %.2fx below bound %.2fx\n", geomean,
                min_recovery);
    return 1;
  }
  return 0;
}
