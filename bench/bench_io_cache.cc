// IO cache + prefetch benchmark (src/io): scanning a TPC-H lineitem-like
// table from the simulated object store under S3-like latency, three ways:
//
//   cold+sync      every file GET pays full simulated latency, serially
//   cold+prefetch  async read-ahead overlaps GETs with decoding
//   warm           a re-scan served from the NVMe-style BlockCache
//
// This reproduces the paper's Lakehouse IO story (§2): hot data cached on
// local NVMe makes repeated scans compute-bound, and async IO hides cloud
// latency on cold scans. Expected ordering: warm << cold+prefetch <
// cold+sync, with warm >= 5x over cold under >= 200us GET latency.

#include <cstdio>

#include "bench_util.h"
#include "exec/thread_pool.h"
#include "io/block_cache.h"
#include "ops/file_scan.h"
#include "storage/format.h"
#include "tpch/tpch_gen.h"

namespace photon {
namespace {

/// Splits `table` into `num_files` columnar files under `prefix`.
std::vector<std::string> WriteLineitemFiles(const Table& table,
                                            ObjectStore* store,
                                            const std::string& prefix,
                                            int num_files) {
  std::vector<std::string> keys;
  int batches_per_file =
      (table.num_batches() + num_files - 1) / num_files;
  int next = 0;
  for (int f = 0; f < num_files && next < table.num_batches(); f++) {
    Table part(table.schema());
    for (int b = 0; b < batches_per_file && next < table.num_batches();
         b++, next++) {
      part.AppendBatch(CompactBatch(table.batch(next)));
    }
    std::string key = prefix + "/part-" + std::to_string(f) + ".pho";
    FormatWriteOptions options;
    options.row_group_rows = 16 * 1024;
    PHOTON_CHECK(WriteTableToStore(part, store, key, options).ok());
    keys.push_back(key);
  }
  return keys;
}

struct RunResult {
  int64_t ns = 0;
  int64_t rows = 0;
  int64_t cache_hits = 0;
  int64_t prefetch_wait_ns = 0;
};

RunResult RunScan(ObjectStore* store, const std::vector<std::string>& keys,
                  const Schema& schema, io::IoOptions io) {
  FileScanOperator scan(store, keys, schema, {}, nullptr, io);
  int64_t t0 = bench::NowNs();
  Result<Table> result = CollectAll(&scan);
  RunResult out;
  out.ns = bench::NowNs() - t0;
  PHOTON_CHECK(result.ok());
  out.rows = result->num_rows();
  scan.PublishMetrics();
  out.cache_hits = scan.op_metrics().Value(obs::Metric::kCacheHits);
  out.prefetch_wait_ns = scan.op_metrics().Value(obs::Metric::kPrefetchWaitNs);
  return out;
}

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const double kScale = 0.02;       // ~120k lineitem rows
  const int kFiles = 12;
  const int64_t kGetLatencyUs = 30000;  // S3-like time-to-first-byte
  const int64_t kBandwidth = 200LL * 1024 * 1024;

  std::printf(
      "IO cache bench: lineitem SF %.2f across %d files, "
      "GET latency %lld us, %lld MB/s\n",
      kScale, kFiles, static_cast<long long>(kGetLatencyUs),
      static_cast<long long>(kBandwidth / (1024 * 1024)));

  Table lineitem = tpch::GenerateTpch(kScale).lineitem;
  ObjectStore::Options store_options;
  store_options.get_latency_us = kGetLatencyUs;
  store_options.bandwidth_bytes_per_sec = kBandwidth;
  ObjectStore store(store_options);
  std::vector<std::string> keys =
      WriteLineitemFiles(lineitem, &store, "bench/lineitem", kFiles);
  Schema schema = lineitem.schema();

  // --- cold, synchronous: no cache, no prefetch --------------------------
  RunResult cold_sync = RunScan(&store, keys, schema, {});

  // --- cold, prefetch: async read-ahead, empty cache ---------------------
  ThreadPool pool(4);
  io::BlockCache prefetch_cache;
  io::IoOptions prefetch_io;
  prefetch_io.cache = &prefetch_cache;
  prefetch_io.prefetch_pool = &pool;
  prefetch_io.prefetch_depth = 4;
  RunResult cold_prefetch = RunScan(&store, keys, schema, prefetch_io);

  // --- warm: same cache, all blocks resident -----------------------------
  io::IoOptions warm_io;
  warm_io.cache = &prefetch_cache;
  RunResult warm = RunScan(&store, keys, schema, warm_io);

  PHOTON_CHECK(cold_sync.rows == warm.rows);
  PHOTON_CHECK(cold_sync.rows == cold_prefetch.rows);

  double speedup_warm = static_cast<double>(cold_sync.ns) / warm.ns;
  double speedup_prefetch =
      static_cast<double>(cold_sync.ns) / cold_prefetch.ns;
  io::BlockCache::Stats cache_stats = prefetch_cache.stats();

  std::printf("  %-16s %9.1f ms   (%lld rows)\n", "cold+sync",
              bench::Ms(cold_sync.ns),
              static_cast<long long>(cold_sync.rows));
  std::printf("  %-16s %9.1f ms   (%.2fx vs cold+sync, wait %.1f ms)\n",
              "cold+prefetch", bench::Ms(cold_prefetch.ns), speedup_prefetch,
              bench::Ms(cold_prefetch.prefetch_wait_ns));
  std::printf("  %-16s %9.1f ms   (%.2fx vs cold+sync, %lld cache hits)\n",
              "warm", bench::Ms(warm.ns), speedup_warm,
              static_cast<long long>(warm.cache_hits));
  std::printf(
      "  cache: %lld inserts, %lld bytes resident, %lld evictions\n",
      static_cast<long long>(cache_stats.inserts),
      static_cast<long long>(cache_stats.bytes_cached),
      static_cast<long long>(cache_stats.evictions));

  // Machine-readable summary, one JSON object per line like the other
  // bench_* harnesses' final reports.
  std::printf(
      "{\"bench\":\"io_cache\",\"rows\":%lld,\"files\":%d,"
      "\"get_latency_us\":%lld,\"cold_sync_ms\":%.3f,"
      "\"cold_prefetch_ms\":%.3f,\"warm_ms\":%.3f,"
      "\"speedup_prefetch\":%.2f,\"speedup_warm\":%.2f,"
      "\"warm_cache_hits\":%lld}\n",
      static_cast<long long>(cold_sync.rows), kFiles,
      static_cast<long long>(kGetLatencyUs), bench::Ms(cold_sync.ns),
      bench::Ms(cold_prefetch.ns), bench::Ms(warm.ns), speedup_prefetch,
      speedup_warm, static_cast<long long>(warm.cache_hits));

  if (speedup_warm < 5.0) {
    std::printf("WARNING: warm speedup %.2fx below the 5x target\n",
                speedup_warm);
  }
  if (cold_prefetch.ns >= cold_sync.ns) {
    std::printf("WARNING: prefetch did not beat synchronous cold scan\n");
  }
  return 0;
}
