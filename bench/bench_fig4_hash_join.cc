// Figure 4: SELECT count(*) FROM t1, t2 WHERE t1.id = t2.id.
//
// Compares Photon's vectorized hash join against the baseline engine's
// sort-merge join (Spark's default) and shuffled hash join on two integer
// tables. The paper reports Photon ~3-3.5x over DBR, attributing the win
// to the batched probe's memory-level parallelism (§6.1).

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "expr/builder.h"
#include "tpch/tpch_gen.h"

namespace photon {
namespace {

Table MakeIdTable(int64_t rows, uint64_t seed) {
  Schema schema({Field("id", DataType::Int64(), false)});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, rows - 1))});
  }
  return builder.Finish();
}

plan::PlanPtr CountJoin(const Table& t1, const Table& t2) {
  plan::PlanPtr probe = plan::Scan(&t1);
  plan::PlanPtr build = plan::Scan(&t2);
  build = plan::Project(build, {plan::ColOf(build, "id")}, {"id2"});
  plan::PlanPtr j =
      plan::Join(probe, build, JoinType::kInner, {plan::ColOf(probe, "id")},
                 {plan::ColOf(build, "id2")});
  return plan::Aggregate(j, {}, {},
                         {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
}

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const int64_t kRows = 1000000;  // scaled from the paper's 1GB tables
  std::printf("Figure 4: hash join microbenchmark "
              "(count(*) join, %lld x %lld int64 rows)\n",
              static_cast<long long>(kRows), static_cast<long long>(kRows));

  Table t1 = MakeIdTable(kRows, 1);
  Table t2 = MakeIdTable(kRows, 2);
  plan::PlanPtr p = CountJoin(t1, t2);

  int64_t rows = 0;
  int64_t photon_ns = bench::BestOf(
      3, [&] { return bench::TimePhoton(p, &rows); });
  std::printf("  Photon hash join:          %9.1f ms (result rows: %lld)\n",
              bench::Ms(photon_ns), static_cast<long long>(rows));

  int64_t smj_ns = bench::BestOf(1, [&] {
    return bench::TimeBaseline(p, &rows, plan::BaselineJoinImpl::kSortMerge);
  });
  std::printf("  DBR sort-merge join (SMJ): %9.1f ms\n", bench::Ms(smj_ns));

  int64_t shj_ns = bench::BestOf(1, [&] {
    return bench::TimeBaseline(p, &rows,
                               plan::BaselineJoinImpl::kShuffledHash);
  });
  std::printf("  DBR shuffled hash join:    %9.1f ms\n", bench::Ms(shj_ns));

  std::printf("  speedup vs SMJ: %.2fx  | vs SHJ: %.2fx   (paper: ~3-3.5x)\n",
              static_cast<double>(smj_ns) / photon_ns,
              static_cast<double>(shj_ns) / photon_ns);
  return 0;
}
