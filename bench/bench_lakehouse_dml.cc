// Mixed lakehouse read/write workload (DESIGN.md §15): W writer threads
// drive MERGE upserts through the copy-on-write executors while R reader
// threads scan the latest snapshot, once with the background compactor
// off and once with it on. Reports upsert throughput, commit conflicts,
// reader scan latency (p50/p95/max), and the final file count + cold
// full-scan time of each configuration — the compaction run should end
// with far fewer files and a faster scan at equal logical contents.
//
// Correctness gates (exit nonzero on violation, the ctest smoke relies
// on them):
//   - every committed version is claimed by exactly one transaction
//     (writer or compactor) — a duplicate is a lost commit;
//   - final row count == initial rows + total MERGE-inserted rows
//     (merges never delete, inserts are unique by key);
//   - both configurations end with identical logical row counts.
//
// Usage: bench_lakehouse_dml [--rows N] [--writers W] [--ops N]
//                            [--batch B] [--readers R] [--json PATH]

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "exec/compactor.h"
#include "exec/dml.h"
#include "expr/builder.h"
#include "storage/delta.h"
#include "storage/object_store.h"

namespace {

using namespace photon;

Schema KvSchema() {
  return Schema({Field("id", DataType::Int64()),
                 Field("val", DataType::Int64())});
}

Table KvRows(int64_t begin, int64_t end, int64_t bias) {
  TableBuilder b(KvSchema(), static_cast<int>(end - begin));
  for (int64_t i = begin; i < end; i++) {
    b.AppendRow({Value::Int64(i), Value::Int64(i + bias)});
  }
  return b.Finish();
}

struct RunStats {
  int64_t wall_ns = 0;
  int64_t commits = 0;
  int64_t rows_upserted = 0;
  int64_t rows_inserted = 0;
  int64_t conflicts = 0;
  int64_t reader_scans = 0;
  int64_t reader_p50_ns = 0;
  int64_t reader_p95_ns = 0;
  int64_t reader_max_ns = 0;
  int64_t final_files = 0;
  int64_t final_rows = 0;
  int64_t final_version = 0;
  int64_t compactor_commits = 0;
  int64_t files_compacted = 0;
  int64_t post_scan_ns = 0;
  std::string failure;  // empty = all invariants held
};

/// One full workload against a fresh table. Writer w's op j upserts a
/// batch-sized key range starting at initial_rows - batch/2 and sliding
/// right by batch/2 per op index, so every MERGE straddles the table's
/// edge: the front half matches existing keys (an earlier batch's inserts
/// or the seed data), the back half inserts new ones — both paths stay
/// exercised and the inserts produce the small files compaction targets.
RunStats RunWorkload(int64_t initial_rows, int writers, int ops,
                     int64_t batch, int readers, bool compact) {
  RunStats out;
  ObjectStore store;
  auto created = DeltaTable::Create(&store, "bench/kv", KvSchema());
  PHOTON_CHECK(created.ok());
  std::unique_ptr<DeltaTable> table = std::move(*created);
  constexpr int64_t kSeedChunk = 16384;
  for (int64_t lo = 0; lo < initial_rows; lo += kSeedChunk) {
    auto v = table->Append(KvRows(lo, std::min(lo + kSeedChunk, initial_rows),
                                  /*bias=*/0));
    PHOTON_CHECK(v.ok());
  }

  std::mutex mu;
  std::set<int64_t> versions;  // every committed version, writer or compactor
  auto record_version = [&](int64_t v) {
    std::lock_guard<std::mutex> lock(mu);
    if (!versions.insert(v).second && out.failure.empty()) {
      out.failure = "version " + std::to_string(v) +
                    " committed by two transactions (lost commit)";
    }
  };

  exec::Compactor::Options copts;
  copts.small_file_rows = batch;
  copts.target_file_rows = batch * 8;
  copts.interval_ms = 5;
  exec::Compactor compactor(table.get(), copts);
  compactor.set_commit_listener(record_version);
  if (compact) compactor.Start();

  std::atomic<bool> writers_done{false};
  std::vector<std::vector<int64_t>> reader_lat(readers);
  std::vector<std::thread> reader_threads;
  for (int r = 0; r < readers; r++) {
    reader_threads.emplace_back([&, r] {
      exec::Driver driver(1, 1);
      auto opened = DeltaTable::Open(&store, "bench/kv");
      PHOTON_CHECK(opened.ok());
      while (!writers_done.load(std::memory_order_acquire)) {
        int64_t t0 = bench::NowNs();
        auto snap = (*opened)->Snapshot();
        PHOTON_CHECK(snap.ok());
        auto result = driver.RunSingleTask(
            plan::DeltaScan(&store, *std::move(snap)));
        PHOTON_CHECK(result.ok());
        reader_lat[r].push_back(bench::NowNs() - t0);
      }
    });
  }

  int64_t t0 = bench::NowNs();
  std::vector<std::thread> writer_threads;
  std::vector<RunStats> per_writer(writers);
  for (int w = 0; w < writers; w++) {
    writer_threads.emplace_back([&, w] {
      exec::Driver driver(1, 1);
      auto opened = DeltaTable::Open(&store, "bench/kv");
      PHOTON_CHECK(opened.ok());
      dml::DmlOptions options;
      options.max_retries = 256;  // MERGE reads all files; contention is high
      RunStats* mine = &per_writer[w];
      for (int j = 0; j < ops; j++) {
        int64_t base = static_cast<int64_t>(w) * ops + j;
        int64_t lo = initial_rows - batch / 2 + base * batch / 2;
        Table source = KvRows(lo, lo + batch, /*bias=*/1000 + base);
        dml::MergeSpec spec;
        spec.source = plan::Scan(&source);
        spec.target_keys = {0};
        spec.source_keys = {0};
        spec.matched_exprs = {eb::Col(0, DataType::Int64()),
                              eb::Col(3, DataType::Int64())};
        spec.insert_exprs = {eb::Col(0, DataType::Int64()),
                             eb::Col(1, DataType::Int64())};
        auto result = dml::ExecuteMerge(opened->get(), spec, &driver,
                                        ExecContext(), options);
        PHOTON_CHECK(result.ok());
        record_version(result->version);
        mine->commits++;
        mine->rows_upserted += result->rows_affected + result->rows_inserted;
        mine->rows_inserted += result->rows_inserted;
        mine->conflicts += result->conflicts_retried;
      }
    });
  }
  for (auto& t : writer_threads) t.join();
  out.wall_ns = bench::NowNs() - t0;
  writers_done.store(true, std::memory_order_release);
  for (auto& t : reader_threads) t.join();
  if (compact) {
    PHOTON_CHECK(compactor.RunOncePass().ok());  // drain the small-file tail
    compactor.Stop();
  }

  for (const RunStats& w : per_writer) {
    out.commits += w.commits;
    out.rows_upserted += w.rows_upserted;
    out.rows_inserted += w.rows_inserted;
    out.conflicts += w.conflicts;
  }
  std::vector<int64_t> lat;
  for (const auto& r : reader_lat) lat.insert(lat.end(), r.begin(), r.end());
  std::sort(lat.begin(), lat.end());
  out.reader_scans = static_cast<int64_t>(lat.size());
  if (!lat.empty()) {
    out.reader_p50_ns = lat[lat.size() / 2];
    out.reader_p95_ns = lat[lat.size() * 95 / 100];
    out.reader_max_ns = lat.back();
  }
  exec::Compactor::Stats cstats = compactor.stats();
  out.compactor_commits = cstats.commits;
  out.files_compacted = cstats.files_compacted;

  auto snap = table->Snapshot();
  PHOTON_CHECK(snap.ok());
  out.final_files = static_cast<int64_t>(snap->files.size());
  out.final_version = snap->version;
  exec::Driver driver(1, 1);
  int64_t s0 = bench::NowNs();
  auto full = driver.RunSingleTask(plan::DeltaScan(&store, *snap));
  out.post_scan_ns = bench::NowNs() - s0;
  PHOTON_CHECK(full.ok());
  out.final_rows = full->num_rows();

  if (out.failure.empty() && out.final_rows != initial_rows + out.rows_inserted) {
    out.failure = "row conservation violated: " +
                  std::to_string(out.final_rows) + " rows != " +
                  std::to_string(initial_rows) + " initial + " +
                  std::to_string(out.rows_inserted) + " inserted";
  }
  return out;
}

void Report(const char* label, const RunStats& s) {
  double wall_s = static_cast<double>(s.wall_ns) / 1e9;
  std::printf("  %-12s %7.2fs wall  %5lld commits (%lld conflicts retried)  "
              "%8.0f rows/s upserted\n",
              label, wall_s, static_cast<long long>(s.commits),
              static_cast<long long>(s.conflicts),
              static_cast<double>(s.rows_upserted) / wall_s);
  std::printf("  %-12s readers: %lld scans, p50 %.2fms p95 %.2fms max %.2fms\n",
              "", static_cast<long long>(s.reader_scans),
              bench::Ms(s.reader_p50_ns), bench::Ms(s.reader_p95_ns),
              bench::Ms(s.reader_max_ns));
  std::printf("  %-12s final: v%lld, %lld files, %lld rows, full scan "
              "%.2fms  (compactor: %lld commits, %lld files coalesced)\n",
              "", static_cast<long long>(s.final_version),
              static_cast<long long>(s.final_files),
              static_cast<long long>(s.final_rows), bench::Ms(s.post_scan_ns),
              static_cast<long long>(s.compactor_commits),
              static_cast<long long>(s.files_compacted));
}

void JsonRun(photon::bench::JsonWriter* json, const char* name,
             const RunStats& s) {
  json->BeginObject();
  json->Field("config", std::string(name));
  json->Field("wall_ms", bench::Ms(s.wall_ns));
  json->Field("commits", s.commits);
  json->Field("conflicts_retried", s.conflicts);
  json->Field("rows_upserted", s.rows_upserted);
  json->Field("rows_inserted", s.rows_inserted);
  json->Field("reader_scans", s.reader_scans);
  json->Field("reader_p50_ms", bench::Ms(s.reader_p50_ns));
  json->Field("reader_p95_ms", bench::Ms(s.reader_p95_ns));
  json->Field("reader_max_ms", bench::Ms(s.reader_max_ns));
  json->Field("final_files", s.final_files);
  json->Field("final_rows", s.final_rows);
  json->Field("full_scan_ms", bench::Ms(s.post_scan_ns));
  json->Field("files_compacted", s.files_compacted);
  json->EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace photon;
  int64_t rows = 200000;
  if (const char* v = bench::FlagValue(argc, argv, "--rows")) {
    rows = std::atoll(v);
  }
  int writers = 4;
  if (const char* v = bench::FlagValue(argc, argv, "--writers")) {
    writers = std::atoi(v);
  }
  int ops = 16;
  if (const char* v = bench::FlagValue(argc, argv, "--ops")) {
    ops = std::atoi(v);
  }
  int64_t batch = 2000;
  if (const char* v = bench::FlagValue(argc, argv, "--batch")) {
    batch = std::atoll(v);
  }
  int readers = 2;
  if (const char* v = bench::FlagValue(argc, argv, "--readers")) {
    readers = std::atoi(v);
  }
  const char* json_path = bench::FlagValue(argc, argv, "--json");

  std::printf("Lakehouse DML: %lld initial rows, %d writers x %d MERGE ops "
              "(%lld-row batches), %d readers\n",
              static_cast<long long>(rows), writers, ops,
              static_cast<long long>(batch), readers);

  RunStats off = RunWorkload(rows, writers, ops, batch, readers,
                             /*compact=*/false);
  Report("compact=off", off);
  RunStats on = RunWorkload(rows, writers, ops, batch, readers,
                            /*compact=*/true);
  Report("compact=on", on);

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("lakehouse_dml"));
  json.Field("rows", rows);
  json.Field("writers", static_cast<int64_t>(writers));
  json.Field("ops", static_cast<int64_t>(ops));
  json.Field("batch", batch);
  json.BeginArray("runs");
  JsonRun(&json, "compact_off", off);
  JsonRun(&json, "compact_on", on);
  json.EndArray();
  json.EndObject();
  if (json_path != nullptr) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }

  int rc = 0;
  for (const RunStats* s : {&off, &on}) {
    if (!s->failure.empty()) {
      std::printf("  FAIL: %s\n", s->failure.c_str());
      rc = 1;
    }
  }
  // Both configurations ran the same upsert schedule, so they must agree
  // on logical contents even though the physical layouts differ.
  if (off.final_rows != on.final_rows) {
    std::printf("  FAIL: compact=off ended with %lld rows, compact=on with "
                "%lld\n",
                static_cast<long long>(off.final_rows),
                static_cast<long long>(on.final_rows));
    rc = 1;
  }
  return rc;
}
