#ifndef PHOTON_BENCH_BENCH_UTIL_H_
#define PHOTON_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "baseline/row_operator.h"
#include "ops/operator.h"
#include "plan/logical_plan.h"
#include "vector/table.h"

namespace photon {
namespace bench {

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock for one Photon execution of a plan; result rows out-param.
inline int64_t TimePhoton(const plan::PlanPtr& p, int64_t* rows = nullptr) {
  Result<OperatorPtr> op = plan::CompilePhoton(p);
  PHOTON_CHECK(op.ok());
  int64_t t0 = NowNs();
  Result<Table> result = CollectAll(op->get());
  int64_t elapsed = NowNs() - t0;
  PHOTON_CHECK(result.ok());
  if (rows != nullptr) *rows = result->num_rows();
  return elapsed;
}

/// Wall-clock for one baseline execution of the same plan.
inline int64_t TimeBaseline(
    const plan::PlanPtr& p, int64_t* rows = nullptr,
    plan::BaselineJoinImpl join = plan::BaselineJoinImpl::kSortMerge) {
  Result<baseline::RowOperatorPtr> op = plan::CompileBaseline(p, join);
  PHOTON_CHECK(op.ok());
  int64_t t0 = NowNs();
  Result<Table> result = baseline::CollectAllRows(op->get());
  int64_t elapsed = NowNs() - t0;
  PHOTON_CHECK(result.ok());
  if (rows != nullptr) *rows = result->num_rows();
  return elapsed;
}

/// Best of `reps` runs (the paper reports minimum across runs, §6.2).
template <typename Fn>
int64_t BestOf(int reps, Fn&& fn) {
  int64_t best = INT64_MAX;
  for (int i = 0; i < reps; i++) {
    best = std::min(best, static_cast<int64_t>(fn()));
  }
  return best;
}

inline double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace bench
}  // namespace photon

#endif  // PHOTON_BENCH_BENCH_UTIL_H_
