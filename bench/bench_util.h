#ifndef PHOTON_BENCH_BENCH_UTIL_H_
#define PHOTON_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baseline/row_operator.h"
#include "common/json_writer.h"
#include "exec/driver.h"
#include "ops/operator.h"
#include "plan/logical_plan.h"
#include "vector/table.h"

namespace photon {
namespace bench {

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock for one Photon execution of a plan; result rows out-param.
inline int64_t TimePhoton(const plan::PlanPtr& p, int64_t* rows = nullptr) {
  Result<OperatorPtr> op = plan::CompilePhoton(p);
  PHOTON_CHECK(op.ok());
  int64_t t0 = NowNs();
  Result<Table> result = CollectAll(op->get());
  int64_t elapsed = NowNs() - t0;
  PHOTON_CHECK(result.ok());
  if (rows != nullptr) *rows = result->num_rows();
  return elapsed;
}

/// Wall-clock for one baseline execution of the same plan.
inline int64_t TimeBaseline(
    const plan::PlanPtr& p, int64_t* rows = nullptr,
    plan::BaselineJoinImpl join = plan::BaselineJoinImpl::kSortMerge) {
  Result<baseline::RowOperatorPtr> op = plan::CompileBaseline(p, join);
  PHOTON_CHECK(op.ok());
  int64_t t0 = NowNs();
  Result<Table> result = baseline::CollectAllRows(op->get());
  int64_t elapsed = NowNs() - t0;
  PHOTON_CHECK(result.ok());
  if (rows != nullptr) *rows = result->num_rows();
  return elapsed;
}

inline uint64_t TableChecksum(const Table& t);  // defined below

/// Wall-clock for one morsel-parallel Driver::Run of a plan; the result's
/// row count and order-insensitive checksum are out-params for verifying
/// parallel runs against the single-task reference.
inline int64_t TimeDriver(exec::Driver* driver, const plan::PlanPtr& p,
                          int64_t* rows = nullptr,
                          uint64_t* checksum = nullptr,
                          const ExecContext& ctx = ExecContext()) {
  int64_t t0 = NowNs();
  Result<Table> result = driver->Run(p, ctx);
  int64_t elapsed = NowNs() - t0;
  PHOTON_CHECK(result.ok());
  if (rows != nullptr) *rows = result->num_rows();
  if (checksum != nullptr) *checksum = TableChecksum(*result);
  return elapsed;
}

/// Wall-clock for one single-task Driver run (the per-thread reference).
inline int64_t TimeSingleTask(exec::Driver* driver, const plan::PlanPtr& p,
                              int64_t* rows = nullptr,
                              uint64_t* checksum = nullptr,
                              const ExecContext& ctx = ExecContext()) {
  int64_t t0 = NowNs();
  Result<Table> result = driver->RunSingleTask(p, ctx);
  int64_t elapsed = NowNs() - t0;
  PHOTON_CHECK(result.ok());
  if (rows != nullptr) *rows = result->num_rows();
  if (checksum != nullptr) *checksum = TableChecksum(*result);
  return elapsed;
}

/// Best of `reps` runs (the paper reports minimum across runs, §6.2).
template <typename Fn>
int64_t BestOf(int reps, Fn&& fn) {
  int64_t best = INT64_MAX;
  for (int i = 0; i < reps; i++) {
    best = std::min(best, static_cast<int64_t>(fn()));
  }
  return best;
}

inline double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

/// Order-insensitive content checksum of a table: per-row FNV-1a over the
/// printed cell values, summed (commutative) across rows. Lets a bench
/// assert that a parallel run produced the same multiset of rows as the
/// single-task reference without sorting either side. Doubles print at %g
/// precision, so ulp-level differences from reassociated merges don't trip
/// the comparison.
inline uint64_t TableChecksum(const Table& t) {
  uint64_t sum = 0;
  for (const std::vector<Value>& row : t.ToRows()) {
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (const Value& v : row) {
      const std::string s = v.ToString();
      for (char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
      }
      h ^= '|';  // cell separator
      h *= 1099511628211ull;
    }
    sum += h;
  }
  return sum;
}

/// Returns the value following `--name` in argv, or `fallback` if absent.
inline const char* FlagValue(int argc, char** argv, const char* name,
                             const char* fallback = nullptr) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

/// True when the standalone flag `--name` appears anywhere in argv.
inline bool HasFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Bench results use the shared JSON emitter (also used by the profile
/// exporter in src/obs).
using photon::JsonWriter;

}  // namespace bench
}  // namespace photon

#endif  // PHOTON_BENCH_BENCH_UTIL_H_
