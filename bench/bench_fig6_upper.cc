// Figure 6: upper(strcol) over ASCII data.
//
// Three configurations, as in the paper:
//   - DBR: row-at-a-time upper() through the baseline interpreter (which,
//     like DBR, has its own ASCII special case — but per-row, boxed);
//   - Photon without ASCII specialization: vectorized, but every string
//     goes through the generic codepoint-mapping path (the ICU stand-in);
//   - Photon adaptive: per-batch SIMD ASCII check + byte-wise kernel.
// Paper: adaptive Photon 3x over DBR and 4x over the generic path.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "expr/builder.h"

namespace photon {
namespace {

Table MakeAsciiTable(int64_t rows, uint64_t seed) {
  Schema schema({Field("s", DataType::String(), false)});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int64_t i = 0; i < rows; i++) {
    builder.AppendRow({Value::String(
        rng.NextAsciiString(static_cast<int>(rng.Uniform(8, 24))))});
  }
  return builder.Finish();
}

plan::PlanPtr UpperPlan(const Table& t, const char* fn) {
  plan::PlanPtr scan = plan::Scan(&t);
  plan::PlanPtr proj = plan::Project(
      scan, {eb::Call(fn, {plan::ColOf(scan, "s")})}, {"u"});
  // Aggregate so the result doesn't dominate timing with materialization.
  return plan::Aggregate(
      proj, {}, {},
      {AggregateSpec{AggKind::kMax, plan::ColOf(proj, "u"), "m"}});
}

}  // namespace
}  // namespace photon

int main() {
  using namespace photon;
  const int64_t kRows = 2000000;
  std::printf("Figure 6: upper(str) over %lld ASCII strings\n",
              static_cast<long long>(kRows));
  Table t = MakeAsciiTable(kRows, 7);

  plan::PlanPtr adaptive = UpperPlan(t, "upper");
  plan::PlanPtr generic = UpperPlan(t, "upper_generic");

  int64_t dbr_ns =
      bench::BestOf(1, [&] { return bench::TimeBaseline(adaptive); });
  int64_t generic_ns =
      bench::BestOf(3, [&] { return bench::TimePhoton(generic); });
  int64_t adaptive_ns =
      bench::BestOf(3, [&] { return bench::TimePhoton(adaptive); });

  std::printf("  DBR (row-at-a-time):            %9.1f ms\n",
              bench::Ms(dbr_ns));
  std::printf("  Photon, no ASCII specialization:%9.1f ms\n",
              bench::Ms(generic_ns));
  std::printf("  Photon, adaptive SIMD ASCII:    %9.1f ms\n",
              bench::Ms(adaptive_ns));
  std::printf("  adaptive vs DBR:     %.2fx   (paper: ~3x)\n",
              static_cast<double>(dbr_ns) / adaptive_ns);
  std::printf("  adaptive vs generic: %.2fx   (paper: ~4x)\n",
              static_cast<double>(generic_ns) / adaptive_ns);
  return 0;
}
