// Concurrent TPC-H through the multi-tenant query service (src/service/):
// closed-loop clients — each submits a query, waits for its result, and
// immediately submits the next — over the 22-query mix, at 1, 8 and 64
// clients sharing one QueryService (one worker pool, one memory pool,
// one admission queue). Reported per client count: throughput (QPS) and
// end-to-end latency percentiles (p50/p99, submit → terminal state, so
// admission queue time counts).
//
// Every result is verified against a serial single-task reference by row
// count and order-insensitive checksum; any mismatch or failed query makes
// the bench exit nonzero — this doubles as the service's highest-pressure
// correctness run (see EXPERIMENTS.md).
//
// Usage: bench_concurrent_tpch [--sf F] [--threads N] [--max-concurrent N]
//                              [--clients "1,8,64"] [--per-client K]
//                              [--json PATH]
//   --threads N         shared scheduler worker threads (default 8)
//   --max-concurrent N  admission running-query cap (default 8)
//   --per-client K      queries each client runs (default 22: the full mix)
//   --json PATH         also write results as JSON (shared JsonWriter)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double PercentileMs(std::vector<int64_t> sorted_ns, double p) {
  if (sorted_ns.empty()) return 0;
  size_t idx = static_cast<size_t>(p * (sorted_ns.size() - 1) + 0.5);
  return photon::bench::Ms(sorted_ns[std::min(idx, sorted_ns.size() - 1)]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace photon;
  double sf = 0.01;
  if (const char* v = bench::FlagValue(argc, argv, "--sf")) sf = std::atof(v);
  int threads = 8;
  if (const char* v = bench::FlagValue(argc, argv, "--threads")) {
    threads = std::atoi(v);
  }
  int max_concurrent = 8;
  if (const char* v = bench::FlagValue(argc, argv, "--max-concurrent")) {
    max_concurrent = std::atoi(v);
  }
  int per_client = 22;
  if (const char* v = bench::FlagValue(argc, argv, "--per-client")) {
    per_client = std::atoi(v);
  }
  std::vector<int> client_counts = {1, 8, 64};
  if (const char* v = bench::FlagValue(argc, argv, "--clients")) {
    client_counts.clear();
    for (const char* p = v; *p != '\0';) {
      client_counts.push_back(std::atoi(p));
      while (*p != '\0' && *p != ',') p++;
      if (*p == ',') p++;
    }
  }
  const char* json_path = bench::FlagValue(argc, argv, "--json");

  std::printf(
      "Concurrent TPC-H: SF=%.3f, %d workers, %d running-query cap, "
      "%d queries/client\n",
      sf, threads, max_concurrent, per_client);
  tpch::TpchData data = tpch::GenerateTpch(sf);

  // The query mix and its serial references (single task, unlimited
  // memory): the ground truth every concurrent result must reproduce.
  std::vector<plan::PlanPtr> plans;
  std::vector<int64_t> ref_rows;
  std::vector<uint64_t> ref_checksums;
  {
    exec::Driver reference(1);
    for (int q = 1; q <= 22; q++) {
      Result<plan::PlanPtr> p = tpch::TpchQuery(q, data, sf);
      PHOTON_CHECK(p.ok());
      Result<Table> t = reference.RunSingleTask(*p);
      PHOTON_CHECK(t.ok());
      plans.push_back(*p);
      ref_rows.push_back(t->num_rows());
      ref_checksums.push_back(bench::TableChecksum(*t));
    }
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Field("bench", std::string("concurrent_tpch"));
  json.Field("sf", sf);
  json.Field("threads", threads);
  json.Field("max_concurrent", max_concurrent);
  json.Field("per_client", per_client);
  json.BeginArray("runs");

  std::printf("  %8s %8s %10s %10s %10s %9s\n", "clients", "queries", "QPS",
              "p50 (ms)", "p99 (ms)", "wall (s)");
  int total_mismatches = 0;
  for (int clients : client_counts) {
    service::ServiceOptions options;
    options.worker_threads = threads;
    options.max_concurrent_queries = max_concurrent;
    options.memory_limit_bytes = 512LL << 20;
    service::QueryService svc(options);
    service::SessionOptions session_options;
    session_options.memory_bytes =
        options.memory_limit_bytes / max_concurrent;

    std::vector<std::vector<int64_t>> latencies(clients);
    std::atomic<int> mismatches{0};
    std::atomic<int> failures{0};
    int64_t t0 = SteadyNowNs();
    std::vector<std::thread> client_threads;
    for (int c = 0; c < clients; c++) {
      client_threads.emplace_back([&, c] {
        latencies[c].reserve(per_client);
        for (int i = 0; i < per_client; i++) {
          // Stagger start offsets so concurrent clients run a mixed load
          // rather than 64 copies of Q1 in lockstep.
          int q = (c + i) % static_cast<int>(plans.size());
          int64_t start = SteadyNowNs();
          auto session = svc.Submit(plans[q], session_options);
          Status st = session->Wait();
          latencies[c].push_back(SteadyNowNs() - start);
          if (!st.ok()) {
            std::fprintf(stderr, "  Q%d FAILED (%d clients): %s\n", q + 1,
                         clients, st.ToString().c_str());
            failures.fetch_add(1);
            continue;
          }
          const Table& out = session->table();
          if (out.num_rows() != ref_rows[q] ||
              bench::TableChecksum(out) != ref_checksums[q]) {
            std::fprintf(stderr, "  Q%d MISMATCH (%d clients)\n", q + 1,
                         clients);
            mismatches.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : client_threads) t.join();
    int64_t wall_ns = SteadyNowNs() - t0;
    svc.Drain();

    std::vector<int64_t> all;
    for (const auto& per : latencies) {
      all.insert(all.end(), per.begin(), per.end());
    }
    std::sort(all.begin(), all.end());
    int64_t queries = static_cast<int64_t>(all.size());
    double qps = queries / (static_cast<double>(wall_ns) / 1e9);
    double p50 = PercentileMs(all, 0.50);
    double p99 = PercentileMs(all, 0.99);
    std::printf("  %8d %8lld %10.1f %10.2f %10.2f %9.2f\n", clients,
                static_cast<long long>(queries), qps, p50, p99,
                static_cast<double>(wall_ns) / 1e9);
    total_mismatches += mismatches.load() + failures.load();

    json.BeginObject();
    json.Field("clients", clients);
    json.Field("queries", queries);
    json.Field("qps", qps);
    json.Field("p50_ms", p50);
    json.Field("p99_ms", p99);
    json.Field("wall_s", static_cast<double>(wall_ns) / 1e9);
    json.Field("mismatches", mismatches.load());
    json.Field("failures", failures.load());
    json.EndObject();
  }
  json.EndArray();
  json.Field("total_mismatches", total_mismatches);
  json.EndObject();
  if (json_path != nullptr) {
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path);
      return 1;
    }
    std::printf("  wrote %s\n", json_path);
  }

  if (total_mismatches > 0) {
    std::printf("RESULT: %d mismatched/failed queries\n", total_mismatches);
    return 1;
  }
  std::printf("RESULT: all results checksum-verified against serial\n");
  return 0;
}
