// Long-running differential fuzz soak (DESIGN.md §10). Each benchmark
// iteration runs one fresh seed through the full four-mode differential
// harness (baseline oracle, Photon single-task, Photon parallel, Photon
// spill+fault), so google-benchmark's per-iteration time is the cost of
// one seed and --benchmark_min_time drives how many seeds get soaked.
// Seeds start above the checked-in tier-1 corpus (1..64) so a soak run
// always explores new ground. Any divergence aborts the benchmark with
// the failing seed, which can then be replayed deterministically by
// pinning it in tests/plan_fuzz_test.cc (see DESIGN.md §10).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "exec/driver.h"
#include "storage/object_store.h"
#include "testing/datagen.h"
#include "testing/differ.h"
#include "testing/plangen.h"

namespace photon {
namespace {

namespace pt = photon::testing;

// Mirrors RunSeed in tests/plan_fuzz_test.cc (minus minimization — a soak
// failure is replayed and minimized under the test binary, not here).
std::string SoakOneSeed(uint64_t seed, exec::Driver* driver) {
  ObjectStore store;
  pt::DataGen gen(seed * 7919 + 1);

  Schema fact_schema = gen.RandomSchema("f_", 3, 6);
  Table fact = gen.RandomTable(fact_schema,
                               static_cast<int>(gen.rng().Uniform(600, 1500)));
  Schema dim_schema = gen.RandomSchema("d_", 2, 4);
  Table dim = gen.RandomTable(dim_schema,
                              static_cast<int>(gen.rng().Uniform(100, 400)));

  pt::FuzzInput fact_input;
  fact_input.name = "fact";
  fact_input.table = &fact;
  auto snapshot = gen.WriteDelta(&store, "/soak/fact", fact);
  if (!snapshot.ok()) {
    return "WriteDelta failed: " + snapshot.status().ToString();
  }
  fact_input.store = &store;
  fact_input.delta = *snapshot;

  pt::FuzzInput dim_input;
  dim_input.name = "dim";
  dim_input.table = &dim;

  pt::PlanGen plangen(seed, {&fact_input, &dim_input});
  pt::DifferentialOptions opts;
  opts.fault_store = &store;
  opts.spill_prefix = "soak-spill/" + std::to_string(seed);

  for (int round = 0; round < 3; round++) {
    plan::PlanPtr p = plangen.RandomPlan();
    std::string diff = pt::RunDifferential(p, driver, opts);
    if (!diff.empty()) {
      return "seed " + std::to_string(seed) + " round " +
             std::to_string(round) + ": " + diff;
    }
  }
  return "";
}

void BM_FuzzSoak(benchmark::State& state) {
  static exec::Driver driver(8);
  // The tier-1 corpus covers 1..64; soak explores from 65 upward.
  uint64_t seed = 65;
  uint64_t seeds_run = 0;
  for (auto _ : state) {
    std::string failure = SoakOneSeed(seed, &driver);
    if (!failure.empty()) {
      state.SkipWithError(failure.c_str());
      break;
    }
    seed++;
    seeds_run++;
  }
  state.SetLabel("seeds 65.." + std::to_string(64 + seeds_run));
  state.counters["seeds"] = static_cast<double>(seeds_run);
}

BENCHMARK(BM_FuzzSoak)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace photon

BENCHMARK_MAIN();
