// Partial rollout (§3.5, §5.1, §5.2): the same query executed three ways.
//
//   1. pure legacy engine (row-at-a-time Volcano, like pre-Photon DBR);
//   2. mixed plan where the conversion rule stops at an "unsupported"
//      aggregate: scan+filter run in Photon, a transition node pivots to
//      rows, and the aggregate runs in the legacy engine;
//   3. full Photon with one final transition at the top.
//
// All three produce identical results — Photon rolls out operator by
// operator without changing query answers — and the timing shows the
// speedup arriving incrementally.

#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "expr/builder.h"
#include "plan/converter.h"

using namespace photon;

namespace {

Table MakeData(int64_t rows) {
  Schema schema({Field("region", DataType::Int64()),
                 Field("value", DataType::Int64()),
                 Field("tag", DataType::String())});
  TableBuilder builder(schema);
  Rng rng(3);
  for (int64_t i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, 40)),
                       Value::Int64(rng.Uniform(0, 1000)),
                       Value::String(rng.NextAsciiString(10))});
  }
  return builder.Finish();
}

long long RunMs(baseline::RowOperator* root, int64_t* rows_out) {
  auto t0 = std::chrono::steady_clock::now();
  Result<Table> result = baseline::CollectAllRows(root);
  PHOTON_CHECK(result.ok());
  *rows_out = result->num_rows();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  Table data = MakeData(2000000);
  plan::PlanPtr p = plan::Scan(&data);
  p = plan::Filter(p, eb::Lt(plan::ColOf(p, "value"), eb::Lit(int64_t{800})));
  p = plan::Project(
      p,
      {plan::ColOf(p, "region"),
       eb::Call("upper", {plan::ColOf(p, "tag")}), plan::ColOf(p, "value")},
      {"region", "TAG", "value"});
  p = plan::Aggregate(p, {plan::ColOf(p, "region")}, {"region"},
                      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "value"),
                                     "total"},
                       AggregateSpec{AggKind::kCountStar, nullptr, "n"}});

  int64_t rows = 0;

  // 1. Pure legacy.
  auto legacy = plan::ConvertPlan(
      p, {}, [](const plan::PlanNode&) { return false; });
  PHOTON_CHECK(legacy.ok());
  long long legacy_ms = RunMs(legacy->root.get(), &rows);
  std::printf("legacy engine only:    %6lld ms  (%lld groups; %d photon "
              "nodes, %d legacy nodes)\n",
              legacy_ms, static_cast<long long>(rows), legacy->photon_nodes,
              legacy->legacy_nodes);

  // 2. Mixed: aggregate "not yet supported" in Photon.
  auto mixed = plan::ConvertPlan(p, {}, [](const plan::PlanNode& node) {
    return node.kind != plan::PlanKind::kAggregate;
  });
  PHOTON_CHECK(mixed.ok());
  long long mixed_ms = RunMs(mixed->root.get(), &rows);
  std::printf("mixed (partial rollout):%5lld ms  (%d photon nodes, %d "
              "legacy, %d transitions, %d adapters)\n",
              mixed_ms, mixed->photon_nodes, mixed->legacy_nodes,
              mixed->transitions, mixed->adapters);

  // 3. Full Photon.
  auto full = plan::ConvertPlan(p);
  PHOTON_CHECK(full.ok());
  long long full_ms = RunMs(full->root.get(), &rows);
  std::printf("full photon:           %6lld ms  (%d photon nodes, %d "
              "transitions)\n",
              full_ms, full->photon_nodes, full->transitions);

  std::printf("\nspeedup so far: mixed %.2fx, full %.2fx — and every stage "
              "returned identical results\n",
              static_cast<double>(legacy_ms) / mixed_ms,
              static_cast<double>(legacy_ms) / full_ms);
  return 0;
}
