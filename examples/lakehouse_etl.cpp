// Lakehouse ETL walkthrough: the storage side of the paper's stack (§2).
//
//   1. create a Delta table over the (simulated) object store;
//   2. append batches of raw event data as columnar files — each commit is
//      a new log version with per-file min/max statistics;
//   3. run a Photon query whose scan prunes files via those statistics
//      (data skipping) and row groups via chunk statistics;
//   4. time-travel to an earlier version;
//   5. compact small files with a Rewrite transaction.

#include <cstdio>

#include "common/rng.h"
#include "expr/builder.h"
#include "ops/file_scan.h"
#include "plan/logical_plan.h"
#include "storage/delta.h"

using namespace photon;

namespace {

Table MakeEvents(int64_t day_lo, int64_t day_hi, int rows, uint64_t seed) {
  Schema schema({Field("event_day", DataType::Int64()),
                 Field("user_id", DataType::Int64()),
                 Field("action", DataType::String()),
                 Field("amount", DataType::Decimal(12, 2))});
  TableBuilder builder(schema);
  Rng rng(seed);
  const char* actions[] = {"view", "click", "purchase", "refund"};
  for (int i = 0; i < rows; i++) {
    builder.AppendRow(
        {Value::Int64(rng.Uniform(day_lo, day_hi)),
         Value::Int64(rng.Uniform(1, 5000)),
         Value::String(actions[rng.Uniform(0, 3)]),
         Value::Decimal(Decimal128::FromInt64(rng.Uniform(99, 50000)))});
  }
  return builder.Finish();
}

}  // namespace

int main() {
  ObjectStore store;
  Schema schema = MakeEvents(0, 1, 1, 0).schema();

  // 1. Create the table.
  auto table = DeltaTable::Create(&store, "warehouse/events", schema);
  PHOTON_CHECK(table.ok());
  std::printf("created delta table at warehouse/events\n");

  // 2. Ingest three daily batches; each lands in its own file whose stats
  //    record the day range it covers (well-clustered by event_day).
  for (int day = 0; day < 3; day++) {
    Result<int64_t> version =
        (*table)->Append(MakeEvents(day * 10, day * 10 + 9, 20000, day + 1));
    PHOTON_CHECK(version.ok());
    std::printf("  committed version %lld (days %d..%d)\n",
                static_cast<long long>(*version), day * 10, day * 10 + 9);
  }

  // 3. Query one day: the scan prunes two of the three files by stats.
  Result<DeltaSnapshot> snap = (*table)->Snapshot();
  PHOTON_CHECK(snap.ok());
  ExprPtr day_filter = eb::And(
      eb::Ge(eb::Col(0, DataType::Int64(), "event_day"), eb::Lit(int64_t{12})),
      eb::Le(eb::Col(0, DataType::Int64(), "event_day"),
             eb::Lit(int64_t{14})));
  plan::PlanPtr scan =
      plan::DeltaScan(&store, *snap, /*columns=*/{}, day_filter);
  plan::PlanPtr agg = plan::Aggregate(
      scan, {plan::ColOf(scan, "action")}, {"action"},
      {AggregateSpec{AggKind::kCountStar, nullptr, "events"},
       AggregateSpec{AggKind::kSum, plan::ColOf(scan, "amount"), "total"}});
  agg = plan::Sort(agg, {SortKey{plan::ColOf(agg, "action"), true, true}});

  Result<OperatorPtr> op = plan::CompilePhoton(agg);
  PHOTON_CHECK(op.ok());
  Result<Table> result = CollectAll(op->get());
  PHOTON_CHECK(result.ok());
  std::printf("\nquery: events for days 12..14, grouped by action\n");
  std::printf("  (files pruned by min/max stats: %zu of %zu survive)\n",
              DeltaTable::PruneFiles(*snap, day_filter).size(),
              snap->files.size());
  for (const auto& row : result->ToRows()) {
    std::printf("  %-10s %8lld  %12s\n", row[0].str().c_str(),
                static_cast<long long>(row[1].i64()),
                row[2].decimal().ToString(2).c_str());
  }

  // 4. Time travel: version 1 only has day 0-9 data.
  Result<DeltaSnapshot> old_snap = (*table)->Snapshot(1);
  PHOTON_CHECK(old_snap.ok());
  std::printf("\ntime travel to version 1: %lld rows (latest has %lld)\n",
              static_cast<long long>(old_snap->num_rows()),
              static_cast<long long>(snap->num_rows()));

  // 5. Compaction: rewrite all current files into one.
  plan::PlanPtr full = plan::DeltaScan(&store, *snap);
  Result<OperatorPtr> full_scan = plan::CompilePhoton(full);
  PHOTON_CHECK(full_scan.ok());
  Result<Table> everything = CollectAll(full_scan->get());
  PHOTON_CHECK(everything.ok());
  std::vector<std::string> old_keys;
  for (const DeltaFileEntry& f : snap->files) old_keys.push_back(f.key);
  Result<int64_t> compacted = (*table)->Rewrite(old_keys, *everything);
  PHOTON_CHECK(compacted.ok());
  Result<DeltaSnapshot> after = (*table)->Snapshot();
  PHOTON_CHECK(after.ok());
  std::printf("compacted %zu files into %zu at version %lld (%lld rows)\n",
              old_keys.size(), after->files.size(),
              static_cast<long long>(*compacted),
              static_cast<long long>(after->num_rows()));
  return 0;
}
