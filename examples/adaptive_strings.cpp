// Runtime adaptivity on raw, uncurated string data (§4.6).
//
// Lakehouse data often stores everything as strings: UUIDs, numbers,
// mixed-encoding text. This example shows Photon discovering batch-level
// properties at runtime and switching code paths:
//   - the ASCII fast path for upper() (and the automatic fallback when a
//     batch contains UTF-8);
//   - adaptive shuffle encodings that spot UUID- and integer-shaped
//     strings and serialize them compactly.

#include <cstdio>

#include "common/rng.h"
#include "expr/builder.h"
#include "ops/scan.h"
#include "ops/shuffle.h"
#include "plan/logical_plan.h"
#include "vector/vector_serde.h"

using namespace photon;

int main() {
  Rng rng(99);

  // ---- 1. ASCII adaptivity in upper() -------------------------------------
  Schema schema({Field("s", DataType::String())});
  TableBuilder ascii_rows(schema), mixed_rows(schema);
  for (int i = 0; i < 100000; i++) {
    ascii_rows.AppendRow({Value::String(rng.NextAsciiString(16))});
    mixed_rows.AppendRow({Value::String(
        i % 50 == 0 ? "caf\xC3\xA9 au lait" : rng.NextAsciiString(16))});
  }
  Table ascii_table = ascii_rows.Finish();
  Table mixed_table = mixed_rows.Finish();

  auto time_upper = [](const Table& t) {
    plan::PlanPtr p = plan::Scan(&t);
    p = plan::Project(p, {eb::Call("upper", {plan::ColOf(p, "s")})}, {"u"});
    p = plan::Aggregate(p, {}, {},
                        {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
    Result<OperatorPtr> op = plan::CompilePhoton(p);
    PHOTON_CHECK(op.ok());
    auto t0 = std::chrono::steady_clock::now();
    Result<Table> r = CollectAll(op->get());
    PHOTON_CHECK(r.ok());
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  long long pure_us = time_upper(ascii_table);
  long long mixed_us = time_upper(mixed_table);
  std::printf("upper() over 100k strings:\n");
  std::printf("  all-ASCII batches (SIMD check + byte kernel): %lld us\n",
              pure_us);
  std::printf("  2%% UTF-8 batches (codepoint fallback):        %lld us\n",
              mixed_us);
  std::printf("  -> the engine adapted per batch; no plan change needed\n\n");

  // ---- 2. Adaptive shuffle encodings --------------------------------------
  Schema raw_schema({Field("uuid", DataType::String()),
                     Field("user_id_str", DataType::String()),
                     Field("note", DataType::String())});
  TableBuilder raw(raw_schema);
  for (int i = 0; i < 50000; i++) {
    uint8_t bin[16];
    for (int b = 0; b < 16; b++) bin[b] = static_cast<uint8_t>(rng.Next());
    char uuid[36];
    FormatUuid(bin, uuid);
    raw.AppendRow({Value::String(std::string(uuid, 36)),
                   Value::String(std::to_string(rng.Uniform(0, 1 << 30))),
                   Value::String(rng.NextAsciiString(8))});
  }
  Table raw_table = raw.Finish();

  auto shuffle_bytes = [&](bool adaptive, const char* id) {
    ShuffleOptions options;
    options.num_partitions = 4;
    options.adaptive_encoding = adaptive;
    auto write = std::make_unique<ShuffleWriteOperator>(
        std::make_unique<InMemoryScanOperator>(&raw_table),
        std::vector<ExprPtr>{eb::Col(0, DataType::String(), "uuid")}, id,
        options);
    PHOTON_CHECK(write->Open().ok());
    PHOTON_CHECK(write->GetNext().ok());
    int64_t bytes = write->bytes_written();
    DeleteShuffle(id);
    return bytes;
  };
  int64_t plain = shuffle_bytes(false, "ex-plain");
  int64_t adaptive = shuffle_bytes(true, "ex-adaptive");
  std::printf("shuffling 50k rows of string-typed raw data:\n");
  std::printf("  plain encoding:    %8.2f MB\n", plain / 1048576.0);
  std::printf("  adaptive encoding: %8.2f MB  "
              "(UUID column -> 16-byte binary, numeric strings -> varints)\n",
              adaptive / 1048576.0);
  std::printf("  -> %.2fx less shuffle data, detected per block at runtime\n",
              static_cast<double>(plain) / adaptive);
  return 0;
}
