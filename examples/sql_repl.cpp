// Interactive SQL shell over generated TPC-H data. Reads one statement per
// line (end with ';' to span lines), compiles it through the SQL front-end,
// runs it on a QueryService, and prints the result table. Usage:
//
//   sql_repl [scale_factor=0.01] [--profile] [--optimize]
//
// With --profile each query also prints its QueryProfile operator tree
// (rows and wall time per operator, aggregated across morsel tasks).
// With --optimize each query runs through the cost-based optimizer
// (DESIGN.md §14) before stage planning.
//
//   photon> SELECT l_returnflag, count(*) AS n FROM lineitem
//           GROUP BY l_returnflag ORDER BY n DESC;

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "plan/logical_plan.h"
#include "service/query_service.h"
#include "sql/analyzer.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_sql.h"

using namespace photon;

namespace {

void PrintProfileNode(const obs::ProfileNode& n, int indent) {
  std::printf("%*s%s  rows=%lld  wall=%.2fms  tasks=%d\n", indent * 2, "",
              n.name.c_str(),
              static_cast<long long>(n.Sum(obs::Metric::kRowsOut)),
              n.Sum(obs::Metric::kWallNs) / 1e6, n.num_tasks);
  for (const auto& child : n.children) PrintProfileNode(child, indent + 1);
}

void PrintTable(const Table& t) {
  const Schema& schema = t.schema();
  for (int i = 0; i < schema.num_fields(); i++) {
    std::printf("%s%s", i ? " | " : "", schema.field(i).name.c_str());
  }
  std::printf("\n");
  int64_t shown = 0;
  for (const auto& row : t.ToRows()) {
    for (size_t i = 0; i < row.size(); i++) {
      std::printf("%s%s", i ? " | " : "", row[i].ToString().c_str());
    }
    std::printf("\n");
    if (++shown == 50 && t.num_rows() > 50) {
      std::printf("... (%lld rows total)\n",
                  static_cast<long long>(t.num_rows()));
      break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  bool profile = false;
  bool optimize = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--optimize") == 0) {
      optimize = true;
    } else {
      sf = std::atof(argv[i]);
    }
  }

  std::printf("generating TPC-H data at SF=%.3f...\n", sf);
  tpch::TpchData data = tpch::GenerateTpch(sf);
  sql::Catalog catalog = tpch::TpchCatalog(data);
  std::printf("tables:");
  for (const std::string& name : catalog.names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\ntype SQL terminated by ';' (Ctrl-D to exit)\n");

  service::QueryService svc;
  std::string stmt;
  std::string line;
  std::printf("photon> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    stmt += line;
    size_t semi = stmt.find(';');
    if (semi == std::string::npos) {
      stmt += "\n";
      std::printf("     -> ");
      std::fflush(stdout);
      continue;
    }
    std::string sql_text = stmt.substr(0, semi);
    stmt.clear();

    if (sql_text.find_first_not_of(" \t\r\n") != std::string::npos) {
      Result<plan::PlanPtr> plan = sql::CompileSql(sql_text, catalog);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        service::SessionOptions options;
        if (optimize) options.optimizer = OptimizerPolicy::kOn;
        auto session = svc.Submit(*plan, options);
        Status st = session->Wait();
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
        } else {
          PrintTable(session->table());
          if (profile) {
            const obs::QueryProfile& prof = session->profile();
            std::printf("\nprofile (%d threads, %.2fms):\n",
                        prof.num_threads, prof.wall_ns / 1e6);
            PrintProfileNode(prof.root, 1);
          }
        }
      }
    }
    std::printf("photon> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
