// Interactive SQL shell over generated TPC-H data. Reads one statement per
// line (end with ';' to span lines), compiles it through the SQL front-end,
// runs it on a QueryService, and prints the result table. Usage:
//
//   sql_repl [scale_factor=0.01] [--profile] [--optimize]
//
// With --profile each query also prints its QueryProfile operator tree
// (rows and wall time per operator, aggregated across morsel tasks).
// With --optimize each query runs through the cost-based optimizer
// (DESIGN.md §14) before stage planning.
//
//   photon> SELECT l_returnflag, count(*) AS n FROM lineitem
//           GROUP BY l_returnflag ORDER BY n DESC;

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "exec/dml.h"
#include "obs/profile.h"
#include "plan/logical_plan.h"
#include "service/query_service.h"
#include "sql/analyzer.h"
#include "storage/delta.h"
#include "storage/object_store.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_sql.h"

using namespace photon;

namespace {

void PrintProfileNode(const obs::ProfileNode& n, int indent) {
  std::printf("%*s%s  rows=%lld  wall=%.2fms  tasks=%d\n", indent * 2, "",
              n.name.c_str(),
              static_cast<long long>(n.Sum(obs::Metric::kRowsOut)),
              n.Sum(obs::Metric::kWallNs) / 1e6, n.num_tasks);
  for (const auto& child : n.children) PrintProfileNode(child, indent + 1);
}

void PrintTable(const Table& t) {
  const Schema& schema = t.schema();
  for (int i = 0; i < schema.num_fields(); i++) {
    std::printf("%s%s", i ? " | " : "", schema.field(i).name.c_str());
  }
  std::printf("\n");
  int64_t shown = 0;
  for (const auto& row : t.ToRows()) {
    for (size_t i = 0; i < row.size(); i++) {
      std::printf("%s%s", i ? " | " : "", row[i].ToString().c_str());
    }
    std::printf("\n");
    if (++shown == 50 && t.num_rows() > 50) {
      std::printf("... (%lld rows total)\n",
                  static_cast<long long>(t.num_rows()));
      break;
    }
  }
}

Table KvDemoTable(int64_t begin, int64_t end) {
  TableBuilder b(Schema({Field("id", DataType::Int64()),
                         Field("val", DataType::Int64())}));
  for (int64_t i = begin; i < end; i++) {
    b.AppendRow({Value::Int64(i), Value::Int64(i * 10)});
  }
  return b.Finish();
}

Table DmlSummary(sql::StatementKind kind, const dml::DmlResult& r) {
  TableBuilder b(Schema({Field("version", DataType::Int64()),
                         Field("rows_affected", DataType::Int64()),
                         Field("rows_inserted", DataType::Int64()),
                         Field("files_rewritten", DataType::Int64()),
                         Field("conflicts_retried", DataType::Int64())}));
  (void)kind;
  b.AppendRow({Value::Int64(r.version), Value::Int64(r.rows_affected),
               Value::Int64(r.rows_inserted), Value::Int64(r.files_rewritten),
               Value::Int64(r.conflicts_retried)});
  return b.Finish();
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  bool profile = false;
  bool optimize = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--optimize") == 0) {
      optimize = true;
    } else {
      sf = std::atof(argv[i]);
    }
  }

  std::printf("generating TPC-H data at SF=%.3f...\n", sf);
  tpch::TpchData data = tpch::GenerateTpch(sf);
  sql::Catalog catalog = tpch::TpchCatalog(data);

  // A writable delta-backed demo table: DML (DELETE/UPDATE/MERGE) and
  // `kv VERSION AS OF n` time travel both work against it.
  ObjectStore store;
  auto created = DeltaTable::Create(
      &store, "lake/kv",
      Schema({Field("id", DataType::Int64()), Field("val", DataType::Int64())}));
  if (!created.ok()) {
    std::printf("error: %s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<DeltaTable> kv = std::move(*created);
  for (int64_t base = 0; base < 100; base += 25) {
    if (auto v = kv->Append(KvDemoTable(base, base + 25)); !v.ok()) {
      std::printf("error: %s\n", v.status().ToString().c_str());
      return 1;
    }
  }
  if (Status s = catalog.RegisterDeltaTable("kv", kv.get()); !s.ok()) {
    std::printf("error: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("tables:");
  for (const std::string& name : catalog.names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(
      "\n'kv' is delta-backed: DELETE/UPDATE/MERGE and VERSION AS OF work\n"
      "type SQL terminated by ';' (Ctrl-D to exit)\n");

  service::QueryService svc;
  std::string stmt;
  std::string line;
  std::printf("photon> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    stmt += line;
    size_t semi = stmt.find(';');
    if (semi == std::string::npos) {
      stmt += "\n";
      std::printf("     -> ");
      std::fflush(stdout);
      continue;
    }
    std::string sql_text = stmt.substr(0, semi);
    stmt.clear();

    if (sql_text.find_first_not_of(" \t\r\n") != std::string::npos) {
      Result<sql::CompiledStatement> compiled =
          sql::CompileStatement(sql_text, catalog);
      if (!compiled.ok()) {
        std::printf("error: %s\n", compiled.status().ToString().c_str());
      } else {
        service::SessionOptions options;
        if (optimize) options.optimizer = OptimizerPolicy::kOn;
        const sql::StatementKind kind = compiled->kind;
        std::shared_ptr<service::QuerySession> session;
        if (kind == sql::StatementKind::kSelect) {
          session = svc.Submit(compiled->plan, options);
        } else {
          // DML runs as a write session: the executor stages rewritten
          // files, commits optimistically, and retries on conflict.
          sql::CompiledStatement stmt = *std::move(compiled);
          session = svc.SubmitWrite(
              [stmt](exec::Driver* driver,
                     const ExecContext& ctx) -> Result<Table> {
                dml::DmlOptions dml_options;
                dml_options.io = stmt.io;
                Result<dml::DmlResult> r = [&] {
                  switch (stmt.kind) {
                    case sql::StatementKind::kDelete:
                      return dml::ExecuteDelete(stmt.table, stmt.predicate,
                                                driver, ctx, dml_options);
                    case sql::StatementKind::kUpdate:
                      return dml::ExecuteUpdate(stmt.table, stmt.assignments,
                                                stmt.predicate, driver, ctx,
                                                dml_options);
                    default:
                      return dml::ExecuteMerge(stmt.table, stmt.merge,
                                               driver, ctx, dml_options);
                  }
                }();
                if (!r.ok()) return r.status();
                return DmlSummary(stmt.kind, *r);
              },
              options);
        }
        Status st = session->Wait();
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
        } else {
          PrintTable(session->table());
          if (profile) {
            const obs::QueryProfile& prof = session->profile();
            std::printf("\nprofile (%d threads, %.2fms):\n",
                        prof.num_threads, prof.wall_ns / 1e6);
            PrintProfileNode(prof.root, 1);
          }
          // Advance the registered read snapshot past any DML commit.
          if (kind != sql::StatementKind::kSelect) {
            (void)catalog.RegisterDeltaTable("kv", kv.get());
          }
        }
      }
    }
    std::printf("photon> ");
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
