// Quickstart: build an in-memory table, run a filter + aggregation through
// the Photon engine, and print the result — the SQL query from Listing 1
// of the paper, expressed with the C++ plan-builder API:
//
//   SELECT upper(c_name), sum(o_price)
//   FROM customer, orders
//   WHERE o_shipdate > '2021-01-01'
//     AND customer.c_age > 25
//     AND customer.c_orderid = orders.o_orderid
//   GROUP BY c_name

#include <cstdio>

#include "common/rng.h"
#include "common/time_util.h"
#include "expr/builder.h"
#include "plan/logical_plan.h"

using namespace photon;

int main() {
  // ---- Create the two input tables ---------------------------------------
  Schema customer_schema({Field("c_name", DataType::String()),
                          Field("c_age", DataType::Int32()),
                          Field("c_orderid", DataType::Int64())});
  Schema orders_schema({Field("o_orderid", DataType::Int64()),
                        Field("o_price", DataType::Decimal(12, 2)),
                        Field("o_shipdate", DataType::Date32())});

  Rng rng(2021);
  const char* names[] = {"alice", "bob", "carol", "dave", "erin"};
  TableBuilder customers(customer_schema);
  for (int64_t i = 0; i < 1000; i++) {
    customers.AppendRow({Value::String(names[i % 5]),
                         Value::Int32(static_cast<int32_t>(
                             rng.Uniform(18, 70))),
                         Value::Int64(i)});
  }
  Table customer = customers.Finish();

  int32_t epoch_2021;
  PHOTON_CHECK(ParseDate("2021-01-01", &epoch_2021));
  TableBuilder orders(orders_schema);
  for (int64_t i = 0; i < 1000; i++) {
    orders.AppendRow(
        {Value::Int64(i),
         Value::Decimal(Decimal128::FromInt64(rng.Uniform(100, 99999))),
         Value::Date32(epoch_2021 +
                       static_cast<int32_t>(rng.Uniform(-200, 400)))});
  }
  Table order_table = orders.Finish();

  // ---- Build the logical plan --------------------------------------------
  plan::PlanPtr c = plan::Scan(&customer);
  c = plan::Filter(c, eb::Gt(plan::ColOf(c, "c_age"), eb::Lit(int32_t{25})));

  plan::PlanPtr o = plan::Scan(&order_table);
  o = plan::Filter(
      o, eb::Gt(plan::ColOf(o, "o_shipdate"), eb::DateLit("2021-01-01")));

  plan::PlanPtr joined =
      plan::Join(c, o, JoinType::kInner, {plan::ColOf(c, "c_orderid")},
                 {plan::ColOf(o, "o_orderid")});

  plan::PlanPtr agg = plan::Aggregate(
      joined, {eb::Call("upper", {plan::ColOf(joined, "c_name")})},
      {"name"},
      {AggregateSpec{AggKind::kSum, plan::ColOf(joined, "o_price"),
                     "total"}});
  agg = plan::Sort(agg, {SortKey{plan::ColOf(agg, "name"), true, true}});

  std::printf("plan:\n%s\n", agg->ToString(1).c_str());

  // ---- Execute in Photon and print ---------------------------------------
  Result<OperatorPtr> op = plan::CompilePhoton(agg);
  PHOTON_CHECK(op.ok());
  Result<Table> result = CollectAll(op->get());
  PHOTON_CHECK(result.ok());

  std::printf("%-8s %14s\n", "name", "sum(o_price)");
  for (const auto& row : result->ToRows()) {
    std::printf("%-8s %14s\n", row[0].str().c_str(),
                row[1].decimal().ToString(2).c_str());
  }

  // The same plan runs on the row-oriented baseline engine, byte-for-byte
  // equal — the semantics-consistency guarantee of §5.6.
  Result<baseline::RowOperatorPtr> base = plan::CompileBaseline(agg);
  PHOTON_CHECK(base.ok());
  Result<Table> base_result = baseline::CollectAllRows(base->get());
  PHOTON_CHECK(base_result.ok());
  PHOTON_CHECK(result->ToRows() == base_result->ToRows());
  std::printf("\nbaseline engine produced identical results.\n");
  return 0;
}
