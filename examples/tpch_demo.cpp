// Runs a TPC-H query end to end on generated data, in both engines, and
// prints the result rows plus per-engine timings. Usage:
//
//   tpch_demo [query=1] [scale_factor=0.01]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "plan/logical_plan.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

using namespace photon;

int main(int argc, char** argv) {
  int q = argc > 1 ? std::atoi(argv[1]) : 1;
  double sf = argc > 2 ? std::atof(argv[2]) : 0.01;

  std::printf("generating TPC-H data at SF=%.3f...\n", sf);
  tpch::TpchData data = tpch::GenerateTpch(sf);
  std::printf("  lineitem: %lld rows, orders: %lld rows\n",
              static_cast<long long>(data.lineitem.num_rows()),
              static_cast<long long>(data.orders.num_rows()));

  Result<plan::PlanPtr> p = tpch::TpchQuery(q, data, sf);
  PHOTON_CHECK(p.ok());
  std::printf("\nQ%d plan:\n%s\n", q, (*p)->ToString(1).c_str());

  auto t0 = std::chrono::steady_clock::now();
  Result<OperatorPtr> photon_op = plan::CompilePhoton(*p);
  PHOTON_CHECK(photon_op.ok());
  Result<Table> photon_result = CollectAll(photon_op->get());
  PHOTON_CHECK(photon_result.ok());
  auto photon_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  t0 = std::chrono::steady_clock::now();
  Result<baseline::RowOperatorPtr> base_op = plan::CompileBaseline(*p);
  PHOTON_CHECK(base_op.ok());
  Result<Table> base_result = baseline::CollectAllRows(base_op->get());
  PHOTON_CHECK(base_result.ok());
  auto dbr_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  // Print up to 10 result rows.
  const Schema& schema = photon_result->schema();
  std::printf("result (%lld rows):\n",
              static_cast<long long>(photon_result->num_rows()));
  for (int c = 0; c < schema.num_fields(); c++) {
    std::printf("%-20s", schema.field(c).name.c_str());
  }
  std::printf("\n");
  int64_t shown = std::min<int64_t>(photon_result->num_rows(), 10);
  for (int64_t r = 0; r < shown; r++) {
    std::vector<Value> row = photon_result->GetRow(r);
    for (int c = 0; c < schema.num_fields(); c++) {
      std::printf("%-20s",
                  row[c].ToString(schema.field(c).type).substr(0, 19).c_str());
    }
    std::printf("\n");
  }
  if (photon_result->num_rows() > shown) std::printf("...\n");

  std::printf("\nPhoton: %lld ms | baseline: %lld ms | speedup %.2fx | "
              "rows equal: %s\n",
              static_cast<long long>(photon_ms),
              static_cast<long long>(dbr_ms),
              photon_ms > 0 ? static_cast<double>(dbr_ms) / photon_ms : 0.0,
              photon_result->num_rows() == base_result->num_rows() ? "yes"
                                                                   : "NO");
  return 0;
}
